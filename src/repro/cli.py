"""Command-line interface: ``python -m repro`` / ``repro-mst``.

Subcommands
-----------
``run``
    Regenerate a paper experiment (``table1``, ``fig2``, ``fig3``,
    ``fig4``, the ablations, or ``all``) and print its report.
``mst``
    Compute the MSF of a generated or loaded graph with a chosen
    algorithm and print summary statistics.
``solve``
    Solve any registered problem (``sssp``, ``cc``) on a generated or
    loaded graph, optionally through a content-addressed artifact store,
    and verify against the problem's independent oracle.
``query``
    Answer MSF queries (connectivity, components, bottleneck paths,
    cycle replacement) from a saved artifact or an artifact store.
    With ``--problem``, answer that problem's query kinds instead
    (``dist``/``parent``/``reached`` for SSSP; ``label``/``same``/
    ``component_size`` for CC).
``serve``
    Run the batched asyncio query service over a JSON-lines request
    stream (stdin or a file).  SIGINT stops intake, drains in-flight
    requests, and prints a final metrics summary line.
``load``
    Drive scenario traffic at the async service: ``run`` a seeded
    open-loop scenario, ``record`` its JSONL event log, ``replay`` a
    recorded log, or ``soak`` with fault families injected under load.
``check``
    Run the differential-oracle / fault-injection / adversarial-schedule
    harness; failing graphs are shrunk to hand-checkable pytest repros.
``trace``
    Re-run ``mst``/``solve``/``query``/``serve``/``check`` with
    observability tracing enabled and write a Perfetto-loadable Chrome
    trace.
``info``
    Show registered algorithms, problems, datasets, and version
    information.

``mst``, ``solve``, ``query``, ``serve``, and ``check`` also accept ``--trace`` /
``--trace-out`` / ``--trace-profile`` directly (the ``trace`` subcommand
is sugar over them).

Examples
--------
::

    python -m repro run fig3 --scale 13 --threads 1,2,4,8,16,32
    python -m repro run all --json-dir results/
    python -m repro mst --algo llp-prim --dataset usa-road --scale 12
    python -m repro mst --algo llp-boruvka --input graph.gr --workers 8
    python -m repro mst --algo kruskal --dataset usa-road --save msf.json
    python -m repro solve sssp --dataset usa-road --scale 10 --verify
    python -m repro solve cc --input graph.gr --store cache/ --save cc.npz
    python -m repro query --artifact msf.json --type bottleneck --pairs 0:5,2:7
    python -m repro query --problem sssp --dataset usa-road --scale 8 \\
        --type dist --vertices 3,5,8
    python -m repro serve --problem cc --dataset usa-road --queries reqs.jsonl
    python -m repro serve --dataset usa-road --scale 10 --queries reqs.jsonl
    python -m repro load run --scenario burst --duration 2 --rate 500
    python -m repro load record --scenario hot-key --out events.jsonl
    python -m repro load replay --events events.jsonl --dataset usa-road
    python -m repro load soak --duration 10 --faults artifact-corruption,worker-crash
    python -m repro check --seed 17 --graphs 200 --out-dir counterexamples/
    python -m repro check --self-test
    python -m repro trace --out t.json query --shards 2 --executor process \\
        --dataset usa-road --scale 8 --type connected --pairs 0:5
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Reproduction of 'Parallel MST via Lattice Linear Predicate Detection'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="regenerate a paper experiment")
    runp.add_argument("experiment", help="table1|fig2|fig3|fig4|ablation-*|all")
    runp.add_argument("--scale", type=int, default=None, help="log2 vertex count")
    runp.add_argument("--rmat-scale", type=int, default=None,
                      help="log2 vertex count for the graph500 dataset")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--repeats", type=int, default=3)
    runp.add_argument("--threads", type=_int_list, default=None,
                      help="comma-separated worker counts (fig3)")
    runp.add_argument("--json-dir", type=Path, default=None,
                      help="also write <experiment>.json files here")
    runp.add_argument("--svg-dir", type=Path, default=None,
                      help="also render each experiment's series as .svg charts")
    runp.add_argument("--markdown", action="store_true",
                      help="render tables as GitHub markdown")

    mstp = sub.add_parser("mst", help="compute an MSF")
    mstp.add_argument("--algo", default="llp-prim",
                      help="algorithm name; 'info' lists names and which "
                           "have a vectorized kernel mode")
    src = mstp.add_mutually_exclusive_group()
    src.add_argument("--dataset", default="usa-road", help="registered dataset name")
    src.add_argument("--input", type=Path, default=None,
                     help="graph file (.gr DIMACS, .mtx MatrixMarket, .tsv, .npz)")
    mstp.add_argument("--scale", type=int, default=None)
    mstp.add_argument("--seed", type=int, default=0)
    mstp.add_argument("--workers", type=int, default=1,
                      help="simulated workers for parallel algorithms")
    mstp.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                      default="auto",
                      help="kernel mode: 'loop' (reference), 'vectorized' "
                           "(array-kernel fast path, where available), or "
                           "'auto' (default: pick per graph via the "
                           "calibrated cost model)")
    mstp.add_argument("--shards", type=int, default=0, metavar="N",
                      help="solve via the sharded multiprocess coordinator with "
                           "N shards (--algo becomes the per-shard local solver)")
    mstp.add_argument("--partition", choices=("hash", "range", "block"),
                      default="hash",
                      help="edge partition strategy for --shards")
    mstp.add_argument("--executor", choices=("auto", "process", "serial"),
                      default="auto",
                      help="--shards execution mode: 'process' forces worker "
                           "processes, 'serial' keeps everything in process, "
                           "'auto' decides by graph size")
    mstp.add_argument("--spill-dir", type=Path, default=None, metavar="DIR",
                      help="spill parser buffers and CSR arrays to memmap "
                           "files under DIR instead of RAM (paper-scale "
                           "inputs); with --shards, also spools arenas there")
    mstp.add_argument("--arena-backing", choices=("auto", "shm", "file"),
                      default="auto",
                      help="--shards arena placement: POSIX shared memory, "
                           "a file-backed spool, or 'auto' (default: file "
                           "when /dev/shm is too small for the edge arrays)")
    mstp.add_argument("--max-concurrent", type=int, default=None, metavar="K",
                      help="with --shards, keep at most K shard workers "
                           "live at once (streams the rest; bounds peak "
                           "resident memory)")
    mstp.add_argument("--verify", action="store_true",
                      help="verify the output against the Kruskal oracle")
    mstp.add_argument("--save", type=Path, default=None, metavar="PATH",
                      help="dump the computed MSF edge list as a JSON artifact "
                           "(consumable by 'repro query --artifact')")

    solvep = sub.add_parser(
        "solve", help="solve a registered problem (sssp, cc, ...)"
    )
    solvep.add_argument("problem",
                        help="registered problem name; 'info' lists them")
    psrc = solvep.add_mutually_exclusive_group()
    psrc.add_argument("--dataset", default="usa-road",
                      help="registered dataset name")
    psrc.add_argument("--input", type=Path, default=None,
                      help="graph file (.gr DIMACS, .mtx MatrixMarket, .tsv, .npz)")
    solvep.add_argument("--scale", type=int, default=None)
    solvep.add_argument("--seed", type=int, default=0)
    solvep.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                        default="auto",
                        help="execution mode: 'loop' (pure-Python reference), "
                             "'vectorized' (NumPy kernels), or 'auto' "
                             "(default: vectorized past the size threshold)")
    solvep.add_argument("--source", type=int, default=0,
                        help="source vertex (problems with a 'source' "
                             "parameter, e.g. sssp)")
    solvep.add_argument("--store", type=Path, default=None,
                        help="artifact-store directory (compute-once cache)")
    solvep.add_argument("--verify", action="store_true",
                        help="verify the result against the problem's oracle")
    solvep.add_argument("--save", type=Path, default=None, metavar="PATH",
                        help="write the solved artifact as .npz (consumable "
                             "by 'repro query --problem ... --artifact')")

    queryp = sub.add_parser("query", help="answer MSF queries from an artifact")
    queryp.add_argument("--problem", default=None,
                        help="serve a registered problem's artifact instead "
                             "of the MSF (sssp, cc); changes the admissible "
                             "--type values")
    queryp.add_argument("--source", type=int, default=0,
                        help="with --problem sssp: the solve source vertex")
    qsrc = queryp.add_mutually_exclusive_group()
    qsrc.add_argument("--artifact", type=Path, default=None,
                      help="saved artifact file (.json from 'mst --save', or .npz)")
    qsrc.add_argument("--dataset", default=None, help="registered dataset name")
    qsrc.add_argument("--input", type=Path, default=None,
                      help="graph file (.gr/.mtx/.tsv/.npz)")
    queryp.add_argument("--store", type=Path, default=None,
                        help="artifact-store directory (compute-once cache)")
    queryp.add_argument("--algo", default="kruskal", help="algorithm for cache misses")
    queryp.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                        default="auto")
    queryp.add_argument("--shards", type=int, default=0, metavar="N",
                        help="build cache misses through the sharded coordinator "
                             "with N shards")
    queryp.add_argument("--partition", choices=("hash", "range", "block"),
                        default="hash",
                        help="edge partition strategy for --shards")
    queryp.add_argument("--executor", choices=("auto", "process", "serial"),
                        default="auto",
                        help="--shards execution mode (see 'mst --executor')")
    queryp.add_argument("--scale", type=int, default=None)
    queryp.add_argument("--seed", type=int, default=0)
    queryp.add_argument("--type", dest="qtype", default=None,
                        help="connected|component|component_size|bottleneck|"
                             "replacement|weight (default connected); with "
                             "--problem: that problem's kinds, e.g. "
                             "dist|parent|reached or label|same|component_size")
    queryp.add_argument("--pairs", type=_pair_list, default=None,
                        help="comma-separated u:v pairs, e.g. 0:5,2:7")
    queryp.add_argument("--vertices", type=_int_list, default=None,
                        help="comma-separated vertex ids (component queries)")
    queryp.add_argument("--edges", type=_edge_list, default=None,
                        help="comma-separated u:v:w triples (replacement queries)")

    servep = sub.add_parser("serve", help="run the batched async query service")
    servep.add_argument("--problem", default=None,
                        help="serve a registered problem (sssp, cc) instead "
                             "of the MSF; request 'op' values become that "
                             "problem's query kinds")
    servep.add_argument("--source", type=int, default=0,
                        help="with --problem sssp: the solve source vertex")
    ssrc = servep.add_mutually_exclusive_group()
    ssrc.add_argument("--dataset", default="usa-road", help="registered dataset name")
    ssrc.add_argument("--input", type=Path, default=None,
                      help="graph file (.gr/.mtx/.tsv/.npz)")
    servep.add_argument("--scale", type=int, default=None)
    servep.add_argument("--seed", type=int, default=0)
    servep.add_argument("--algo", default="kruskal")
    servep.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                        default="auto")
    servep.add_argument("--store", type=Path, default=None,
                        help="artifact-store directory (warm starts skip the solve)")
    servep.add_argument("--queries", type=Path, default=None,
                        help="JSON-lines request file (default: stdin); each line "
                             'like {"op": "connected", "u": 0, "v": 5}')
    servep.add_argument("--max-batch", type=int, default=256,
                        help="coalesce at most this many requests per batch")
    servep.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="wait at most this long for a batch to fill")
    servep.add_argument("--metrics", action="store_true",
                        help="print the service metrics report to stderr at exit")
    servep.add_argument("--multi", action="store_true",
                        help="multi-tenant mode: serve every graph registered "
                             "under --root; request lines carry 'tenant' and "
                             "'graph' fields and quota rejections come back as "
                             "structured 429-style records")
    servep.add_argument("--root", type=Path, default=None,
                        help="platform root directory (holds platform.json and "
                             "the shared artifact stores); required with --multi")

    tenantp = sub.add_parser(
        "tenant", help="manage the multi-tenant platform manifest"
    )
    tsub = tenantp.add_subparsers(dest="tenant_command", required=True)
    tadd = tsub.add_parser("add", help="register a tenant with its quota")
    trm = tsub.add_parser("rm", help="remove a tenant and its graphs")
    tlist = tsub.add_parser("list", help="list tenants and their graphs")
    tstats = tsub.add_parser("stats", help="print live platform statistics")
    tgraph = tsub.add_parser("add-graph", help="register a graph for a tenant")
    trmgraph = tsub.add_parser("rm-graph", help="remove one tenant graph")
    for p in (tadd, trm, tlist, tstats, tgraph, trmgraph):
        p.add_argument("--root", type=Path, required=True,
                       help="platform root directory")
    for p in (tadd, trm, tstats, tgraph, trmgraph):
        p.add_argument("name", nargs="?" if p is tstats else None,
                       help="tenant name")
    tadd.add_argument("--max-graphs", type=int, default=8,
                      help="hard cap on registered graphs (0 = unlimited)")
    tadd.add_argument("--resident-budget", type=int, default=4,
                      help="soft cap on resident query engines (LRU past it)")
    tadd.add_argument("--max-queue-depth", type=int, default=256,
                      help="max in-flight requests (0 = unlimited)")
    tadd.add_argument("--rate-qps", type=float, default=0.0,
                      help="token-bucket refill rate (0 disables rate limiting)")
    tadd.add_argument("--burst", type=float, default=1.0,
                      help="token-bucket capacity (max burst size)")
    tgraph.add_argument("graph", help="graph name (unique within the tenant)")
    tgsrc = tgraph.add_mutually_exclusive_group(required=True)
    tgsrc.add_argument("--input", type=Path, default=None,
                       help="graph file (.gr/.mtx/.tsv/.npz)")
    tgsrc.add_argument("--gnm", default=None, metavar="N:M[:SEED]",
                       help="random G(n,m) generator spec")
    tgsrc.add_argument("--grid", default=None, metavar="R:C[:SEED]",
                       help="grid generator spec")
    tgsrc.add_argument("--dataset", default=None,
                       help="registered bench dataset name")
    tgraph.add_argument("--scale", type=int, default=None,
                        help="with --dataset: dataset scale")
    tgraph.add_argument("--seed", type=int, default=0,
                        help="with --dataset: dataset seed")
    tgraph.add_argument("--problem", default="mst",
                        help="what to solve and serve (mst, sssp, cc)")
    tgraph.add_argument("--source", type=int, default=0,
                        help="with --problem sssp: the solve source vertex")
    tgraph.add_argument("--algo", default="kruskal",
                        help="MST algorithm for problem=mst")
    tgraph.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                        default="auto")
    tgraph.add_argument("--shards", type=int, default=0,
                        help="solve cold builds through the sharded coordinator")
    trmgraph.add_argument("graph", help="graph name to remove")
    tlist.add_argument("--json", action="store_true",
                       help="print the manifest-backed listing as JSON")
    tstats.add_argument("--json", action="store_true",
                        help="print the statistics as JSON")

    loadp = sub.add_parser(
        "load", help="drive scenario load at the async service"
    )
    lsub = loadp.add_subparsers(dest="load_command", required=True)
    lrun = lsub.add_parser("run", help="expand a scenario and drive it open-loop")
    lrecord = lsub.add_parser(
        "record", help="run a scenario and write its JSONL event log"
    )
    lreplay = lsub.add_parser(
        "replay", help="re-offer a recorded JSONL event log"
    )
    lsoak = lsub.add_parser(
        "soak", help="sustained load with fault families injected under it"
    )
    for p in (lrun, lrecord):
        p.add_argument("--scenario", default="steady",
                       help="scenario preset name (see docs/load.md)")
    for p in (lrun, lrecord, lreplay):
        lsrc = p.add_mutually_exclusive_group()
        lsrc.add_argument("--dataset", default="usa-road",
                          help="registered dataset name")
        lsrc.add_argument("--input", type=Path, default=None,
                          help="graph file (.gr/.mtx/.tsv/.npz)")
        p.add_argument("--scale", type=int, default=None)
        p.add_argument("--algo", default="kruskal")
        p.add_argument("--seed", type=int, default=0,
                       help="scenario and dataset seed")
        p.add_argument("--duration", type=float, default=None, metavar="S",
                       help="override the scenario's duration")
        p.add_argument("--rate", type=float, default=None, metavar="QPS",
                       help="override the scenario's offered rate")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="override the per-request deadline")
        p.add_argument("--time-scale", type=float, default=1.0,
                       help="compress (<1) or stretch (>1) the schedule")
        p.add_argument("--max-pending", type=int, default=1024,
                       help="service queue bound (rejections past this)")
        p.add_argument("--json", action="store_true",
                       help="print the machine-readable result to stdout")
    lrecord.add_argument("--out", type=Path, required=True, metavar="PATH",
                         help="JSONL event log output path")
    lreplay.add_argument("--events", type=Path, required=True, metavar="PATH",
                         help="recorded JSONL event log to re-offer")
    lsoak.add_argument("--scenario", default="soak",
                       help="scenario preset name (default: soak)")
    lsoak.add_argument("--duration", type=float, default=None, metavar="S")
    lsoak.add_argument("--rate", type=float, default=None, metavar="QPS")
    lsoak.add_argument("--seed", type=int, default=0)
    lsoak.add_argument("--n", type=int, default=400, help="soak graph vertices")
    lsoak.add_argument("--m", type=int, default=1600, help="soak graph edges")
    lsoak.add_argument("--faults", type=_str_list,
                       default=["artifact-corruption", "worker-crash"],
                       help="comma-separated fault families ('' disables); "
                            "artifact-corruption|worker-crash|worker-hang")
    lsoak.add_argument("--store", type=Path, default=None,
                       help="artifact-store directory (default: a temp dir)")
    lsoak.add_argument("--time-scale", type=float, default=1.0)
    lsoak.add_argument("--error-budget", type=float, default=0.1,
                       help="max tolerated failure fraction of offered load")
    lsoak.add_argument("--out", type=Path, default=None, metavar="PATH",
                       help="write the SLO report JSON here")
    lsoak.add_argument("--events-out", type=Path, default=None, metavar="PATH",
                       help="also write the soak's JSONL event log here")
    lsoak.add_argument("--json", action="store_true",
                       help="print the SLO report to stdout")

    profp = sub.add_parser("profile", help="profile one algorithm run (cProfile hotspots)")
    profp.add_argument("--algo", default="llp-prim")
    profp.add_argument("--dataset", default="usa-road")
    profp.add_argument("--scale", type=int, default=None)
    profp.add_argument("--seed", type=int, default=0)
    profp.add_argument("--workers", type=int, default=1)
    profp.add_argument("--mode", choices=("loop", "vectorized", "auto"),
                       default=None, help="kernel mode to profile")
    profp.add_argument("--top", type=int, default=15, help="hotspots to show")

    cmpp = sub.add_parser("compare", help="diff two saved experiment JSON dumps")
    cmpp.add_argument("old", type=Path)
    cmpp.add_argument("new", type=Path)
    cmpp.add_argument("--threshold", type=float, default=5.0,
                      help="report series points moving more than this percent")

    checkp = sub.add_parser(
        "check", help="run the differential-oracle and fault-injection harness"
    )
    checkp.add_argument("--seed", type=int, default=0,
                        help="master seed; a nightly run's seed replays locally")
    checkp.add_argument("--graphs", type=int, default=200,
                        help="generated graph cases for the differential matrix")
    checkp.add_argument("--max-size", type=int, default=20,
                        help="largest generated vertex count")
    checkp.add_argument("--algos", type=_str_list, default=None,
                        help="comma-separated algorithm names (default: all)")
    checkp.add_argument("--families", type=_str_list, default=None,
                        help="comma-separated graph families (default: all)")
    checkp.add_argument("--backends", type=_str_list, default=None,
                        help="comma-separated backend labels (default: all)")
    checkp.add_argument("--no-shrink", action="store_true",
                        help="report mismatches without delta-debugging them")
    checkp.add_argument("--skip-problems", action="store_true",
                        help="skip the registered-problem differential matrix "
                             "(sssp vs Dijkstra, cc vs union-find)")
    checkp.add_argument("--problems", type=_str_list, default=None,
                        help="comma-separated problem names for the problem "
                             "matrix (default: all registered)")
    checkp.add_argument("--skip-faults", action="store_true",
                        help="skip the service-layer fault-injection suite")
    checkp.add_argument("--skip-schedules", action="store_true",
                        help="skip the adversarial-schedule hunts")
    checkp.add_argument("--schedules", type=int, default=15,
                        help="adversarial schedules per hunt")
    checkp.add_argument("--out-dir", type=Path, default=None,
                        help="write shrunken counterexample repros and the JSON "
                             "summary here (created on demand)")
    checkp.add_argument("--json", action="store_true",
                        help="print the machine-readable summary to stdout")
    checkp.add_argument("--self-test", action="store_true",
                        help="plant a deliberately broken algorithm and prove "
                             "the harness detects and shrinks it")

    tracep = sub.add_parser(
        "trace", help="re-run mst/solve/query/serve/check with tracing enabled"
    )
    tracep.add_argument("--out", dest="trace_out", type=Path,
                        default=Path("trace.json"), metavar="PATH",
                        help="Chrome trace-event JSON output (default trace.json)")
    tracep.add_argument("--profile", dest="trace_profile", action="store_true",
                        help="attach cProfile hotspots to solver spans")
    tracep.add_argument("--metrics-out", type=Path, default=None, metavar="PATH",
                        help="also write the flat metrics snapshot JSON here")
    tracep.add_argument("cmd", choices=("mst", "solve", "query", "serve", "check"),
                        help="subcommand to run under tracing")
    tracep.add_argument("rest", nargs=argparse.REMAINDER,
                        help="arguments forwarded to the subcommand")

    for p in (mstp, solvep, queryp, servep, checkp):
        _add_obs_flags(p)

    sub.add_parser("info", help="list algorithms and datasets")
    return parser


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to one subcommand parser."""
    grp = p.add_argument_group("observability")
    grp.add_argument("--trace", action="store_true",
                     help="record an observability trace of this run "
                          "(written to --trace-out, default trace.json)")
    grp.add_argument("--trace-out", type=Path, default=None, metavar="PATH",
                     help="Chrome trace-event JSON output path (implies --trace)")
    grp.add_argument("--trace-profile", action="store_true",
                     help="attach cProfile hotspots to solver spans "
                          "(implies --trace)")
    grp.add_argument("--metrics-out", type=Path, default=None, metavar="PATH",
                     help="also write the flat metrics snapshot JSON here")


def _obs_session(args: argparse.Namespace):
    """Build the run's trace session from the shared observability flags.

    Returns an active :class:`~repro.obs.TraceSession` when any tracing
    flag was given, else the free :class:`~repro.obs.NullSession` — so
    untraced runs never import or pay for the tracer machinery beyond
    one attribute check.
    """
    from repro.obs import NullSession, TraceSession

    enabled = (
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None) is not None
        or getattr(args, "trace_profile", False)
    )
    if not enabled:
        return NullSession()
    out = args.trace_out if args.trace_out is not None else Path("trace.json")
    return TraceSession(
        out, profile=args.trace_profile,
        metrics_path=getattr(args, "metrics_out", None),
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return _cmd_trace(args)
    traced = {
        "mst": _cmd_mst,
        "solve": _cmd_solve,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "check": _cmd_check,
    }
    if args.command in traced:
        session = _obs_session(args)
        args.obs = session
        with session:
            rc = traced[args.command](args)
        if session.active:
            print(f"[trace written: {session.out_path} "
                  f"({session.n_spans} spans)]", file=sys.stderr)
        return rc
    if args.command == "tenant":
        return _cmd_tenant(args)
    if args.command == "load":
        return _cmd_load(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "info":
        return _cmd_info()
    raise AssertionError("unreachable")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Sugar: forward to the chosen subcommand with tracing flags set."""
    forwarded = [args.cmd, "--trace", "--trace-out", str(args.trace_out)]
    if args.trace_profile:
        forwarded.append("--trace-profile")
    if args.metrics_out is not None:
        forwarded += ["--metrics-out", str(args.metrics_out)]
    rest = list(args.rest)
    if rest and rest[0] == "--":  # argparse REMAINDER keeps the separator
        rest = rest[1:]
    return main(forwarded + rest)


# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"available: {', '.join(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args)
        t0 = time.perf_counter()
        result = fn(**kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render(markdown=args.markdown))
        print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
        if args.json_dir is not None:
            args.json_dir.mkdir(parents=True, exist_ok=True)
            result.save(args.json_dir / f"{name}.json")
        if args.svg_dir is not None:
            from repro.bench.svg import save_experiment_figures

            for path in save_experiment_figures(result, args.svg_dir):
                print(f"[figure written: {path}]")
    return 0


def _experiment_kwargs(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if name == "table1":
        kwargs.update(road_scale=args.scale, rmat_scale=args.rmat_scale)
    elif name == "fig2":
        kwargs.update(
            road_scale=args.scale, rmat_scale=args.rmat_scale, repeats=args.repeats
        )
    elif name == "fig3":
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "fig4":
        kwargs.update(road_scale=args.scale, rmat_scale=args.rmat_scale)
    elif name in ("ablation-early-fixing", "ablation-heaps", "ablation-weights"):
        kwargs.update(scale=args.scale, repeats=args.repeats)
    elif name == "ablation-pointer-jumping":
        kwargs.update(scale=args.scale)
    elif name == "seed-stability":
        kwargs.pop("seed", None)
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "gil-exhibit":
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "operation-census":
        kwargs.update(scale=args.scale, rmat_scale=args.rmat_scale)
    elif name in ("calibration", "kkt-comparison"):
        kwargs.update(scale=args.scale, repeats=args.repeats)
    elif name == "scaling-sizes":
        if args.scale:
            kwargs.update(scales=tuple(range(max(8, args.scale - 3), args.scale + 1)))
    return kwargs


def _cmd_mst(args: argparse.Namespace) -> int:
    from repro.bench.datasets import build_dataset
    from repro.errors import BenchmarkError
    from repro.mst.registry import PARALLEL_ALGORITHMS, get_algorithm
    from repro.runtime.simulated import SimulatedBackend

    if args.input is not None:
        g = _load_graph(args.input, spill_dir=args.spill_dir)
        source = str(args.input)
    else:
        g = build_dataset(args.dataset, args.scale, args.seed)
        source = f"{args.dataset} (scale={args.scale or 'default'}, seed={args.seed})"
    try:
        algo = get_algorithm(args.algo, mode=args.mode)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = SimulatedBackend(args.workers) if args.algo in PARALLEL_ALGORITHMS else None

    if args.shards > 0:
        from repro.shard import sharded_mst

        t0 = time.perf_counter()
        try:
            result = sharded_mst(
                g, n_shards=args.shards, partition=args.partition,
                algorithm=args.algo, mode=args.mode, executor=args.executor,
                max_concurrent=args.max_concurrent,
                arena_backing=args.arena_backing,
                spool_dir=(str(args.spill_dir) if args.spill_dir else None),
            )
        except BenchmarkError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        result = algo(g, backend=backend)
        elapsed = time.perf_counter() - t0

    obs = getattr(args, "obs", None)
    if obs is not None and obs.active:
        from repro.obs import counters_provider, execution_trace_provider

        if backend is not None:
            obs.register("runtime.trace", execution_trace_provider(backend.trace))
        if result.stats:
            obs.register("mst.stats", counters_provider(result.stats))

    print(f"graph:     {source}  (n={g.n_vertices}, m={g.n_edges})")
    solver_note = (
        f" via sharded x{args.shards} ({args.partition})" if args.shards > 0 else ""
    )
    print(f"algorithm: {args.algo} [{args.mode or 'default'} mode]{solver_note}")
    print(f"forest:    {result.n_edges} edges, {result.n_components} component(s)")
    print(f"weight:    {result.total_weight:.6f}")
    print(f"wall time: {elapsed * 1e3:.2f} ms")
    if backend is not None:
        print(f"modelled:  {backend.modelled_time() * 1e3:.3f} ms at p={args.workers}")
    if result.stats:
        stats = ", ".join(f"{k}={v}" for k, v in sorted(result.stats.items()))
        print(f"stats:     {stats}")
    if args.verify:
        from repro.mst.verify import verify_minimum

        verify_minimum(g, result)
        print("verified:  edge set equals the unique MSF (Kruskal oracle)")
    if args.save is not None:
        from repro.service.artifacts import artifact_from_result, save_json_artifact

        artifact = artifact_from_result(
            g, result, args.algo, args.mode, build_index=False,
            solver="sharded" if args.shards > 0 else None, shards=args.shards,
        )
        save_json_artifact(artifact, args.save)
        print(f"saved:     MSF artifact written to {args.save}")
    return 0


def _load_graph(path: Path, spill_dir: Path | None = None):
    from repro.graphs.io import read_dimacs, read_edge_tsv, read_matrix_market
    from repro.graphs.io.binary import load_npz

    suffix = path.suffix.lower()
    spill = {}
    if spill_dir is not None:
        spill_dir.mkdir(parents=True, exist_ok=True)
        spill = {"spill": True, "spill_dir": str(spill_dir),
                 "memmap_dir": str(spill_dir)}
    if suffix == ".gr":
        return read_dimacs(path, **spill)
    if suffix == ".mtx":
        return read_matrix_market(path)
    if suffix in (".tsv", ".txt"):
        return read_edge_tsv(path, **spill)
    if suffix == ".npz":
        return load_npz(path)
    raise SystemExit(f"unsupported graph format {suffix!r} (use .gr/.mtx/.tsv/.npz)")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.solve import (
        ProblemArtifactStore,
        get_oracle,
        get_problem,
        problem_artifact_from_result,
        problem_info,
        save_problem_artifact,
    )

    try:
        info = problem_info(args.problem)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.input is not None:
        g = _load_graph(args.input)
        source = str(args.input)
    else:
        from repro.bench.datasets import build_dataset

        g = build_dataset(args.dataset, args.scale, args.seed)
        source = f"{args.dataset} (scale={args.scale or 'default'}, seed={args.seed})"
    params = {"source": args.source} if "source" in info.params else {}

    try:
        t0 = time.perf_counter()
        if args.store is not None:
            store = ProblemArtifactStore(args.store)
            artifact, hit = store.get_or_compute(
                g, args.problem, args.mode, **params
            )
            elapsed = time.perf_counter() - t0
            stats: dict = {}
            cache_note = f"  [{'warm' if hit else 'cold'} store {args.store}]"
        else:
            result = get_problem(args.problem, args.mode)(g, **params)
            elapsed = time.perf_counter() - t0
            artifact = problem_artifact_from_result(
                g, result, args.problem, args.mode, params
            )
            stats = dict(result.stats)
            cache_note = ""
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print(f"graph:     {source}  (n={g.n_vertices}, m={g.n_edges})")
    print(f"problem:   {args.problem} [{args.mode} mode]{cache_note}")
    scalars = ", ".join(f"{k}={v}" for k, v in sorted(artifact.scalars.items()))
    print(f"result:    {scalars}")
    print(f"wall time: {elapsed * 1e3:.2f} ms")
    if stats:
        print("stats:     " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    if args.verify:
        import numpy as np

        oracle = get_oracle(args.problem)(g, **params)
        expect = oracle.arrays()
        for name, arr in artifact.arrays.items():
            ref = expect[name]
            if arr.dtype != ref.dtype or not np.array_equal(arr, ref):
                print(f"VERIFY FAILED: array {name!r} differs from the "
                      f"{info.oracle} oracle", file=sys.stderr)
                return 1
        print(f"verified:  byte-identical to the {info.oracle} oracle")
    if args.save is not None:
        save_problem_artifact(artifact, args.save)
        print(f"saved:     problem artifact written to {args.save}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.service import MSTService

    if args.problem is not None:
        return _cmd_query_problem(args)
    try:
        svc = MSTService(args.store, algorithm=args.algo, mode=args.mode,
                         shards=args.shards, partition=args.partition,
                         executor=args.executor)
        obs = getattr(args, "obs", None)
        if obs is not None and obs.active:
            from repro.obs import service_metrics_provider

            obs.register("service.metrics", service_metrics_provider(svc.metrics))
        if args.artifact is not None:
            artifact = svc.load_artifact(args.artifact)
            source = str(args.artifact)
        else:
            if args.input is not None:
                g = _load_graph(args.input)
                source = str(args.input)
            elif args.dataset is not None:
                from repro.bench.datasets import build_dataset

                g = build_dataset(args.dataset, args.scale, args.seed)
                source = f"{args.dataset} (scale={args.scale or 'default'})"
            else:
                print("query needs --artifact, --dataset, or --input", file=sys.stderr)
                return 2
            artifact = svc.load_graph(g)
        solved_by = artifact.algorithm
        if artifact.solver:
            solved_by += f" via {artifact.solver} x{artifact.shards}"
        print(f"artifact:  {source}  [{solved_by}] "
              f"(n={artifact.n_vertices}, forest={artifact.n_forest_edges} edges, "
              f"{artifact.n_components} components)")
        return _answer_queries(svc, args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_query_problem(args: argparse.Namespace) -> int:
    """``query --problem``: answer a registered problem's query kinds."""
    from repro.errors import ReproError
    from repro.solve import ProblemService, problem_info

    try:
        info = problem_info(args.problem)
        params = {"source": args.source} if "source" in info.params else {}
        svc = ProblemService(
            args.store, problem=args.problem, mode=args.mode, **params
        )
        obs = getattr(args, "obs", None)
        if obs is not None and obs.active:
            from repro.obs import service_metrics_provider

            obs.register("service.metrics", service_metrics_provider(svc.metrics))
        if args.artifact is not None:
            artifact = svc.load_artifact(args.artifact)
            source = str(args.artifact)
        else:
            if args.input is not None:
                g = _load_graph(args.input)
                source = str(args.input)
            elif args.dataset is not None:
                from repro.bench.datasets import build_dataset

                g = build_dataset(args.dataset, args.scale, args.seed)
                source = f"{args.dataset} (scale={args.scale or 'default'})"
            else:
                print("query needs --artifact, --dataset, or --input", file=sys.stderr)
                return 2
            artifact = svc.load_graph(g)
        scalars = ", ".join(
            f"{k}={v}" for k, v in sorted(artifact.scalars.items())
        )
        print(f"artifact:  {source}  [{artifact.problem}] "
              f"(n={artifact.n_vertices}, {scalars})")
        return _answer_problem_queries(svc, args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _answer_problem_queries(svc, args: argparse.Namespace) -> int:
    """Dispatch ``--type`` against a :class:`~repro.solve.ProblemService`."""
    kinds = svc.query_kinds
    kind = args.qtype or kinds[0]
    if kind not in kinds:
        print(f"unknown query type {kind!r} for problem {svc.problem!r}; "
              f"supported: {', '.join(kinds)}", file=sys.stderr)
        return 2
    if kind == "same":
        if not args.pairs:
            print("--type same needs --pairs u:v,...", file=sys.stderr)
            return 2
        us, vs = zip(*args.pairs)
        for (u, v), out in zip(args.pairs, svc.same_component(us, vs)):
            print(f"same {u}:{v} -> {bool(out)}")
        return 0
    if not args.vertices:
        print(f"--type {kind} needs --vertices v0,v1,...", file=sys.stderr)
        return 2
    fn = {
        "dist": svc.dist, "parent": svc.parent, "reached": svc.reached,
        "label": svc.label, "component_size": svc.component_size,
    }[kind]
    for v, out in zip(args.vertices, fn(args.vertices)):
        if kind == "dist":
            text = f"{float(out):g}"
        elif kind == "reached":
            text = str(bool(out))
        else:
            text = str(int(out))
        print(f"{kind} {v} -> {text}")
    return 0


def _answer_queries(svc, args: argparse.Namespace) -> int:
    kind = args.qtype or "connected"
    if kind == "weight":
        print(f"weight -> {svc.total_weight():.6f}")
        return 0
    if kind in ("component", "component_size"):
        if not args.vertices:
            print("--type component/component_size needs --vertices", file=sys.stderr)
            return 2
        fn = svc.component_id if kind == "component" else svc.component_size
        for v, out in zip(args.vertices, fn(args.vertices)):
            print(f"{kind} {v} -> {out}")
        return 0
    if kind == "replacement":
        if not args.edges:
            print("--type replacement needs --edges u:v:w,...", file=sys.stderr)
            return 2
        us, vs, ws = zip(*args.edges)
        for (u, v, w), out in zip(args.edges, svc.would_change_msf(us, vs, ws)):
            print(f"replacement {u}:{v}:{w:g} -> {bool(out)}")
        return 0
    if kind in ("connected", "bottleneck"):
        if not args.pairs:
            print(f"--type {kind} needs --pairs u:v,...", file=sys.stderr)
            return 2
        us, vs = zip(*args.pairs)
        outs = svc.connected(us, vs) if kind == "connected" else svc.bottleneck(us, vs)
        for (u, v), out in zip(args.pairs, outs):
            text = str(bool(out)) if kind == "connected" else f"{float(out):g}"
            print(f"{kind} {u}:{v} -> {text}")
        return 0
    print(f"unknown query type {kind!r}", file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.errors import ReproError, ServiceError
    from repro.service import MSTService
    from repro.service.server import AsyncMSTService

    if args.multi:
        return _cmd_serve_multi(args)

    if args.input is not None:
        g = _load_graph(args.input)
    else:
        from repro.bench.datasets import build_dataset

        g = build_dataset(args.dataset, args.scale, args.seed)
    if args.problem is not None:
        from repro.solve import ProblemService, problem_info

        try:
            info = problem_info(args.problem)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        params = {"source": args.source} if "source" in info.params else {}
        svc = ProblemService(
            args.store, problem=args.problem, mode=args.mode, **params
        )
    else:
        svc = MSTService(args.store, algorithm=args.algo, mode=args.mode)
    obs = getattr(args, "obs", None)
    if obs is not None and obs.active:
        from repro.obs import service_metrics_provider

        obs.register("service.metrics", service_metrics_provider(svc.metrics))
    t0 = time.perf_counter()
    artifact = svc.load_graph(g)
    load_s = time.perf_counter() - t0
    warm = svc.metrics.artifact_hits > 0
    shape = (
        f"forest={artifact.n_forest_edges} edges" if args.problem is None
        else ", ".join(f"{k}={v}" for k, v in sorted(artifact.scalars.items()))
    )
    print(f"serving {artifact.fingerprint[:12]}... "
          f"(n={artifact.n_vertices}, {shape}) "
          f"[{'warm' if warm else 'cold'} load {load_s * 1e3:.1f} ms]",
          file=sys.stderr)

    lines = (args.queries.read_text() if args.queries is not None
             else sys.stdin.read()).splitlines()
    # A malformed or oversized request line yields a structured error
    # *record* in the response stream; it must never abort the run and
    # drop the well-formed requests coalesced around it.
    parsed: list[tuple[int, tuple | None, str | None]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        request, error = _parse_serve_request(line, _json)
        parsed.append((lineno, request, error))

    requests = [(lineno, *request) for lineno, request, _ in parsed
                if request is not None]

    # SIGINT contract: stop intake (no new requests issued), drain what is
    # already in flight through the service's own stop() (run by the
    # context-manager exit), answer un-issued lines with a structured
    # "interrupted" record, and print the final metrics summary line.
    async def _run() -> tuple[dict, bool]:
        loop = asyncio.get_running_loop()
        stop_intake = asyncio.Event()
        uninstall = _install_sigint(loop, stop_intake.set)
        answers: dict[int, object] = {}
        interrupted = False
        try:
            async with AsyncMSTService(
                svc, max_batch=args.max_batch, max_delay_s=args.max_delay_ms / 1e3
            ) as server:
                async def one(lineno, op, u, v, w):
                    try:
                        answers[lineno] = await server.query(op, u, v, w)
                    except (ReproError, ServiceError) as exc:
                        answers[lineno] = {"error": str(exc)}
                    except Exception as exc:  # malformed args the engine rejected
                        answers[lineno] = {"error": f"{type(exc).__name__}: {exc}"}

                tasks = []
                for lineno, op, u, v, w in requests:
                    if stop_intake.is_set():
                        interrupted = True
                        break
                    tasks.append(asyncio.create_task(one(lineno, op, u, v, w)))
                    # Yield so the signal handler (and the batch worker)
                    # gets a turn between submissions.
                    await asyncio.sleep(0)
                if tasks:
                    await asyncio.gather(*tasks)
                # Context-manager exit runs stop(): in-flight work drains.
        finally:
            uninstall()
        return answers, interrupted

    try:
        answers, interrupted = asyncio.run(_run())
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    n_bad = 0
    for lineno, request, error in parsed:
        if request is None:
            n_bad += 1
            print(_json.dumps({"line": lineno, "error": error}))
            continue
        op, u, v, w = request
        record = {"op": op}
        if u is not None:
            record["u"] = u
        if v is not None:
            record["v"] = v
        if w is not None:
            record["w"] = w
        if lineno not in answers:
            record["error"] = "interrupted before issue (SIGINT)"
        else:
            answer = answers[lineno]
            if isinstance(answer, dict) and "error" in answer:
                record["error"] = answer["error"]
            else:
                record["result"] = answer
        print(_json.dumps(record))
    if n_bad:
        print(f"{n_bad} malformed request line(s) answered with structured errors",
              file=sys.stderr)
    if interrupted:
        print("interrupted: intake stopped, in-flight requests drained",
              file=sys.stderr)
    print(svc.metrics.summary_line(), file=sys.stderr)
    if args.metrics:
        print(svc.metrics.render(), file=sys.stderr)
    return 130 if interrupted else 0


def _install_sigint(loop, handler) -> "callable":
    """Install ``handler`` as the loop's SIGINT callback; returns an uninstaller.

    Falls back to a no-op uninstaller on platforms/threads where asyncio
    signal handlers are unavailable (Windows, non-main threads) — there
    SIGINT keeps its default KeyboardInterrupt behaviour.  Tests
    monkeypatch this to simulate an interrupt mid-stream.
    """
    import signal

    try:
        loop.add_signal_handler(signal.SIGINT, handler)
    except (NotImplementedError, RuntimeError, ValueError):
        return lambda: None

    def uninstall() -> None:
        try:
            loop.remove_signal_handler(signal.SIGINT)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

    return uninstall


def _parse_multi_request(line: str, _json) -> tuple[tuple | None, str | None]:
    """Parse one multi-tenant JSON-lines request; ``(request, error)`` pair.

    Like :func:`_parse_serve_request` plus required string ``tenant`` and
    ``graph`` fields; the request tuple is
    ``(tenant, graph, op, u, v, w)``.
    """
    if len(line.encode("utf-8", errors="replace")) > _MAX_REQUEST_BYTES:
        return None, f"request exceeds {_MAX_REQUEST_BYTES} bytes"
    try:
        req = _json.loads(line)
    except ValueError as exc:
        return None, f"invalid JSON: {exc}"
    if not isinstance(req, dict):
        return None, "request must be a JSON object"
    tenant, graph = req.get("tenant"), req.get("graph")
    for name, val in (("tenant", tenant), ("graph", graph)):
        if not isinstance(val, str) or not val:
            return None, f"missing or non-string {name!r}"
    op = req.get("op")
    if not isinstance(op, str):
        return None, "missing or non-string 'op'"
    u, v, w = req.get("u"), req.get("v"), req.get("w")
    for name, val in (("u", u), ("v", v)):
        if val is not None and (isinstance(val, bool) or not isinstance(val, int)):
            return None, f"'{name}' must be an integer"
    if w is not None and (isinstance(w, bool) or not isinstance(w, (int, float))):
        return None, "'w' must be a number"
    return (tenant, graph, op, u, v, w), None


def _cmd_serve_multi(args: argparse.Namespace) -> int:
    """``serve --multi``: the multi-tenant JSONL request/response loop.

    Same stream contract as single-graph serve — one response record per
    request line, malformed lines answered in-stream, SIGINT stops
    intake and drains — with two additions: requests address
    ``tenant/graph`` names, and quota rejections come back as the
    structured 429-style record from
    :meth:`~repro.errors.QuotaExceededError.to_record` (``code``,
    ``reason``, ``retry_after_s``) so callers can back off per tenant.
    """
    import asyncio
    import json as _json

    from repro.errors import QuotaExceededError, ReproError, ServiceError
    from repro.platform import MultiTenantServer, build_platform

    if args.root is None:
        print("serve --multi requires --root (the platform directory)",
              file=sys.stderr)
        return 2
    try:
        platform = build_platform(args.root)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    obs = getattr(args, "obs", None)
    if obs is not None and obs.active:
        for name, provider in platform.metrics_providers().items():
            obs.register(name, provider)
    n_graphs = sum(
        len(platform.tenant(t).graphs) for t in platform.tenants()
    )
    print(f"serving {n_graphs} graph(s) across "
          f"{len(platform.tenants())} tenant(s) from {args.root}",
          file=sys.stderr)

    lines = (args.queries.read_text() if args.queries is not None
             else sys.stdin.read()).splitlines()
    parsed: list[tuple[int, tuple | None, str | None]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if line:
            parsed.append((lineno, *_parse_multi_request(line, _json)))
    requests = [(lineno, *request) for lineno, request, _ in parsed
                if request is not None]

    async def _run() -> tuple[dict, bool]:
        loop = asyncio.get_running_loop()
        stop_intake = asyncio.Event()
        uninstall = _install_sigint(loop, stop_intake.set)
        answers: dict[int, object] = {}
        interrupted = False
        try:
            async with MultiTenantServer(
                platform, max_batch=args.max_batch,
                max_delay_s=args.max_delay_ms / 1e3,
            ) as server:
                async def one(lineno, tenant, graph, op, u, v, w):
                    try:
                        answers[lineno] = await server.query(
                            tenant, graph, op, u, v, w
                        )
                    except QuotaExceededError as exc:
                        answers[lineno] = exc.to_record()
                    except (ReproError, ServiceError) as exc:
                        answers[lineno] = {"error": str(exc)}
                    except Exception as exc:
                        answers[lineno] = {"error": f"{type(exc).__name__}: {exc}"}

                tasks = []
                for lineno, tenant, graph, op, u, v, w in requests:
                    if stop_intake.is_set():
                        interrupted = True
                        break
                    tasks.append(asyncio.create_task(
                        one(lineno, tenant, graph, op, u, v, w)
                    ))
                    await asyncio.sleep(0)
                if tasks:
                    await asyncio.gather(*tasks)
        finally:
            uninstall()
        return answers, interrupted

    try:
        answers, interrupted = asyncio.run(_run())
    except ReproError as exc:
        platform.close()
        print(str(exc), file=sys.stderr)
        return 2
    n_bad = 0
    for lineno, request, error in parsed:
        if request is None:
            n_bad += 1
            print(_json.dumps({"line": lineno, "error": error}))
            continue
        tenant, graph, op, u, v, w = request
        record = {"tenant": tenant, "graph": graph, "op": op}
        for key, val in (("u", u), ("v", v), ("w", w)):
            if val is not None:
                record[key] = val
        if lineno not in answers:
            record["error"] = "interrupted before issue (SIGINT)"
        else:
            answer = answers[lineno]
            if isinstance(answer, dict) and "error" in answer:
                record.update(answer)
            else:
                record["result"] = answer
        print(_json.dumps(record))
    if n_bad:
        print(f"{n_bad} malformed request line(s) answered with structured errors",
              file=sys.stderr)
    if interrupted:
        print("interrupted: intake stopped, in-flight requests drained",
              file=sys.stderr)
    for tname in platform.tenants():
        state = platform.tenant(tname)
        print(f"[{tname}] {state.metrics.summary_line()} "
              f"quota_rejected={state.rejected_rate + state.rejected_queue}",
              file=sys.stderr)
    if args.metrics:
        for tname in platform.tenants():
            print(f"--- tenant {tname} ---", file=sys.stderr)
            print(platform.tenant(tname).metrics.render(), file=sys.stderr)
    platform.close()
    return 130 if interrupted else 0


def _cmd_tenant(args: argparse.Namespace) -> int:
    """``tenant add|rm|list|stats|add-graph|rm-graph`` manifest management."""
    import json as _json

    from repro.errors import ReproError
    from repro.platform.manifest import load_manifest, save_manifest

    try:
        manifest = load_manifest(args.root)
        if args.tenant_command == "add":
            if args.name in manifest["tenants"]:
                print(f"tenant {args.name!r} already exists", file=sys.stderr)
                return 2
            from repro.platform.quota import TenantQuota

            quota = TenantQuota(
                max_graphs=args.max_graphs,
                resident_budget=args.resident_budget,
                max_queue_depth=args.max_queue_depth,
                rate_qps=args.rate_qps,
                burst=args.burst,
            )
            manifest["tenants"][args.name] = {
                "quota": quota.to_dict(), "graphs": {},
            }
            save_manifest(args.root, manifest)
            print(f"added tenant {args.name!r}")
            return 0
        if args.tenant_command == "rm":
            if manifest["tenants"].pop(args.name, None) is None:
                print(f"unknown tenant {args.name!r}", file=sys.stderr)
                return 2
            save_manifest(args.root, manifest)
            print(f"removed tenant {args.name!r}")
            return 0
        if args.tenant_command == "list":
            if args.json:
                print(_json.dumps(manifest, indent=2, sort_keys=True))
                return 0
            if not manifest["tenants"]:
                print("no tenants registered")
            for name, rec in sorted(manifest["tenants"].items()):
                quota = rec.get("quota") or {}
                graphs = sorted(rec.get("graphs") or {})
                print(f"{name}: {len(graphs)} graph(s)"
                      + (f" [{', '.join(graphs)}]" if graphs else "")
                      + f" quota(max_graphs={quota.get('max_graphs')}, "
                        f"rate_qps={quota.get('rate_qps')})")
            return 0
        if args.tenant_command == "add-graph":
            trec = manifest["tenants"].get(args.name)
            if trec is None:
                print(f"unknown tenant {args.name!r}", file=sys.stderr)
                return 2
            graphs = trec.setdefault("graphs", {})
            if args.graph in graphs:
                print(f"graph {args.name}/{args.graph} already exists",
                      file=sys.stderr)
                return 2
            if args.input is not None:
                source = {"path": str(args.input)}
            elif args.gnm is not None:
                n, m, *seed = (int(x) for x in args.gnm.split(":"))
                source = {"kind": "gnm", "n": n, "m": m,
                          "seed": seed[0] if seed else 0}
            elif args.grid is not None:
                r, c, *seed = (int(x) for x in args.grid.split(":"))
                source = {"kind": "grid", "rows": r, "cols": c,
                          "seed": seed[0] if seed else 0}
            else:
                source = {"kind": "dataset", "name": args.dataset,
                          "scale": args.scale, "seed": args.seed}
            from repro.platform.manifest import graph_from_spec
            from repro.solve.registry import problem_info

            g = graph_from_spec(source)  # validates the spec eagerly
            params = {}
            if args.problem != "mst":
                info = problem_info(args.problem)  # validates the name
                if "source" in info.params:
                    params["source"] = args.source
            graphs[args.graph] = {
                "source": source, "problem": args.problem,
                "algorithm": args.algo, "mode": args.mode,
                "shards": args.shards, "params": params,
            }
            save_manifest(args.root, manifest)
            print(f"added {args.name}/{args.graph} "
                  f"(n={g.n_vertices}, m={g.n_edges}, problem={args.problem})")
            return 0
        if args.tenant_command == "rm-graph":
            trec = manifest["tenants"].get(args.name)
            if trec is None or args.graph not in (trec.get("graphs") or {}):
                print(f"unknown graph {args.name}/{args.graph}", file=sys.stderr)
                return 2
            del trec["graphs"][args.graph]
            save_manifest(args.root, manifest)
            print(f"removed {args.name}/{args.graph}")
            return 0
        # stats: materialise the platform (warm from the shared store)
        from repro.platform import build_platform

        platform = build_platform(args.root)
        try:
            stats = platform.stats(args.name)
        finally:
            platform.close()
        if args.json:
            print(_json.dumps(stats, indent=2, sort_keys=True))
        else:
            _print_tenant_stats(stats, args.name)
        return 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _print_tenant_stats(stats: dict, name: str | None) -> None:
    """Human rendering of ``GraphPlatform.stats()`` output."""
    tenants = {name: stats} if name is not None else stats.get("tenants", {})
    for tname, rec in sorted(tenants.items()):
        rej = rec.get("rejected", {})
        print(f"tenant {tname}: admitted={rec.get('admitted', 0)} "
              f"rejected(rate={rej.get('rate', 0)}, queue={rej.get('queue', 0)}) "
              f"evictions={rec.get('evictions', 0)}")
        for gname, grec in sorted((rec.get("graphs") or {}).items()):
            print(f"  {gname}: problem={grec['problem']} "
                  f"n={grec['n_vertices']} m={grec['n_edges']} "
                  f"resident={grec['resident']} dirty={grec['dirty']} "
                  f"rebuilds={grec['rebuilds']}")
    pool = stats.get("pool")
    if pool:
        print(f"pool: live={pool.get('live_workers', 0)} "
              f"submitted={pool.get('submitted', 0)} "
              f"completed={pool.get('completed', 0)} "
              f"rejected={pool.get('rejected', 0)}")


def _cmd_load(args: argparse.Namespace) -> int:
    """Dispatch the ``load`` subcommands (run/record/replay/soak)."""
    from repro.errors import ReproError

    try:
        if args.load_command == "soak":
            return _cmd_load_soak(args)
        return _cmd_load_drive(args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_load_drive(args: argparse.Namespace) -> int:
    """``load run|record|replay``: offer one event stream open-loop."""
    import json as _json

    from repro.load import (
        get_scenario,
        read_events,
        replay_requests,
        request_stream_hash,
        run_scenario,
        write_events,
    )
    from repro.service import MSTService

    if args.input is not None:
        g = _load_graph(args.input)
    else:
        from repro.bench.datasets import build_dataset

        g = build_dataset(args.dataset, args.scale, args.seed)
    svc = MSTService(None, algorithm=args.algo)
    svc.load_graph(g)

    overrides: dict = {"seed": args.seed}
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.rate is not None:
        overrides["rate_qps"] = args.rate
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout

    events = None
    if args.load_command == "replay":
        # The schedule and operands come from the log; the scenario object
        # only carries the label, seed, and per-request deadline.
        import dataclasses

        events = replay_requests(read_events(args.events))
        scenario = dataclasses.replace(
            get_scenario("steady", **overrides), name="replay"
        )
    else:
        scenario = get_scenario(args.scenario, **overrides)

    result = run_scenario(
        svc, scenario, events=events, time_scale=args.time_scale,
        max_pending=args.max_pending,
    )
    stream_hash = request_stream_hash(result.events)

    if args.load_command == "record":
        write_events(result.events, args.out)
        print(f"[event log written: {args.out} ({len(result.events)} events)]",
              file=sys.stderr)
    if args.json:
        payload = result.to_dict()
        payload["stream_hash"] = stream_hash
        print(_json.dumps(payload, indent=2))
    else:
        d = result.to_dict()
        print(f"scenario={d['scenario']} seed={d['seed']} "
              f"offered={d['offered']} completed={d['completed']} "
              f"rejected={d['rejected']} timeouts={d['timeouts']} "
              f"errors={d['errors']} mutations={d['mutations']} "
              f"wall={d['wall_s']:.3f}s offered_qps={d['offered_qps']}")
        print(f"stream_hash={stream_hash}")
        print(svc.metrics.summary_line(), file=sys.stderr)
    return 0


def _cmd_load_soak(args: argparse.Namespace) -> int:
    """``load soak``: faults-under-load run; exit 0 iff the report is ok."""
    import json as _json

    from repro.load import run_soak
    from repro.load.report import write_report

    report = run_soak(
        scenario=args.scenario, duration_s=args.duration, rate_qps=args.rate,
        faults=tuple(args.faults), seed=args.seed, n_vertices=args.n,
        n_edges=args.m, store_dir=args.store, time_scale=args.time_scale,
        error_budget=args.error_budget, events_out=args.events_out,
    )
    if args.out is not None:
        write_report(report, args.out)
        print(f"[soak report written: {args.out}]", file=sys.stderr)
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        load = report["load"]
        print(f"soak scenario={load['scenario']} offered={load['offered']} "
              f"completed={load['completed']} rejected={load['rejected']} "
              f"timeouts={load['timeouts']} errors={load['errors']} "
              f"failure_rate={load['failure_rate']}")
        for fault in report["faults"]:
            verdict = "ok" if fault["ok"] else f"FAILED ({fault['detail']})"
            print(f"fault {fault['family']}: injected={fault['injected']} {verdict}")
        print(f"replay deterministic={report['replay']['deterministic']} "
              f"leaked_segments={len(report['leaked_segments'])} "
              f"ok={report['ok']}")
    return 0 if report["ok"] else 1


def _cmd_check(args: argparse.Namespace) -> int:
    import json as _json
    import tempfile

    from repro.errors import ReproError

    progress = lambda msg: print(f"[check] {msg}", file=sys.stderr)  # noqa: E731
    if args.self_test:
        return _check_self_test(args, progress)

    from repro.checking import (
        hunt_llp_schedules,
        hunt_mst_schedules,
        run_fault_suite,
        run_matrix,
        shrink_mismatch,
        to_pytest_repro,
    )

    summary: dict = {"seed": args.seed, "graphs": args.graphs}
    t0 = time.perf_counter()
    try:
        report = run_matrix(
            seed=args.seed, count=args.graphs, families=args.families,
            max_size=args.max_size, algorithms=args.algos,
            backends=args.backends, progress=progress,
        )
    except (ReproError, KeyError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary["matrix"] = {
        "cases": report.cases_run,
        "checks": report.checks_run,
        "mismatches": [str(m) for m in report.mismatches],
    }
    obs = getattr(args, "obs", None)
    if obs is not None and obs.active:
        obs.register("check.matrix", lambda: {
            "cases": report.cases_run,
            "checks": report.checks_run,
            "mismatches": len(report.mismatches),
        })
    progress(
        f"matrix: {report.cases_run} cases, {report.checks_run} checks, "
        f"{len(report.mismatches)} mismatches "
        f"[{time.perf_counter() - t0:.1f}s]"
    )

    counterexamples: list[str] = []
    if report.mismatches and not args.no_shrink:
        for i, mismatch in enumerate(report.mismatches):
            shrunk = shrink_mismatch(mismatch)
            repro = to_pytest_repro(shrunk, test_name=f"test_counterexample_{i}")
            counterexamples.append(repro)
            progress(
                f"shrunk {mismatch.label} from "
                f"{shrunk.original_vertices} vertices to "
                f"{shrunk.graph.n_vertices} "
                f"({shrunk.predicate_calls} predicate calls)"
            )
    summary["counterexamples"] = counterexamples

    problem_mismatches: list = []
    if not args.skip_problems:
        from repro.checking import (
            run_problem_matrix,
            shrink_problem_mismatch,
            to_problem_pytest_repro,
        )

        t1 = time.perf_counter()
        try:
            preport = run_problem_matrix(
                seed=args.seed, count=args.graphs, families=args.families,
                max_size=args.max_size, problems=args.problems,
                progress=progress,
            )
        except (ReproError, KeyError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        problem_mismatches = preport.mismatches
        summary["problems"] = {
            "cases": preport.cases_run,
            "checks": preport.checks_run,
            "mismatches": [str(m) for m in preport.mismatches],
        }
        progress(
            f"problems: {preport.cases_run} cases, {preport.checks_run} checks, "
            f"{len(preport.mismatches)} mismatches "
            f"[{time.perf_counter() - t1:.1f}s]"
        )
        if preport.mismatches and not args.no_shrink:
            for i, mismatch in enumerate(preport.mismatches):
                shrunk = shrink_problem_mismatch(mismatch)
                repro = to_problem_pytest_repro(
                    shrunk, test_name=f"test_problem_counterexample_{i}"
                )
                counterexamples.append(repro)
                progress(
                    f"shrunk {mismatch.label} from "
                    f"{shrunk.original_vertices} vertices to "
                    f"{shrunk.graph.n_vertices} "
                    f"({shrunk.predicate_calls} predicate calls)"
                )
        summary["counterexamples"] = counterexamples

    if not args.skip_faults:
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            faults = run_fault_suite(args.out_dir / "faults", seed=args.seed)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
                faults = run_fault_suite(tmp, seed=args.seed)
        summary["faults"] = {
            "checks": faults.checks_run, "failures": faults.failures,
        }
        progress(f"faults: {faults.checks_run} checks, "
                 f"{len(faults.failures)} failures")

    if not args.skip_schedules:
        from repro.mst.registry import PARALLEL_ALGORITHMS

        llp = hunt_llp_schedules(seed=args.seed, n_schedules=args.schedules)
        par = (
            [a for a in args.algos if a in PARALLEL_ALGORITHMS]
            if args.algos else None
        )
        mst = hunt_mst_schedules(
            seed=args.seed, n_schedules=max(args.schedules // 3, 2),
            algorithms=par,
        )
        summary["schedules"] = {
            "runs": llp.runs + mst.runs,
            "failures": llp.failures + mst.failures,
        }
        progress(f"schedules: {llp.runs + mst.runs} runs, "
                 f"{len(llp.failures) + len(mst.failures)} failures")

    failed = bool(report.mismatches)
    failed |= bool(problem_mismatches)
    failed |= bool(summary.get("faults", {}).get("failures"))
    failed |= bool(summary.get("schedules", {}).get("failures"))
    summary["ok"] = not failed

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        (args.out_dir / "check-summary.json").write_text(
            _json.dumps(summary, indent=2) + "\n"
        )
        for i, repro in enumerate(counterexamples):
            (args.out_dir / f"counterexample_{i}.py").write_text(repro)
        progress(f"summary and {len(counterexamples)} counterexample repro(s) "
                 f"written to {args.out_dir}")
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        for mismatch in report.mismatches:
            print(str(mismatch))
        for mismatch in problem_mismatches:
            print(str(mismatch))
        for repro in counterexamples:
            print("\n" + repro)
        for line in summary.get("faults", {}).get("failures", []):
            print(f"fault: {line}")
        for line in summary.get("schedules", {}).get("failures", []):
            print(f"schedule: {line}")
        print("check: " + ("FAILED" if failed else "OK"))
    return 1 if failed else 0


def _check_self_test(args: argparse.Namespace, progress) -> int:
    """Plant a broken algorithm; the harness must find and shrink it."""
    from repro.checking import (
        BROKEN_ALGORITHM_NAME,
        broken_max_forest,
        run_matrix,
        shrink_mismatch,
        to_pytest_repro,
    )

    extra = {BROKEN_ALGORITHM_NAME: broken_max_forest}
    report = run_matrix(
        seed=args.seed, count=min(args.graphs, 40),
        algorithms=[BROKEN_ALGORITHM_NAME], extra_algorithms=extra,
        max_mismatches=1,
    )
    if report.ok:
        print("self-test FAILED: planted broken algorithm went undetected",
              file=sys.stderr)
        return 1
    mismatch = report.mismatches[0]
    progress(f"planted bug detected: {mismatch}")
    shrunk = shrink_mismatch(mismatch, extra_algorithms=extra)
    progress(
        f"shrunk from {shrunk.original_vertices} vertices / "
        f"{shrunk.original_edges} edges to {shrunk.graph.n_vertices} / "
        f"{shrunk.graph.n_edges} in {shrunk.predicate_calls} predicate calls"
    )
    if shrunk.graph.n_vertices > 8:
        print(f"self-test FAILED: counterexample stuck at "
              f"{shrunk.graph.n_vertices} vertices (> 8)", file=sys.stderr)
        return 1
    print(to_pytest_repro(shrunk, test_name="test_self_test_counterexample"))
    print("self-test OK: planted bug detected and shrunk to "
          f"{shrunk.graph.n_vertices} vertices")
    return 0


_MAX_REQUEST_BYTES = 64 * 1024


def _parse_serve_request(line: str, _json) -> tuple[tuple | None, str | None]:
    """Parse one JSON-lines request; returns ``(request, error)``.

    Exactly one of the pair is non-``None``.  Oversized lines, non-object
    payloads, missing/ill-typed fields all map to an error string instead
    of an exception so the serve loop can answer them in-stream.
    """
    if len(line.encode("utf-8", errors="replace")) > _MAX_REQUEST_BYTES:
        return None, f"request exceeds {_MAX_REQUEST_BYTES} bytes"
    try:
        req = _json.loads(line)
    except ValueError as exc:
        return None, f"invalid JSON: {exc}"
    if not isinstance(req, dict):
        return None, "request must be a JSON object"
    op = req.get("op")
    if not isinstance(op, str):
        return None, "missing or non-string 'op'"
    u, v, w = req.get("u"), req.get("v"), req.get("w")
    for name, val in (("u", u), ("v", v)):
        if val is not None and (isinstance(val, bool) or not isinstance(val, int)):
            return None, f"'{name}' must be an integer"
    if w is not None and (isinstance(w, bool) or not isinstance(w, (int, float))):
        return None, "'w' must be a number"
    return (op, u, v, w), None


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.datasets import build_dataset
    from repro.bench.profiling import profile_callable
    from repro.errors import BenchmarkError
    from repro.mst.registry import PARALLEL_ALGORITHMS, get_algorithm
    from repro.runtime.simulated import SimulatedBackend

    g = build_dataset(args.dataset, args.scale, args.seed)
    g.py_adjacency
    g.min_rank_per_vertex
    try:
        algo = get_algorithm(args.algo, mode=args.mode)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = (
        SimulatedBackend(args.workers) if args.algo in PARALLEL_ALGORITHMS else None
    )
    report = profile_callable(lambda: algo(g, backend=backend))
    print(f"profiling {args.algo} on {args.dataset} "
          f"(n={g.n_vertices}, m={g.n_edges})\n")
    print(report.render(limit=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare_results, load_result_json

    report = compare_results(
        load_result_json(args.old),
        load_result_json(args.new),
        threshold_pct=args.threshold,
    )
    print(report.render())
    return 1 if report.qualitative_flags else 0


def _cmd_info() -> int:
    from repro.bench.datasets import DATASETS
    from repro.kernels import jit_status
    from repro.mst.registry import list_algorithm_info

    print(f"repro {__version__}")
    jit = jit_status()
    print(f"jit:       numba {'available' if jit['numba_available'] else 'absent'}, "
          f"{'enabled' if jit['enabled'] else 'disabled'}"
          f" (REPRO_JIT={jit['env'] or 'auto'})")
    print("\nalgorithms:")
    for info in list_algorithm_info():
        modes = f" [modes: {', '.join(info.modes)}]" if info.has_vectorized else ""
        print(f"  {info.name}{modes}")
    from repro.solve import list_problem_info

    print("\nproblems:")
    for pinfo in list_problem_info():
        modes = f" [modes: {', '.join(pinfo.modes)}]" if pinfo.has_vectorized else ""
        params = f" (params: {', '.join(pinfo.params)})" if pinfo.params else ""
        print(f"  {pinfo.name}{modes}{params} — oracle: {pinfo.oracle}")
    print("\ndatasets:")
    for name, ds in sorted(DATASETS.items()):
        print(f"  {name}: {ds.paper_name} [{ds.kind}], default scale {ds.default_scale}")
    from repro.bench.experiments import ALL_EXPERIMENTS

    print("\nexperiments: " + " ".join(ALL_EXPERIMENTS))
    return 0


def _str_list(text: str) -> list[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def _int_list(text: str) -> list[int]:
    try:
        return [int(t) for t in text.split(",") if t]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}") from exc


def _pair_list(text: str) -> list[tuple[int, int]]:
    try:
        pairs = []
        for chunk in text.split(","):
            if not chunk:
                continue
            u, v = chunk.split(":")
            pairs.append((int(u), int(v)))
        return pairs
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a u:v pair list: {text!r}") from exc


def _edge_list(text: str) -> list[tuple[int, int, float]]:
    try:
        edges = []
        for chunk in text.split(","):
            if not chunk:
                continue
            u, v, w = chunk.split(":")
            edges.append((int(u), int(v), float(w)))
        return edges
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a u:v:w triple list: {text!r}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
