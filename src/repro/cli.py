"""Command-line interface: ``python -m repro`` / ``repro-mst``.

Subcommands
-----------
``run``
    Regenerate a paper experiment (``table1``, ``fig2``, ``fig3``,
    ``fig4``, the ablations, or ``all``) and print its report.
``mst``
    Compute the MSF of a generated or loaded graph with a chosen
    algorithm and print summary statistics.
``info``
    Show registered algorithms, datasets, and version information.

Examples
--------
::

    python -m repro run fig3 --scale 13 --threads 1,2,4,8,16,32
    python -m repro run all --json-dir results/
    python -m repro mst --algo llp-prim --dataset usa-road --scale 12
    python -m repro mst --algo llp-boruvka --input graph.gr --workers 8
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Reproduction of 'Parallel MST via Lattice Linear Predicate Detection'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="regenerate a paper experiment")
    runp.add_argument("experiment", help="table1|fig2|fig3|fig4|ablation-*|all")
    runp.add_argument("--scale", type=int, default=None, help="log2 vertex count")
    runp.add_argument("--rmat-scale", type=int, default=None,
                      help="log2 vertex count for the graph500 dataset")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--repeats", type=int, default=3)
    runp.add_argument("--threads", type=_int_list, default=None,
                      help="comma-separated worker counts (fig3)")
    runp.add_argument("--json-dir", type=Path, default=None,
                      help="also write <experiment>.json files here")
    runp.add_argument("--svg-dir", type=Path, default=None,
                      help="also render each experiment's series as .svg charts")
    runp.add_argument("--markdown", action="store_true",
                      help="render tables as GitHub markdown")

    mstp = sub.add_parser("mst", help="compute an MSF")
    mstp.add_argument("--algo", default="llp-prim",
                      help="algorithm name; 'info' lists names and which "
                           "have a vectorized kernel mode")
    src = mstp.add_mutually_exclusive_group()
    src.add_argument("--dataset", default="usa-road", help="registered dataset name")
    src.add_argument("--input", type=Path, default=None,
                     help="graph file (.gr DIMACS, .mtx MatrixMarket, .tsv, .npz)")
    mstp.add_argument("--scale", type=int, default=None)
    mstp.add_argument("--seed", type=int, default=0)
    mstp.add_argument("--workers", type=int, default=1,
                      help="simulated workers for parallel algorithms")
    mstp.add_argument("--mode", choices=("loop", "vectorized"), default=None,
                      help="kernel mode: 'loop' (reference) or 'vectorized' "
                           "(array-kernel fast path, where available)")
    mstp.add_argument("--verify", action="store_true",
                      help="verify the output against the Kruskal oracle")

    profp = sub.add_parser("profile", help="profile one algorithm run (cProfile hotspots)")
    profp.add_argument("--algo", default="llp-prim")
    profp.add_argument("--dataset", default="usa-road")
    profp.add_argument("--scale", type=int, default=None)
    profp.add_argument("--seed", type=int, default=0)
    profp.add_argument("--workers", type=int, default=1)
    profp.add_argument("--mode", choices=("loop", "vectorized"), default=None,
                       help="kernel mode to profile")
    profp.add_argument("--top", type=int, default=15, help="hotspots to show")

    cmpp = sub.add_parser("compare", help="diff two saved experiment JSON dumps")
    cmpp.add_argument("old", type=Path)
    cmpp.add_argument("new", type=Path)
    cmpp.add_argument("--threshold", type=float, default=5.0,
                      help="report series points moving more than this percent")

    sub.add_parser("info", help="list algorithms and datasets")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "mst":
        return _cmd_mst(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "info":
        return _cmd_info()
    raise AssertionError("unreachable")


# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"available: {', '.join(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args)
        t0 = time.perf_counter()
        result = fn(**kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render(markdown=args.markdown))
        print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
        if args.json_dir is not None:
            args.json_dir.mkdir(parents=True, exist_ok=True)
            result.save(args.json_dir / f"{name}.json")
        if args.svg_dir is not None:
            from repro.bench.svg import save_experiment_figures

            for path in save_experiment_figures(result, args.svg_dir):
                print(f"[figure written: {path}]")
    return 0


def _experiment_kwargs(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if name == "table1":
        kwargs.update(road_scale=args.scale, rmat_scale=args.rmat_scale)
    elif name == "fig2":
        kwargs.update(
            road_scale=args.scale, rmat_scale=args.rmat_scale, repeats=args.repeats
        )
    elif name == "fig3":
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "fig4":
        kwargs.update(road_scale=args.scale, rmat_scale=args.rmat_scale)
    elif name in ("ablation-early-fixing", "ablation-heaps", "ablation-weights"):
        kwargs.update(scale=args.scale, repeats=args.repeats)
    elif name == "ablation-pointer-jumping":
        kwargs.update(scale=args.scale)
    elif name == "seed-stability":
        kwargs.pop("seed", None)
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "gil-exhibit":
        kwargs.update(scale=args.scale)
        if args.threads:
            kwargs.update(threads=args.threads)
    elif name == "operation-census":
        kwargs.update(scale=args.scale, rmat_scale=args.rmat_scale)
    elif name in ("calibration", "kkt-comparison"):
        kwargs.update(scale=args.scale, repeats=args.repeats)
    elif name == "scaling-sizes":
        if args.scale:
            kwargs.update(scales=tuple(range(max(8, args.scale - 3), args.scale + 1)))
    return kwargs


def _cmd_mst(args: argparse.Namespace) -> int:
    from repro.bench.datasets import build_dataset
    from repro.errors import BenchmarkError
    from repro.mst.registry import PARALLEL_ALGORITHMS, get_algorithm
    from repro.runtime.simulated import SimulatedBackend

    if args.input is not None:
        g = _load_graph(args.input)
        source = str(args.input)
    else:
        g = build_dataset(args.dataset, args.scale, args.seed)
        source = f"{args.dataset} (scale={args.scale or 'default'}, seed={args.seed})"
    try:
        algo = get_algorithm(args.algo, mode=args.mode)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = SimulatedBackend(args.workers) if args.algo in PARALLEL_ALGORITHMS else None

    t0 = time.perf_counter()
    result = algo(g, backend=backend)
    elapsed = time.perf_counter() - t0

    print(f"graph:     {source}  (n={g.n_vertices}, m={g.n_edges})")
    print(f"algorithm: {args.algo} [{args.mode or 'default'} mode]")
    print(f"forest:    {result.n_edges} edges, {result.n_components} component(s)")
    print(f"weight:    {result.total_weight:.6f}")
    print(f"wall time: {elapsed * 1e3:.2f} ms")
    if backend is not None:
        print(f"modelled:  {backend.modelled_time() * 1e3:.3f} ms at p={args.workers}")
    if result.stats:
        stats = ", ".join(f"{k}={v}" for k, v in sorted(result.stats.items()))
        print(f"stats:     {stats}")
    if args.verify:
        from repro.mst.verify import verify_minimum

        verify_minimum(g, result)
        print("verified:  edge set equals the unique MSF (Kruskal oracle)")
    return 0


def _load_graph(path: Path):
    from repro.graphs.io import read_dimacs, read_edge_tsv, read_matrix_market
    from repro.graphs.io.binary import load_npz

    suffix = path.suffix.lower()
    if suffix == ".gr":
        return read_dimacs(path)
    if suffix == ".mtx":
        return read_matrix_market(path)
    if suffix in (".tsv", ".txt"):
        return read_edge_tsv(path)
    if suffix == ".npz":
        return load_npz(path)
    raise SystemExit(f"unsupported graph format {suffix!r} (use .gr/.mtx/.tsv/.npz)")


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.datasets import build_dataset
    from repro.bench.profiling import profile_callable
    from repro.errors import BenchmarkError
    from repro.mst.registry import PARALLEL_ALGORITHMS, get_algorithm
    from repro.runtime.simulated import SimulatedBackend

    g = build_dataset(args.dataset, args.scale, args.seed)
    g.py_adjacency
    g.min_rank_per_vertex
    try:
        algo = get_algorithm(args.algo, mode=args.mode)
    except BenchmarkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = (
        SimulatedBackend(args.workers) if args.algo in PARALLEL_ALGORITHMS else None
    )
    report = profile_callable(lambda: algo(g, backend=backend))
    print(f"profiling {args.algo} on {args.dataset} "
          f"(n={g.n_vertices}, m={g.n_edges})\n")
    print(report.render(limit=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare_results, load_result_json

    report = compare_results(
        load_result_json(args.old),
        load_result_json(args.new),
        threshold_pct=args.threshold,
    )
    print(report.render())
    return 1 if report.qualitative_flags else 0


def _cmd_info() -> int:
    from repro.bench.datasets import DATASETS
    from repro.mst.registry import list_algorithm_info

    print(f"repro {__version__}")
    print("\nalgorithms:")
    for info in list_algorithm_info():
        modes = f" [modes: {', '.join(info.modes)}]" if info.has_vectorized else ""
        print(f"  {info.name}{modes}")
    print("\ndatasets:")
    for name, ds in sorted(DATASETS.items()):
        print(f"  {name}: {ds.paper_name} [{ds.kind}], default scale {ds.default_scale}")
    from repro.bench.experiments import ALL_EXPERIMENTS

    print("\nexperiments: " + " ".join(ALL_EXPERIMENTS))
    return 0


def _int_list(text: str) -> list[int]:
    try:
        return [int(t) for t in text.split(",") if t]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
