"""Differential harness for the registered problems (SSSP, CC, ...).

The problem-registry sibling of :mod:`repro.checking.oracle`: every
registered problem runs in every kernel mode over the same 17 adversarial
graph families and is compared **byte-exactly** against its independent
oracle (heap Dijkstra for SSSP, union-find for CC).  Classification, most
severe first:

``exception``
    The solver raised on a graph it should handle.
``missing-rejection``
    The solver *accepted* input its contract rejects (SSSP on negative
    weights or an empty vertex set must raise cleanly).
``invalid-result``
    The output fails structural validation independent of the oracle —
    an SSSP parent that is not a tight edge, a parent forest with a
    cycle, a CC label that is not a root, an edge joining two labels.
``oracle-divergence``
    Structurally valid but byte-different from the oracle on some output
    array.  Because every mode is compared to the same oracle, this also
    catches mode-vs-mode divergence.

Family preparation: SSSP solves from source 0, so the empty family (no
vertex 0) becomes a rejection check, and families with negative weights
are checked twice — the raw graph must be *rejected* (``WeightError``),
then the graph re-weighted by ``|w|`` must be *solved* correctly, keeping
the numeric extremes (huge floats, int64 beyond 2**53, denormals) in the
differential sweep.

Counterexamples shrink through the generic ddmin machinery of
:mod:`repro.checking.shrink` and render as ready-to-paste pytest tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.checking.families import GraphCase, iter_cases
from repro.checking.shrink import shrink_graph
from repro.errors import GraphError, WeightError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.kernels.jump import pointer_jump
from repro.obs.trace import span as _obs_span
from repro.solve.base import ProblemResult
from repro.solve.registry import available_problems, get_oracle, get_problem

__all__ = [
    "ProblemMismatch",
    "ProblemCheckReport",
    "PROBLEM_CHECK_MODES",
    "validate_problem_result",
    "check_problem_one",
    "run_problem_matrix",
    "ProblemShrinkResult",
    "shrink_problem_mismatch",
    "to_problem_pytest_repro",
]

PROBLEM_CHECK_MODES: tuple[str, ...] = ("loop", "vectorized", "auto")


@dataclass(frozen=True, eq=False)
class ProblemMismatch:
    """One divergence between a problem solver and its oracle."""

    case_name: str
    problem: str
    mode: str
    kind: str  # exception | missing-rejection | invalid-result | oracle-divergence
    detail: str
    graph: CSRGraph
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Compact ``problem/mode`` identifier."""
        return f"{self.problem}/{self.mode}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.label} on {self.case_name}: {self.detail}"


@dataclass
class ProblemCheckReport:
    """Aggregate outcome of one problem differential sweep."""

    cases_run: int = 0
    checks_run: int = 0
    mismatches: List[ProblemMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check agreed with its oracle."""
        return not self.mismatches


# ----------------------------------------------------------------------
# Structural validation (oracle-independent)
# ----------------------------------------------------------------------
def _validate_sssp(g: CSRGraph, result) -> str | None:
    n = g.n_vertices
    dist, parent, pedge = result.dist, result.parent, result.parent_edge
    src = int(result.source)
    if dist.shape != (n,) or parent.shape != (n,) or pedge.shape != (n,):
        return f"array shapes {dist.shape}/{parent.shape}/{pedge.shape} != ({n},)"
    if dist.dtype != np.float64:
        return f"dist dtype {dist.dtype} is not float64"
    if dist[src] != 0.0:
        return f"dist[source] = {dist[src]!r}, expected 0.0"
    if parent[src] != -1 or pedge[src] != -1:
        return "source has a parent"
    finite = np.isfinite(dist)
    far = ~finite
    if far.any() and (parent[far] != -1).any():
        return "unreachable vertex has a parent"
    hasp = finite.copy()
    hasp[src] = False
    if hasp.any():
        p, e = parent[hasp], pedge[hasp]
        if p.min() < 0 or p.max() >= n:
            return "parent id out of range"
        if e.min() < 0 or e.max() >= g.n_edges:
            return "parent edge id out of range"
        v = np.flatnonzero(hasp)
        eu, ev = g.edge_u[e], g.edge_v[e]
        if not ((np.minimum(p, v) == np.minimum(eu, ev))
                & (np.maximum(p, v) == np.maximum(eu, ev))).all():
            return "parent edge does not join (parent, vertex)"
        if not (dist[p] + g.edge_w[e] == dist[v]).all():
            return "parent edge is not tight (dist[p] + w != dist[v])"
    # Rooted-forest check: every reached vertex's parent chain must end at
    # the source; pointer_jump raises on cycles.
    chain = np.arange(n, dtype=np.int64)
    chain[hasp] = parent[hasp]
    try:
        roots, _, _ = pointer_jump(chain)
    except Exception as exc:
        return f"parent pointers contain a cycle ({exc})"
    if not (roots[finite] == src).all():
        return "a reached vertex's parent chain does not end at the source"
    return None


def _validate_cc(g: CSRGraph, result) -> str | None:
    n = g.n_vertices
    labels = result.labels
    if labels.shape != (n,):
        return f"labels shape {labels.shape} != ({n},)"
    if labels.dtype != np.int64:
        return f"labels dtype {labels.dtype} is not int64"
    if n == 0:
        return None
    if labels.min() < 0 or labels.max() >= n:
        return "label out of vertex range"
    idx = np.arange(n, dtype=np.int64)
    if (labels > idx).any():
        return "label exceeds its vertex id (not a component minimum)"
    if not (labels[labels] == labels).all():
        return "label is not its own label (dangling pointer)"
    if g.n_edges and not (labels[g.edge_u] == labels[g.edge_v]).all():
        return "an edge joins two different labels"
    return None


_VALIDATORS: Dict[str, Callable[[CSRGraph, ProblemResult], str | None]] = {
    "sssp": _validate_sssp,
    "cc": _validate_cc,
}


def validate_problem_result(g: CSRGraph, problem: str, result) -> str | None:
    """Oracle-independent structural validation; None when sound."""
    validator = _VALIDATORS.get(problem)
    return validator(g, result) if validator is not None else None


# ----------------------------------------------------------------------
# Per-cell check
# ----------------------------------------------------------------------
def _default_params(problem: str) -> Dict[str, object]:
    return {"source": 0} if problem == "sssp" else {}


def check_problem_one(
    g: CSRGraph,
    problem: str,
    mode: str,
    *,
    case_name: str = "<adhoc>",
    oracle_result: ProblemResult | None = None,
    params: Dict[str, object] | None = None,
) -> ProblemMismatch | None:
    """Run one (problem, mode) cell on one graph; None when it agrees."""
    params = dict(params) if params is not None else _default_params(problem)
    with _obs_span(
        "check:problem", "checking", case=case_name, problem=problem, mode=mode,
    ) as sp:
        try:
            result = get_problem(problem, mode)(g, **params)
        except Exception as exc:
            sp.set_attr("verdict", "exception")
            return ProblemMismatch(
                case_name, problem, mode, "exception",
                f"{type(exc).__name__}: {exc}", g, params,
            )
        detail = validate_problem_result(g, problem, result)
        if detail is not None:
            sp.set_attr("verdict", "invalid-result")
            return ProblemMismatch(
                case_name, problem, mode, "invalid-result", detail, g, params
            )
        if oracle_result is None:
            oracle_result = get_oracle(problem)(g, **params)
        got, ref = result.arrays(), oracle_result.arrays()
        for name in sorted(ref):
            a, b = got.get(name), ref[name]
            if a is None or a.dtype != b.dtype or not np.array_equal(a, b):
                sp.set_attr("verdict", "oracle-divergence")
                return ProblemMismatch(
                    case_name, problem, mode, "oracle-divergence",
                    f"array {name!r} differs from the oracle "
                    f"(got {_preview(a)}, expected {_preview(b)})",
                    g, params,
                )
        sp.set_attr("verdict", "ok")
        return None


def _preview(arr) -> str:
    if arr is None:
        return "<missing>"
    body = np.array2string(arr[:8], threshold=8)
    return f"{body}{'...' if arr.size > 8 else ''}"


def _expect_rejection(
    g: CSRGraph,
    problem: str,
    mode: str,
    exc_type: type,
    why: str,
    case_name: str,
    params: Dict[str, object],
) -> ProblemMismatch | None:
    """The solver must raise ``exc_type`` on this graph — cleanly, always."""
    try:
        get_problem(problem, mode)(g, **params)
    except exc_type:
        return None
    except Exception as exc:
        return ProblemMismatch(
            case_name, problem, mode, "missing-rejection",
            f"{why}: raised {type(exc).__name__} instead of {exc_type.__name__}",
            g, params,
        )
    return ProblemMismatch(
        case_name, problem, mode, "missing-rejection",
        f"{why}: solver accepted the input instead of raising "
        f"{exc_type.__name__}", g, params,
    )


def _nonnegative_graph(g: CSRGraph) -> CSRGraph:
    """The ``|w|`` re-weighting that keeps a family in the SSSP sweep."""
    w = np.abs(g.edge_w)
    if w.dtype.kind in "iu":
        # abs(int64.min) overflows back to itself; clamp to the maximum.
        np.putmask(w, w < 0, np.iinfo(np.int64).max)
    return CSRGraph.from_edgelist(
        EdgeList.from_arrays(g.n_vertices, g.edge_u, g.edge_v, w, dedup=False)
    )


# ----------------------------------------------------------------------
# The matrix sweep
# ----------------------------------------------------------------------
def run_problem_matrix(
    cases: Iterable[GraphCase] | None = None,
    *,
    seed: int = 0,
    count: int = 200,
    families: Sequence[str] | None = None,
    max_size: int = 20,
    problems: Sequence[str] | None = None,
    modes: Sequence[str] | None = None,
    max_mismatches: int = 25,
    progress: Callable[[str], None] | None = None,
) -> ProblemCheckReport:
    """Differential sweep: every problem × mode on every generated case.

    ``cases`` defaults to the same deterministic
    :func:`~repro.checking.families.iter_cases` stream the MST matrix
    uses, so a seed replays identically across both harnesses.
    """
    if cases is None:
        cases = iter_cases(
            seed, count, families=list(families) if families else None,
            max_size=max_size,
        )
    names = list(problems) if problems is not None else available_problems()
    mode_list = tuple(modes) if modes is not None else PROBLEM_CHECK_MODES
    report = ProblemCheckReport()

    def record(mm: ProblemMismatch | None) -> bool:
        """Count one check; True when the budget says stop."""
        report.checks_run += 1
        if mm is None:
            return False
        report.mismatches.append(mm)
        if progress is not None:
            progress(str(mm))
        return len(report.mismatches) >= max_mismatches

    for case in cases:
        report.cases_run += 1
        for problem in names:
            g = case.graph
            params = _default_params(problem)
            if problem == "sssp":
                if g.n_vertices == 0:
                    # No vertex 0 to start from: the contract is a clean
                    # GraphError in every mode, not a solve.
                    for mode in mode_list:
                        if record(_expect_rejection(
                            g, problem, mode, GraphError, "empty graph",
                            case.name, params,
                        )):
                            return report
                    continue
                if g.n_edges and bool((g.edge_w < 0).any()):
                    for mode in mode_list:
                        if record(_expect_rejection(
                            g, problem, mode, WeightError, "negative weights",
                            case.name, params,
                        )):
                            return report
                    g = _nonnegative_graph(g)
            oracle_result = None
            try:
                oracle_result = get_oracle(problem)(g, **params)
            except Exception as exc:  # pragma: no cover - oracle must not raise
                if record(ProblemMismatch(
                    case.name, problem, "oracle", "exception",
                    f"oracle raised {type(exc).__name__}: {exc}", g, params,
                )):
                    return report
                continue
            for mode in mode_list:
                if record(check_problem_one(
                    g, problem, mode, case_name=case.name,
                    oracle_result=oracle_result, params=params,
                )):
                    return report
        if progress is not None and report.cases_run % 50 == 0:
            progress(
                f"{report.cases_run} cases, {report.checks_run} problem checks, "
                f"{len(report.mismatches)} mismatches"
            )
    return report


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ProblemShrinkResult:
    """A minimized problem counterexample and where it came from."""

    mismatch: ProblemMismatch  # re-checked on the minimized graph
    original_vertices: int
    original_edges: int
    predicate_calls: int

    @property
    def graph(self) -> CSRGraph:
        """The minimized failing graph."""
        return self.mismatch.graph


def shrink_problem_mismatch(
    mismatch: ProblemMismatch, *, max_calls: int = 2000
) -> ProblemShrinkResult:
    """Minimize a :class:`ProblemMismatch`'s graph via the shared ddmin.

    The preserved predicate is "the same (problem, mode) cell still fails
    with the same kind".  ``missing-rejection`` mismatches are returned
    unshrunk: the ddmin weight-simplification phase rewrites weights to
    dense nonnegative ranks, which destroys the property being rejected.
    """
    if mismatch.kind == "missing-rejection":
        return ProblemShrinkResult(
            mismatch=mismatch,
            original_vertices=mismatch.graph.n_vertices,
            original_edges=mismatch.graph.n_edges,
            predicate_calls=0,
        )

    def predicate(candidate: CSRGraph) -> bool:
        found = check_problem_one(
            candidate, mismatch.problem, mismatch.mode,
            case_name=mismatch.case_name, params=mismatch.params,
        )
        return found is not None and found.kind == mismatch.kind

    shrunk, calls = shrink_graph(mismatch.graph, predicate, max_calls=max_calls)
    final = check_problem_one(
        shrunk, mismatch.problem, mismatch.mode,
        case_name=f"{mismatch.case_name}:shrunk", params=mismatch.params,
    )
    if final is None or final.kind != mismatch.kind:  # pragma: no cover - defensive
        final = mismatch
        shrunk = mismatch.graph
    return ProblemShrinkResult(
        mismatch=final,
        original_vertices=mismatch.graph.n_vertices,
        original_edges=mismatch.graph.n_edges,
        predicate_calls=calls,
    )


def _weight_literal(x) -> str:
    f = float(x)
    if f.is_integer() and abs(f) < 2**53:
        return f"{int(f)}.0"
    return repr(f)


def to_problem_pytest_repro(
    result: ProblemShrinkResult, test_name: str | None = None
) -> str:
    """Render a minimized problem counterexample as a pytest test."""
    mm = result.mismatch
    g = mm.graph
    if test_name is None:
        kind = mm.kind.replace("-", "_")
        test_name = f"test_shrunk_{mm.problem}_{mm.mode}_{kind}"
    edges = ",\n        ".join(
        f"({int(u)}, {int(v)}, {_weight_literal(w)})"
        for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w)
    )
    edges_block = f"[\n        {edges},\n    ]" if g.n_edges else "[]"
    return f'''def {test_name}():
    """Shrunken counterexample: {mm.kind} in {mm.label}.

    Originally found on {mm.case_name}
    ({result.original_vertices} vertices / {result.original_edges} edges,
    minimized to {g.n_vertices} / {g.n_edges}).
    """
    import numpy as np

    from repro.checking.problems import check_problem_one
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    edges = {edges_block}
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    g = CSRGraph.from_edgelist(
        EdgeList.from_arrays({g.n_vertices}, u, v, w, dedup=False)
    )
    mismatch = check_problem_one(g, {mm.problem!r}, {mm.mode!r}, params={mm.params!r})
    assert mismatch is None, str(mismatch)
'''
