"""Differential oracle: every algorithm × mode × backend against Kruskal.

Kruskal's algorithm is the reference because its correctness argument is
the shortest in the library (sort once, union–find, cut property) and it
shares no kernels with the implementations under test.  For each case the
harness classifies a result against the oracle, most severe first:

``exception``
    The algorithm raised instead of producing a result.
``invalid-forest``
    The claimed edge set is not a spanning forest of the input (cycle,
    out-of-range edge, missed component, or inconsistent bookkeeping).
``not-minimum``
    A valid spanning forest whose sorted weight multiset differs from the
    oracle's.  Because any spanning forest with the oracle's exact weight
    multiset is itself minimum, the multiset check *is* the minimality
    check "up to tie-class" — no edge-identity assumption is needed.
``tie-divergence``
    A minimum forest whose *edge ids* differ from the oracle's.  With the
    unique ``(weight, edge_id)`` ranks assigned at construction the MSF is
    unique, so this never indicates a wrong weight; it indicates an
    implementation that broke ties by a different rule than the documented
    one, violating the library's byte-identical determinism guarantee.

:func:`run_matrix` sweeps generated cases (see
:mod:`repro.checking.families`) and returns a :class:`CheckReport`; the CLI
feeds its mismatches to :mod:`repro.checking.shrink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.checking.families import GraphCase, iter_cases
from repro.graphs.csr import CSRGraph
from repro.mst.base import MSTResult, result_from_edge_ids
from repro.mst.registry import algorithm_info, available_algorithms, get_algorithm
from repro.mst.verify import verify_spanning_forest
from repro.obs.trace import span as _obs_span
from repro.runtime.sequential import SequentialBackend
from repro.runtime.simulated import SimulatedBackend
from repro.structures.union_find import UnionFind

__all__ = [
    "Mismatch",
    "CheckReport",
    "BACKENDS",
    "classify_result",
    "check_one",
    "iter_checks",
    "run_matrix",
    "broken_max_forest",
    "BROKEN_ALGORITHM_NAME",
]

# Label -> factory.  A fresh backend per check keeps traces independent;
# "simulated-4" exercises the chunked parallel scheduling paths that the
# sequential backend short-circuits.
BACKENDS: Dict[str, Callable[[], object]] = {
    "sequential": SequentialBackend,
    "simulated-4": lambda: SimulatedBackend(4),
}


@dataclass(frozen=True, eq=False)
class Mismatch:
    """One divergence between an implementation and the Kruskal oracle."""

    case_name: str
    algorithm: str
    mode: str | None
    backend: str
    kind: str  # exception | invalid-forest | not-minimum | tie-divergence
    detail: str
    graph: CSRGraph

    @property
    def label(self) -> str:
        """Compact ``algorithm/mode@backend`` identifier."""
        mode = self.mode or "default"
        return f"{self.algorithm}/{mode}@{self.backend}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.label} on {self.case_name}: {self.detail}"


@dataclass
class CheckReport:
    """Aggregate outcome of one differential sweep."""

    cases_run: int = 0
    checks_run: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check agreed with the oracle."""
        return not self.mismatches


def _oracle(g: CSRGraph) -> MSTResult:
    from repro.mst.kruskal import kruskal

    return kruskal(g)


def classify_result(
    g: CSRGraph, result: MSTResult, oracle: MSTResult | None = None
) -> Tuple[str, str] | None:
    """Classify ``result`` against the oracle; ``None`` when it agrees.

    Returns ``(kind, detail)`` for the most severe applicable mismatch
    kind (see the module docstring for the severity order).
    """
    if oracle is None:
        oracle = _oracle(g)
    try:
        verify_spanning_forest(g, result)
    except Exception as exc:
        return "invalid-forest", str(exc)
    w_got = np.sort(np.asarray(g.edge_w[result.edge_ids]))
    w_ref = np.sort(np.asarray(g.edge_w[oracle.edge_ids]))
    # Exact multiset comparison — weights pass through both implementations
    # untouched, so any difference is a wrong edge choice, not roundoff.
    if w_got.size != w_ref.size or not np.array_equal(w_got, w_ref):
        return (
            "not-minimum",
            f"weight multiset differs from oracle "
            f"({result.n_edges} edges, total {result.total_weight!r} "
            f"vs {oracle.total_weight!r})",
        )
    if result.edge_set() != oracle.edge_set():
        extra = sorted(result.edge_set() - oracle.edge_set())[:5]
        missing = sorted(oracle.edge_set() - result.edge_set())[:5]
        return (
            "tie-divergence",
            f"minimum forest but edges differ from oracle: "
            f"extra {extra}, missing {missing}",
        )
    return None


def check_one(
    g: CSRGraph,
    algorithm: str,
    mode: str | None,
    backend_label: str,
    *,
    case_name: str = "<adhoc>",
    oracle: MSTResult | None = None,
    extra_algorithms: Dict[str, Callable] | None = None,
) -> Mismatch | None:
    """Run one (algorithm, mode, backend) cell on one graph.

    ``extra_algorithms`` maps names to ``fn(graph, backend=None)``
    callables checked alongside the registry (the self-test plants its
    deliberately broken implementation this way).
    """
    if extra_algorithms and algorithm in extra_algorithms:
        fn = extra_algorithms[algorithm]
    else:
        fn = get_algorithm(algorithm, mode)
    backend = BACKENDS[backend_label]()
    with _obs_span(
        "check:cell", "checking", case=case_name, algorithm=algorithm,
        mode=mode or "default", backend=backend_label,
    ) as sp:
        try:
            result = fn(g, backend=backend)
        except Exception as exc:
            sp.set_attr("verdict", "exception")
            return Mismatch(
                case_name, algorithm, mode, backend_label,
                "exception", f"{type(exc).__name__}: {exc}", g,
            )
        verdict = classify_result(g, result, oracle)
        if verdict is None:
            sp.set_attr("verdict", "ok")
            return None
        kind, detail = verdict
        sp.set_attr("verdict", kind)
        return Mismatch(case_name, algorithm, mode, backend_label, kind, detail, g)


def iter_checks(
    algorithms: Sequence[str] | None = None,
    *,
    backends: Sequence[str] | None = None,
    extra_algorithms: Dict[str, Callable] | None = None,
) -> List[Tuple[str, str | None, str]]:
    """The (algorithm, mode, backend) cells of the check matrix.

    Sequential algorithms run on the sequential backend only (they ignore
    the backend argument, so sweeping it would re-run identical work);
    parallel algorithms run on every requested backend.
    """
    names = list(algorithms) if algorithms is not None else available_algorithms()
    if extra_algorithms:
        for name in extra_algorithms:
            if name not in names:
                names.append(name)
    labels = list(backends) if backends is not None else list(BACKENDS)
    for label in labels:
        if label not in BACKENDS:
            raise KeyError(
                f"unknown backend label {label!r}; available: {', '.join(BACKENDS)}"
            )
    cells: List[Tuple[str, str | None, str]] = []
    for name in names:
        if extra_algorithms and name in extra_algorithms:
            modes: Tuple[str | None, ...] = (None,)
            parallel = True  # run injected stubs on every backend
        else:
            info = algorithm_info(name)
            modes = info.modes
            parallel = info.parallel
        for mode in modes:
            for label in labels if parallel else labels[:1]:
                cells.append((name, mode, label))
    return cells


def run_matrix(
    cases: Iterable[GraphCase] | None = None,
    *,
    seed: int = 0,
    count: int = 200,
    families: Sequence[str] | None = None,
    max_size: int = 20,
    algorithms: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
    extra_algorithms: Dict[str, Callable] | None = None,
    max_mismatches: int = 25,
    progress: Callable[[str], None] | None = None,
) -> CheckReport:
    """Differential sweep: every matrix cell on every generated case.

    ``cases`` defaults to the deterministic
    :func:`~repro.checking.families.iter_cases` stream for
    ``(seed, count, families, max_size)``.  The sweep stops early once
    ``max_mismatches`` distinct failures are collected — shrinking needs
    only a handful, and a systematically broken implementation would
    otherwise fail every single case.
    """
    if cases is None:
        cases = iter_cases(
            seed, count, families=list(families) if families else None,
            max_size=max_size,
        )
    cells = iter_checks(
        algorithms, backends=backends, extra_algorithms=extra_algorithms
    )
    report = CheckReport()
    for case in cases:
        report.cases_run += 1
        oracle = _oracle(case.graph)
        for name, mode, label in cells:
            report.checks_run += 1
            mismatch = check_one(
                case.graph, name, mode, label,
                case_name=case.name, oracle=oracle,
                extra_algorithms=extra_algorithms,
            )
            if mismatch is not None:
                report.mismatches.append(mismatch)
                if progress is not None:
                    progress(str(mismatch))
                if len(report.mismatches) >= max_mismatches:
                    return report
        if progress is not None and report.cases_run % 50 == 0:
            progress(
                f"{report.cases_run} cases, {report.checks_run} checks, "
                f"{len(report.mismatches)} mismatches"
            )
    return report


# ----------------------------------------------------------------------
# Self-test stub
# ----------------------------------------------------------------------
BROKEN_ALGORITHM_NAME = "broken-max-forest"


def broken_max_forest(g: CSRGraph, backend=None) -> MSTResult:
    """Deliberately wrong: the MAXIMUM spanning forest (inverted ranks).

    Planted by ``repro check --self-test`` to prove the harness end to
    end: on any graph with >= 2 spanning forests of different weight the
    oracle must flag it ``not-minimum``, and the shrinker must reduce the
    counterexample to a handful of vertices.  It still produces a valid
    spanning forest, so only the differential check — not the structural
    verifier — can catch it.
    """
    order = np.argsort(-g.ranks, kind="stable")
    uf = UnionFind(g.n_vertices)
    chosen = [
        int(e) for e in order if uf.union(int(g.edge_u[e]), int(g.edge_v[e]))
    ]
    return result_from_edge_ids(g, np.asarray(chosen, dtype=np.int64))
