"""Deterministic fault injection for the serving layer.

The service's resilience claims are explicit: a corrupted artifact is a
cache miss (degrade to recompute, never an error), a cancelled request
must not poison its coalesced batch, and a malformed JSON-lines request
gets a structured error record instead of tearing down the event loop.
This module *proves* each claim by injecting the fault deterministically
and checking the documented behaviour:

* :func:`corrupt_artifact` — seeded truncation, bit flips, garbage
  overwrite, and format-version skew of ``.npz`` artifact files;
* :func:`check_artifact_degradation` — every corruption kind against
  :meth:`~repro.service.artifacts.ArtifactStore.get_or_compute`: the
  service must recompute, overwrite the bad file, count it in
  ``corrupt_replaced``, and serve answers identical to a fresh solve;
* :func:`check_mid_batch_cancellation` — cancels awaiting requests while
  their batch is in flight: peers still get answers, the worker survives,
  and later queries are served;
* :func:`check_serve_malformed` — drives the real ``repro serve`` CLI
  with interleaved valid/invalid/oversized request lines and checks the
  response stream answers all of them (structured errors for the bad
  ones, results for the good ones, exit code 0).

Everything is seeded; a failing fault report reproduces from its seed.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence

import numpy as np

from repro.checking.families import generate_case
from repro.errors import ServiceError
from repro.graphs.csr import CSRGraph

__all__ = [
    "FAULT_KINDS",
    "FaultReport",
    "corrupt_artifact",
    "check_artifact_degradation",
    "check_mid_batch_cancellation",
    "malformed_request_lines",
    "check_serve_malformed",
    "check_worker_crash",
    "run_fault_suite",
]

FAULT_KINDS = ("truncate", "bitflip", "garbage", "version-skew")


@dataclass
class FaultReport:
    """Outcome of one fault-injection check suite."""

    checks_run: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every injected fault degraded as documented."""
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        """Count one check; collect a failure message when it failed."""
        self.checks_run += 1
        if not passed:
            self.failures.append(f"{name}: {detail}" if detail else name)

    def merge(self, other: "FaultReport") -> "FaultReport":
        """Fold another report into this one."""
        self.checks_run += other.checks_run
        self.failures.extend(other.failures)
        return self


def _fault_graph(seed: int) -> CSRGraph:
    """A small connected graph with a non-trivial forest, deterministically."""
    return generate_case("few-distinct-weights", seed, 10).graph


# ----------------------------------------------------------------------
# Artifact corruption
# ----------------------------------------------------------------------
def corrupt_artifact(path: str | Path, kind: str, seed: int = 0) -> None:
    """Deterministically corrupt one ``.npz`` artifact file in place.

    ``truncate`` cuts the file at a seeded fraction; ``bitflip`` flips one
    seeded bit; ``garbage`` overwrites a seeded span with random bytes;
    ``version-skew`` rewrites the archive intact but with a bumped
    ``format_version`` (the forward-compatibility case: a newer writer,
    an older reader).
    """
    path = Path(path)
    rng = np.random.default_rng(seed)
    raw = bytearray(path.read_bytes())
    if kind == "truncate":
        cut = int(len(raw) * float(rng.uniform(0.1, 0.9)))
        path.write_bytes(bytes(raw[:cut]))
    elif kind == "bitflip":
        pos = int(rng.integers(0, len(raw)))
        raw[pos] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(raw))
    elif kind == "garbage":
        start = int(rng.integers(0, max(len(raw) - 64, 1)))
        span = rng.integers(0, 256, size=min(64, len(raw) - start), dtype=np.uint8)
        raw[start : start + span.size] = span.tobytes()
        path.write_bytes(bytes(raw))
    elif kind == "version-skew":
        with np.load(path, allow_pickle=False) as data:
            payload = {key: np.array(data[key]) for key in data.files}
        payload["format_version"] = np.int64(int(payload["format_version"]) + 1)
        np.savez_compressed(path, **payload)
    else:
        raise ServiceError(
            f"unknown fault kind {kind!r}; available: {', '.join(FAULT_KINDS)}"
        )


def check_artifact_degradation(
    store_dir: str | Path,
    *,
    seed: int = 0,
    kinds: Sequence[str] | None = None,
) -> FaultReport:
    """Every corruption kind must degrade to a recompute, never an error."""
    from repro.service import MSTService
    from repro.service.artifacts import ArtifactStore

    report = FaultReport()
    g = _fault_graph(seed)
    store_dir = Path(store_dir)
    for i, kind in enumerate(kinds if kinds is not None else FAULT_KINDS):
        store = ArtifactStore(store_dir / kind)
        svc = MSTService(store, algorithm="kruskal")
        clean = svc.load_graph(g)
        reference = [bool(b) for b in svc.connected([0, 1, 2], [3, 4, 5])]
        path = store.path_for(clean.fingerprint)
        report.record(
            f"{kind}: artifact persisted", path.exists(), f"missing {path}"
        )
        corrupt_artifact(path, kind, seed=seed + i)
        # Fresh service over the corrupted store: must silently recompute.
        svc2 = MSTService(ArtifactStore(store_dir / kind), algorithm="kruskal")
        try:
            again = svc2.load_graph(g)
        except Exception as exc:
            report.record(f"{kind}: degrade to recompute", False, repr(exc))
            continue
        # A bit flip can land in zip padding or an unused flag byte: the
        # decoded content is then byte-identical (data-region flips are
        # caught by the zip CRC) and serving the file warm is correct —
        # only content-preserving corruption may go uncounted.
        content_same = (
            again.fingerprint == clean.fingerprint
            and np.array_equal(again.msf_edge_ids, clean.msf_edge_ids)
            and np.array_equal(again.msf_w, clean.msf_w)
        )
        report.record(
            f"{kind}: corruption counted",
            svc2.store.corrupt_replaced == 1 or content_same,
            f"corrupt_replaced={svc2.store.corrupt_replaced}",
        )
        report.record(
            f"{kind}: recomputed forest matches",
            content_same,
            "recomputed artifact differs from clean solve",
        )
        answers = [bool(b) for b in svc2.connected([0, 1, 2], [3, 4, 5])]
        report.record(
            f"{kind}: answers match clean solve",
            answers == reference,
            f"{answers} != {reference}",
        )
        # The rewritten file must now load warm.
        svc3 = MSTService(ArtifactStore(store_dir / kind), algorithm="kruskal")
        svc3.load_graph(g)
        report.record(
            f"{kind}: overwritten artifact serves warm",
            svc3.store.hits == 1,
            f"hits={svc3.store.hits}",
        )
    return report


# ----------------------------------------------------------------------
# Mid-batch cancellation
# ----------------------------------------------------------------------
def check_mid_batch_cancellation(*, seed: int = 0) -> FaultReport:
    """Cancelled requests must not poison their batch or kill the worker."""
    from repro.service import MSTService
    from repro.service.server import AsyncMSTService

    report = FaultReport()
    g = _fault_graph(seed)
    svc = MSTService(None, algorithm="kruskal")
    svc.load_graph(g)
    n = g.n_vertices

    async def probe() -> None:
        # A long batch window guarantees the cancellations land while the
        # batch is still being coalesced — the race under test.
        async with AsyncMSTService(svc, max_batch=64, max_delay_s=0.05) as server:
            tasks = [
                asyncio.create_task(server.query("connected", i % n, (i + 1) % n))
                for i in range(16)
            ]
            await asyncio.sleep(0)  # let the requests enqueue
            for t in tasks[::2]:
                t.cancel()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            cancelled = sum(isinstance(r, asyncio.CancelledError) for r in results)
            answered = sum(isinstance(r, (bool, np.bool_)) for r in results)
            report.record(
                "cancellations observed", cancelled == 8, f"cancelled={cancelled}"
            )
            report.record(
                "peers still answered", answered == 8, f"answered={answered}"
            )
            # The worker must have survived to serve fresh queries.
            late = await server.query("component", 0)
            report.record(
                "worker survives cancellation", isinstance(late, int), repr(late)
            )
            report.record(
                "queue drained", server.pending == 0, f"pending={server.pending}"
            )

    asyncio.run(probe())
    return report


# ----------------------------------------------------------------------
# Malformed JSON-lines requests against the real CLI
# ----------------------------------------------------------------------
def malformed_request_lines(seed: int = 0) -> List[str]:
    """A deterministic battery of malformed ``repro serve`` request lines."""
    rng = np.random.default_rng(seed)
    oversized = json.dumps({"op": "connected", "pad": "x" * (70 * 1024)})
    return [
        "{not json at all",
        '"just a string"',
        "[1, 2, 3]",
        "{}",
        json.dumps({"op": 42}),
        json.dumps({"op": "connected", "u": "zero", "v": 1}),
        json.dumps({"op": "connected", "u": True, "v": 1}),
        json.dumps({"op": "connected", "u": 0, "v": 1.5}),
        json.dumps({"op": "bottleneck", "u": 0, "v": None, "w": "heavy"}),
        json.dumps({"op": "no-such-op", "u": 0, "v": 1}),
        json.dumps({"op": "connected", "u": int(rng.integers(10**6, 10**9)), "v": 0}),
        oversized,
    ]


def check_serve_malformed(work_dir: str | Path, *, seed: int = 0) -> FaultReport:
    """Drive ``repro serve`` end to end with hostile request lines.

    Interleaves every malformed line with valid requests and checks the
    CLI's contract: exit code 0, one structured response record per
    non-empty input line (``error`` for the bad, ``result`` for the
    good), in input order.
    """
    from repro.cli import main
    from repro.graphs.io.binary import save_npz

    report = FaultReport()
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    g = _fault_graph(seed)
    graph_path = work_dir / "fault-graph.npz"
    save_npz(g, graph_path)

    bad = malformed_request_lines(seed)
    good = [
        json.dumps({"op": "connected", "u": 0, "v": 1}),
        json.dumps({"op": "component", "u": 2}),
        json.dumps({"op": "component_size", "u": 0}),
        json.dumps({"op": "weight"}),
    ]
    lines: List[str] = []
    for i, line in enumerate(bad):
        lines.append(line)
        lines.append(good[i % len(good)])
    requests_path = work_dir / "requests.jsonl"
    requests_path.write_text("\n".join(lines) + "\n")

    out = io.StringIO()
    err = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main([
            "serve", "--input", str(graph_path),
            "--queries", str(requests_path),
        ])
    report.record("serve exits 0", code == 0, f"exit code {code}")
    records = [json.loads(line) for line in out.getvalue().splitlines() if line]
    report.record(
        "one record per request",
        len(records) == len(lines),
        f"{len(records)} records for {len(lines)} lines",
    )
    n_err = sum("error" in r for r in records)
    n_ok = sum("result" in r for r in records)
    # Some malformed lines parse fine but fail in the engine ("no-such-op",
    # out-of-range vertex): they must surface as per-request errors too.
    report.record(
        "every malformed line got a structured error",
        n_err == len(bad),
        f"{n_err} errors for {len(bad)} bad lines",
    )
    report.record(
        "every valid line got a result",
        n_ok == len(lines) - len(bad),
        f"{n_ok} results for {len(lines) - len(bad)} good lines",
    )
    return report


# ----------------------------------------------------------------------
# Shard-worker death mid-solve
# ----------------------------------------------------------------------
def check_worker_crash(*, seed: int = 0) -> FaultReport:
    """Killing a shard worker mid-solve must never corrupt the answer.

    The sharded coordinator's resilience contract, checked fault by
    fault against the Kruskal oracle:

    * a worker that dies once (``os._exit`` mid-solve) is respawned and
      the retry produces the exact oracle forest;
    * a worker that dies on *every* attempt exhausts its retries and the
      shard is solved in-process — same forest, ``fallback_shards`` 1;
    * a hung worker is reaped at its timeout and treated like a crash;
    * no shared-memory segment survives any of it (the leak check is the
      reason the arena is owner-unlinked rather than worker-tracked).
    """
    from repro.graphs.generators import gnm_random_graph
    from repro.mst.kruskal import kruskal
    from repro.shard import ShardFault, leaked_segments, sharded_mst

    report = FaultReport()
    g = gnm_random_graph(200, 800, seed=seed)
    oracle = kruskal(g)
    before = set(leaked_segments())

    scenarios = [
        (
            "crash once, retry succeeds",
            dict(fault=ShardFault(shard=1, kind="exit", attempts=1)),
            {"retries": 1, "fallback_shards": 0},
        ),
        (
            "crash always, fallback solves in-process",
            dict(max_retries=1, fault=ShardFault(shard=2, kind="exit", attempts=10)),
            {"retries": 1, "fallback_shards": 1},
        ),
        (
            "hang reaped at timeout, retry succeeds",
            dict(timeout_s=1.5, fault=ShardFault(shard=0, kind="hang", attempts=1)),
            {"retries": 1, "fallback_shards": 0},
        ),
    ]
    for name, kwargs, expect in scenarios:
        try:
            result = sharded_mst(
                g, n_shards=4, executor="process", seed=seed, **kwargs
            )
        except Exception as exc:
            report.record(f"worker-crash: {name}", False, repr(exc))
            continue
        report.record(
            f"worker-crash: {name} — forest matches oracle",
            np.array_equal(
                np.asarray(result.edge_ids), np.asarray(oracle.edge_ids)
            ),
            "sharded forest diverged from Kruskal oracle",
        )
        for key, want in expect.items():
            got = int(result.stats.get(key, -1))
            report.record(
                f"worker-crash: {name} — {key}",
                got == want,
                f"{key}={got}, expected {want}",
            )
    leaked = sorted(set(leaked_segments()) - before)
    report.record(
        "worker-crash: no leaked shared-memory segments",
        not leaked,
        f"segments left behind: {leaked}",
    )
    return report


def run_fault_suite(work_dir: str | Path, *, seed: int = 0) -> FaultReport:
    """All fault-injection checks against one scratch directory."""
    work_dir = Path(work_dir)
    report = FaultReport()
    report.merge(check_artifact_degradation(work_dir / "artifacts", seed=seed))
    report.merge(check_mid_batch_cancellation(seed=seed))
    report.merge(check_serve_malformed(work_dir / "serve", seed=seed))
    report.merge(check_worker_crash(seed=seed))
    return report
