"""Delta-debugging minimizer for differential counterexamples.

A nightly mismatch on a 20-vertex random graph is evidence; a 4-vertex
triangle-plus-pendant is a bug report.  :func:`shrink_mismatch` reduces a
failing graph while preserving the *mismatch kind* (an ``exception`` must
stay an exception, a ``tie-divergence`` must stay a tie-divergence —
shrinking one failure into a different one hides the original bug):

1. **ddmin over edges** — Zeller's classic delta debugging: try dropping
   chunks of edges (and their complements) at progressively finer
   granularity until no single edge can be removed.
2. **vertex elimination** — drop vertices that became isolated and
   compact the id space.
3. **weight simplification** — replace weights by their dense rank
   (``0, 1, 2, ...`` preserving order *and* equalities), accepted only if
   the failure survives; most reports end with single-digit weights.

The result carries a ready-to-paste pytest reproduction
(:func:`to_pytest_repro`) so a nightly counterexample becomes a committed
regression test with zero transcription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.checking.oracle import Mismatch, check_one
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList

__all__ = ["ShrinkResult", "shrink_graph", "shrink_mismatch", "to_pytest_repro"]


@dataclass(frozen=True, eq=False)
class ShrinkResult:
    """A minimized counterexample and where it came from."""

    mismatch: Mismatch  # re-checked on the minimized graph
    original_vertices: int
    original_edges: int
    predicate_calls: int

    @property
    def graph(self) -> CSRGraph:
        """The minimized failing graph."""
        return self.mismatch.graph


def _rebuild(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> CSRGraph:
    # dedup=False: the failure may depend on parallel edges, so the
    # shrinker must not collapse them behind the predicate's back.
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


def _compact(g: CSRGraph, keep: np.ndarray) -> CSRGraph:
    """Subgraph on the kept edges with isolated vertices removed."""
    u, v, w = g.edge_u[keep], g.edge_v[keep], g.edge_w[keep]
    used = np.zeros(g.n_vertices, dtype=bool)
    used[u] = True
    used[v] = True
    remap = np.cumsum(used) - 1
    return _rebuild(int(used.sum()), remap[u], remap[v], w)


def shrink_graph(
    g: CSRGraph,
    predicate: Callable[[CSRGraph], bool],
    *,
    max_calls: int = 2000,
) -> tuple[CSRGraph, int]:
    """Minimize ``g`` subject to ``predicate`` staying true.

    Returns ``(minimized graph, predicate calls)``.  ``predicate`` must be
    true of ``g`` itself (the caller guarantees the original failure).
    The budget bounds pathological cases; at the default the shrinker
    finishes instantly on the <= 20-vertex family graphs.
    """
    calls = 0

    def holds(candidate: CSRGraph) -> bool:
        nonlocal calls
        calls += 1
        try:
            return predicate(candidate)
        except Exception:
            # A predicate blow-up on a candidate means "does not reproduce".
            return False

    # --- Phase 1: ddmin over the edge set -----------------------------
    # ``shrunk`` only ever takes predicate-validated values, so the
    # invariant "the returned graph fails" holds even when no reduction
    # is accepted (the failure may depend on isolated vertices or on
    # every single edge).
    shrunk = g
    m = g.n_edges
    keep = np.ones(m, dtype=bool)
    granularity = 2
    while keep.sum() >= 2 and calls < max_calls:
        alive = np.flatnonzero(keep)
        chunks = np.array_split(alive, min(granularity, alive.size))
        reduced = False
        for chunk in chunks:
            if chunk.size == 0 or calls >= max_calls:
                continue
            # Try the complement: drop this chunk, keep the rest.
            trial = keep.copy()
            trial[chunk] = False
            candidate = _compact(g, trial)
            if holds(candidate):
                keep = trial
                shrunk = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= alive.size:
                break
            granularity = min(granularity * 2, alive.size)

    # Isolated-vertex removal when no edge drop was accepted (accepted
    # candidates already went through _compact).
    if shrunk is g and g.n_edges and calls < max_calls:
        candidate = _compact(g, keep)
        if candidate.n_vertices < g.n_vertices and holds(candidate):
            shrunk = candidate

    # --- Phase 2: weight simplification (dense ranks) -----------------
    if shrunk.n_edges and calls < max_calls:
        w = shrunk.edge_w
        uniq, dense = np.unique(w, return_inverse=True)
        if uniq.size < w.size or not np.array_equal(
            uniq, np.arange(uniq.size, dtype=w.dtype)
        ):
            candidate = _rebuild(
                shrunk.n_vertices, shrunk.edge_u, shrunk.edge_v,
                dense.astype(np.float64),
            )
            if holds(candidate):
                shrunk = candidate
    return shrunk, calls


def shrink_mismatch(
    mismatch: Mismatch,
    *,
    extra_algorithms: Dict[str, Callable] | None = None,
    max_calls: int = 2000,
) -> ShrinkResult:
    """Minimize a :class:`~repro.checking.oracle.Mismatch`'s graph.

    The preserved predicate is "the same (algorithm, mode, backend) cell
    still fails with the same kind".  The returned result's ``mismatch``
    is re-derived on the minimized graph, so its ``detail`` describes the
    small graph, not the original.
    """
    cell = (mismatch.algorithm, mismatch.mode, mismatch.backend)

    def predicate(candidate: CSRGraph) -> bool:
        found = check_one(
            candidate, *cell,
            case_name=mismatch.case_name, extra_algorithms=extra_algorithms,
        )
        return found is not None and found.kind == mismatch.kind

    shrunk, calls = shrink_graph(mismatch.graph, predicate, max_calls=max_calls)
    final = check_one(
        shrunk, *cell,
        case_name=f"{mismatch.case_name}:shrunk", extra_algorithms=extra_algorithms,
    )
    if final is None or final.kind != mismatch.kind:  # pragma: no cover - defensive
        # ddmin only ever accepts failing candidates, so the original
        # graph (which the caller observed failing) is the worst case.
        final = mismatch
        shrunk = mismatch.graph
    return ShrinkResult(
        mismatch=final,
        original_vertices=mismatch.graph.n_vertices,
        original_edges=mismatch.graph.n_edges,
        predicate_calls=calls,
    )


def _weight_literal(x) -> str:
    f = float(x)
    if f.is_integer() and abs(f) < 2**53:
        return f"{int(f)}.0"
    return repr(f)


def to_pytest_repro(result: ShrinkResult, test_name: str | None = None) -> str:
    """Render a minimized counterexample as a ready-to-paste pytest test.

    The emitted test rebuilds the exact graph, reruns the failing matrix
    cell through :func:`~repro.checking.oracle.check_one`, and asserts no
    mismatch — i.e. it fails until the underlying bug is fixed and then
    pins the fix forever.
    """
    mm = result.mismatch
    g = mm.graph
    if test_name is None:
        algo = mm.algorithm.replace("-", "_")
        kind = mm.kind.replace("-", "_")
        test_name = f"test_shrunk_{algo}_{kind}"
    edges = ",\n        ".join(
        f"({int(u)}, {int(v)}, {_weight_literal(w)})"
        for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w)
    )
    edges_block = f"[\n        {edges},\n    ]" if g.n_edges else "[]"
    mode = repr(mm.mode)
    return f'''def {test_name}():
    """Shrunken counterexample: {mm.kind} in {mm.label}.

    Originally found on {mm.case_name}
    ({result.original_vertices} vertices / {result.original_edges} edges,
    minimized to {g.n_vertices} / {g.n_edges}).
    """
    import numpy as np

    from repro.checking.oracle import check_one
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    edges = {edges_block}
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    g = CSRGraph.from_edgelist(
        EdgeList.from_arrays({g.n_vertices}, u, v, w, dedup=False)
    )
    mismatch = check_one(g, {mm.algorithm!r}, {mode}, {mm.backend!r})
    assert mismatch is None, str(mismatch)
'''
