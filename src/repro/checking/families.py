"""Adversarial graph families for the differential harness.

Each family is a deterministic, seeded generator of small graphs chosen to
stress exactly the places where independent MST implementations silently
diverge:

* **tie-breaking** — duplicate, all-equal, and few-distinct weights;
* **degenerate structure** — empty graphs, ``n = 0`` / ``n = 1``, isolated
  vertices, self loops, parallel edges (kept *and* collapsed), and
  disconnected graphs;
* **numeric extremes** — zero and negative weights, int64 weights beyond
  2**53 (where float64 collides distinct values), denormal and huge
  floats, and mixed-magnitude weights that make float accumulation
  order-dependent.

Families yield :class:`~repro.graphs.edgelist.EdgeList` values (the raw
interchange format) so the harness can also exercise the canonicalisation
path; :func:`iter_cases` wraps them into CSR graphs ready for the
differential oracle.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList

__all__ = ["GraphCase", "FAMILIES", "family_names", "generate_case", "iter_cases"]


@dataclass(frozen=True)
class GraphCase:
    """One generated adversarial graph, traceable back to its generator."""

    family: str
    seed: int
    size: int
    graph: CSRGraph

    @property
    def name(self) -> str:
        """Stable human-readable case id."""
        return f"{self.family}[seed={self.seed},size={self.size}]"


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------
def _random_topology(
    rng: np.random.Generator, n: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """``m`` random (possibly parallel, never self-loop) edges over ``n`` vertices."""
    if n < 2 or m <= 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n - 1, size=m, dtype=np.int64)
    v[v >= u] += 1  # uniform over pairs with u != v
    return u, v


def _connected_topology(
    rng: np.random.Generator, n: int, extra: int
) -> tuple[np.ndarray, np.ndarray]:
    """A random spanning tree plus ``extra`` random edges (connected)."""
    if n <= 1:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    order = rng.permutation(n).astype(np.int64)
    tu = np.array(
        [order[int(rng.integers(0, i))] for i in range(1, n)], dtype=np.int64
    )
    tv = order[1:]
    eu, ev = _random_topology(rng, n, extra)
    return np.concatenate([tu, eu]), np.concatenate([tv, ev])


def _el(n: int, u, v, w, *, dedup: bool = True) -> EdgeList:
    return EdgeList.from_arrays(
        n,
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        np.asarray(w),
        dedup=dedup,
    )


# ----------------------------------------------------------------------
# Families: fn(rng, size) -> EdgeList
# ----------------------------------------------------------------------
def _empty(rng: np.random.Generator, size: int) -> EdgeList:
    return EdgeList.empty(0)


def _single_vertex(rng: np.random.Generator, size: int) -> EdgeList:
    return EdgeList.empty(1)


def _isolated(rng: np.random.Generator, size: int) -> EdgeList:
    return EdgeList.empty(max(size, 2))


def _single_edge(rng: np.random.Generator, size: int) -> EdgeList:
    return _el(2, [0], [1], [float(rng.normal())])


def _self_loops(rng: np.random.Generator, size: int) -> EdgeList:
    """Self loops interleaved with real edges (loops must vanish cleanly)."""
    n = max(size, 3)
    u, v = _connected_topology(rng, n, n // 2)
    loops = rng.integers(0, n, size=n, dtype=np.int64)
    w = rng.normal(size=u.size + n)
    return _el(n, np.concatenate([u, loops]), np.concatenate([v, loops]), w)


def _parallel_edges(rng: np.random.Generator, size: int) -> EdgeList:
    """Parallel edges *kept* (dedup=False), with both equal and unequal weights."""
    n = max(size, 3)
    u, v = _connected_topology(rng, n, n // 2)
    dup = rng.integers(0, u.size, size=u.size, dtype=np.int64)
    uu = np.concatenate([u, u[dup]])
    vv = np.concatenate([v, v[dup]])
    w = np.concatenate([rng.normal(size=u.size), rng.integers(0, 3, size=u.size)])
    return _el(n, uu, vv, w.astype(np.float64), dedup=False)


def _all_equal_weights(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 4)
    u, v = _connected_topology(rng, n, n)
    return _el(n, u, v, np.ones(u.size))


def _few_distinct_weights(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 4)
    u, v = _connected_topology(rng, n, 2 * n)
    w = rng.choice([0.0, 1.0, 2.0], size=u.size)
    return _el(n, u, v, w)


def _zero_weights(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 3)
    u, v = _connected_topology(rng, n, n // 2)
    return _el(n, u, v, np.zeros(u.size))


def _negative_weights(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 4)
    u, v = _connected_topology(rng, n, n)
    w = rng.normal(size=u.size) - 0.5
    return _el(n, u, v, w)


def _int64_huge(rng: np.random.Generator, size: int) -> EdgeList:
    """int64 weights beyond 2**53: distinct as ints, colliding as floats."""
    n = max(size, 4)
    u, v = _connected_topology(rng, n, n)
    base = np.int64(1) << np.int64(53)
    w = base + rng.integers(0, 7, size=u.size, dtype=np.int64)
    return _el(n, u, v, w)


def _denormal_floats(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 3)
    u, v = _connected_topology(rng, n, n // 2)
    tiny = np.float64(5e-324)
    w = tiny * rng.integers(1, 9, size=u.size).astype(np.float64)
    return _el(n, u, v, w)


def _huge_floats(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 3)
    u, v = _connected_topology(rng, n, n // 2)
    w = rng.choice([1e308, -1e308, 1e300, 2e300], size=u.size)
    return _el(n, u, v, w)


def _mixed_magnitude(rng: np.random.Generator, size: int) -> EdgeList:
    """Weights whose float sums depend on accumulation order."""
    n = max(size, 4)
    u, v = _connected_topology(rng, n, n)
    w = rng.choice([1e16, -1e16, 1.0, -1.0, 1e-8], size=u.size)
    return _el(n, u, v, w)


def _disconnected(rng: np.random.Generator, size: int) -> EdgeList:
    """Several random components plus isolated vertices."""
    comp = max(size // 3, 2)
    us, vs, ws = [], [], []
    offset = 0
    for _ in range(3):
        u, v = _connected_topology(rng, comp, comp // 2)
        us.append(u + offset)
        vs.append(v + offset)
        ws.append(rng.choice([0.5, 1.5, 1.5, 2.5], size=u.size))
        offset += comp
    offset += 2  # trailing isolated vertices
    return _el(offset, np.concatenate(us), np.concatenate(vs), np.concatenate(ws))


def _random_duplicates(rng: np.random.Generator, size: int) -> EdgeList:
    n = max(size, 5)
    u, v = _random_topology(rng, n, 3 * n)
    w = rng.integers(0, 4, size=u.size).astype(np.float64)
    return _el(n, u, v, w)


def _complete_small(rng: np.random.Generator, size: int) -> EdgeList:
    n = min(max(size // 2, 3), 8)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    u = np.array([p[0] for p in pairs], dtype=np.int64)
    v = np.array([p[1] for p in pairs], dtype=np.int64)
    w = rng.choice([1.0, 1.0, 2.0], size=u.size)
    return _el(n, u, v, w)


FAMILIES: Dict[str, Callable[[np.random.Generator, int], EdgeList]] = {
    "empty": _empty,
    "single-vertex": _single_vertex,
    "isolated": _isolated,
    "single-edge": _single_edge,
    "self-loops": _self_loops,
    "parallel-edges": _parallel_edges,
    "all-equal-weights": _all_equal_weights,
    "few-distinct-weights": _few_distinct_weights,
    "zero-weights": _zero_weights,
    "negative-weights": _negative_weights,
    "int64-huge": _int64_huge,
    "denormal-floats": _denormal_floats,
    "huge-floats": _huge_floats,
    "mixed-magnitude": _mixed_magnitude,
    "disconnected": _disconnected,
    "random-duplicates": _random_duplicates,
    "complete-small": _complete_small,
}


def family_names() -> list[str]:
    """Names of every registered adversarial family."""
    return list(FAMILIES)


def generate_case(family: str, seed: int, size: int = 12) -> GraphCase:
    """Build one deterministic case of the named family."""
    if family not in FAMILIES:
        raise GraphError(
            f"unknown graph family {family!r}; available: {', '.join(FAMILIES)}"
        )
    # crc32, not hash(): str hashing is salted per process, which would
    # make "replay the nightly seed locally" impossible.
    rng = np.random.default_rng((zlib.crc32(family.encode()), seed))
    el = FAMILIES[family](rng, size)
    return GraphCase(family, seed, size, CSRGraph.from_edgelist(el))


def iter_cases(
    seed: int = 0,
    count: int = 200,
    *,
    families: list[str] | None = None,
    max_size: int = 20,
) -> Iterator[GraphCase]:
    """Yield ``count`` deterministic cases cycling through the families.

    Sizes sweep upward so every family is exercised at several scales; the
    stream for a given ``(seed, families, max_size)`` is reproducible,
    which is what lets a nightly failure be replayed locally from its seed.
    """
    names = families if families is not None else family_names()
    for name in names:
        if name not in FAMILIES:
            raise GraphError(
                f"unknown graph family {name!r}; available: {', '.join(FAMILIES)}"
            )
    sizes = list(range(4, max(max_size, 5)))
    for i in range(count):
        family = names[i % len(names)]
        size = sizes[(i // len(names)) % len(sizes)]
        yield generate_case(family, seed + i, size)
