"""Adversarial scheduling: hunting order-dependence in "any order" claims.

The paper's Lemma 4 is a strong promise: advancing *any* non-empty subset
of forbidden indices, in *any* order, converges to the same least feasible
vector.  The library's parallel algorithms inherit an equivalent promise
from the backend protocol — results must not depend on the order tasks
execute inside a round or the order a worklist drains.  Those claims only
hold if no implementation accidentally smuggles order-dependence through
shared state, so this module attacks them with seeded adversarial
schedules:

* :class:`AdversarialScheduleBackend` — a protocol-conforming backend
  that executes each round's tasks in a seeded random permutation (still
  returning results in item order, as the protocol requires) and drains
  worklists by popping random elements instead of FIFO;
* :class:`ShuffledFrontierProblem` — wraps an
  :class:`~repro.llp.core.LLPProblem` so each engine round sees a random
  non-empty subset of the true forbidden frontier, in random order —
  exactly the executions Lemma 4 quantifies over;
* :func:`hunt_llp_schedules` / :func:`hunt_mst_schedules` — run many
  seeded schedules and compare every outcome against the deterministic
  reference (the full-frontier sequential run, and the Kruskal oracle).

A reported failure includes the schedule seed, so any order-dependence
found nightly replays locally with one function call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Sequence

import numpy as np

from repro.checking.families import generate_case
from repro.checking.oracle import classify_result
from repro.graphs.csr import CSRGraph
from repro.llp.core import LLPProblem
from repro.runtime.backend import Backend, TaskContext

__all__ = [
    "AdversarialScheduleBackend",
    "ShuffledFrontierProblem",
    "ScheduleReport",
    "hunt_llp_schedules",
    "hunt_mst_schedules",
]


class AdversarialScheduleBackend(Backend):
    """Backend that reorders execution while honouring the protocol.

    ``run_round`` executes tasks in a seeded random permutation and
    returns results in item order (the contract callers rely on);
    ``run_worklist`` pops a random live item each step instead of FIFO,
    modelling a maximally unfair work-stealing scheduler.  Any algorithm
    whose output changes under this backend has hidden order-dependence.
    """

    def __init__(self, seed: int = 0, n_workers: int = 4) -> None:
        super().__init__()
        self.rng = np.random.default_rng(seed)
        self._n_workers = int(n_workers)

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def _run_round(
        self, items: Sequence[Any], task: Callable[[TaskContext, Any], Any]
    ) -> List[Any]:
        items = list(items)
        results: List[Any] = [None] * len(items)
        costs = [0] * len(items)
        for pos in self.rng.permutation(len(items)):
            pos = int(pos)
            ctx = TaskContext(worker_id=pos % self._n_workers)
            results[pos] = task(ctx, items[pos])
            costs[pos] = ctx.units
        self._record(costs)
        return results

    def _run_worklist(
        self,
        seeds: Sequence[Any],
        task: Callable[[TaskContext, Any], tuple[Iterable[Any], Any]],
    ) -> List[Any]:
        live: List[tuple[Any, int]] = [(s, 0) for s in seeds]
        payloads: List[Any] = []
        total = span = count = 0
        while live:
            item, start = live.pop(int(self.rng.integers(0, len(live))))
            ctx = TaskContext(worker_id=count % self._n_workers)
            children, payload = task(ctx, item)
            payloads.append(payload)
            count += 1
            total += ctx.units
            finish = start + ctx.units
            span = max(span, finish)
            for child in children:
                live.append((child, finish))
        if count:
            self.trace.add_round(count, total, min(span, total), barrier=False)
        return payloads


class ShuffledFrontierProblem(LLPProblem):
    """Lemma 4's quantifier made executable.

    Delegates everything to the wrapped problem but serves
    ``forbidden_indices`` as a seeded random non-empty subset of the true
    frontier, in random order.  Every such stream is one of the "advance
    any forbidden indices, in any order" executions the lemma promises
    converge to the same least feasible vector — so the engine's final
    state must be schedule-independent, round counts notwithstanding.
    """

    def __init__(
        self, inner: LLPProblem, seed: int = 0, *, subset: bool = True
    ) -> None:
        self.inner = inner
        self.rng = np.random.default_rng(seed)
        self.subset = subset

    @property
    def n(self) -> int:
        return self.inner.n

    def bottom(self) -> np.ndarray:
        return self.inner.bottom()

    def top(self) -> np.ndarray | None:
        return self.inner.top()

    def forbidden(self, G: np.ndarray, j: int) -> bool:
        return self.inner.forbidden(G, j)

    def advance(self, G: np.ndarray, j: int) -> float:
        return self.inner.advance(G, j)

    def is_feasible(self, G: np.ndarray) -> bool:
        return self.inner.is_feasible(G)

    def on_advanced(self, G: np.ndarray, j: int, old: float, new: float) -> None:
        self.inner.on_advanced(G, j, old, new)

    def forbidden_indices(self, G: np.ndarray) -> List[int]:
        frontier = list(self.inner.forbidden_indices(G))
        if not frontier:
            return frontier
        order = self.rng.permutation(len(frontier))
        # Non-empty so the engine always makes progress; Lemma 4 needs
        # nothing more.
        k = len(frontier)
        if self.subset and k > 1:
            k = 1 + int(self.rng.integers(0, k))
        return [frontier[int(i)] for i in order[:k]]


@dataclass
class ScheduleReport:
    """Outcome of an adversarial-schedule hunt."""

    runs: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every schedule converged to the reference outcome."""
        return not self.failures


def hunt_llp_schedules(
    g: CSRGraph | None = None,
    *,
    seed: int = 0,
    n_schedules: int = 25,
    root: int = 0,
) -> ScheduleReport:
    """Attack Lemma 4 on the direct Algorithm-4 LLP formulation.

    Runs the parallel engine over ``n_schedules`` seeded adversarial
    (subset, order, backend-permutation) schedules of
    :class:`~repro.llp.problems.mst_prim.PrimLLP` and requires every final
    state vector to equal the deterministic full-frontier run's.
    """
    from repro.llp.engine_parallel import solve_parallel
    from repro.llp.problems.mst_prim import PrimLLP

    if g is None:
        g = generate_case("few-distinct-weights", seed, 9).graph
    report = ScheduleReport()
    reference = solve_parallel(PrimLLP(g, root)).state
    for s in range(n_schedules):
        report.runs += 1
        wrapped = ShuffledFrontierProblem(PrimLLP(g, root), seed=seed * 1000 + s)
        backend = AdversarialScheduleBackend(seed * 1000 + s)
        try:
            got = solve_parallel(wrapped, backend).state
        except Exception as exc:
            report.failures.append(f"schedule seed {seed * 1000 + s}: {exc!r}")
            continue
        if not np.array_equal(got, reference):
            diff = np.flatnonzero(got != reference)[:5].tolist()
            report.failures.append(
                f"schedule seed {seed * 1000 + s}: state diverged at indices {diff}"
            )
    return report


def hunt_mst_schedules(
    g: CSRGraph | None = None,
    *,
    seed: int = 0,
    n_schedules: int = 10,
    algorithms: Sequence[str] | None = None,
) -> ScheduleReport:
    """Run every parallel MST algorithm under adversarial schedules.

    Each (algorithm, mode, schedule-seed) run must produce the exact
    oracle forest — the library's determinism guarantee says the output
    does not depend on the schedule at all.
    """
    from repro.mst.registry import PARALLEL_ALGORITHMS, algorithm_info, get_algorithm

    if g is None:
        g = generate_case("few-distinct-weights", seed, 10).graph
    names = list(algorithms) if algorithms is not None else list(PARALLEL_ALGORITHMS)
    report = ScheduleReport()
    for name in names:
        info = algorithm_info(name)
        for mode in info.modes:
            fn = get_algorithm(name, mode)
            for s in range(n_schedules):
                report.runs += 1
                sched_seed = seed * 1000 + s
                backend = AdversarialScheduleBackend(sched_seed)
                try:
                    result = fn(g, backend=backend)
                except Exception as exc:
                    report.failures.append(
                        f"{name}/{mode} schedule seed {sched_seed}: {exc!r}"
                    )
                    continue
                verdict = classify_result(g, result)
                if verdict is not None:
                    kind, detail = verdict
                    report.failures.append(
                        f"{name}/{mode} schedule seed {sched_seed}: {kind}: {detail}"
                    )
    return report
