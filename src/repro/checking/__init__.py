"""Differential-oracle, shrinking, fault-injection, and schedule checking.

The checking harness is the repository's executable correctness
argument.  :mod:`repro.checking.families` generates adversarial graphs,
:mod:`repro.checking.oracle` differentially tests every registered
algorithm x mode x backend cell against the Kruskal oracle,
:mod:`repro.checking.shrink` delta-debugs any mismatch down to a
hand-checkable counterexample and emits a ready-to-paste pytest repro,
:mod:`repro.checking.problems` runs the same differential treatment over
every registered problem (SSSP vs heap Dijkstra, CC vs union-find),
:mod:`repro.checking.faults` injects deterministic faults into the
serving layer, and :mod:`repro.checking.schedules` attacks the "any
order" convergence claims with adversarial schedules.  ``repro check``
drives all of it from the command line.
"""

from repro.checking.families import FAMILIES, GraphCase, generate_case, iter_cases
from repro.checking.faults import (
    FAULT_KINDS,
    FaultReport,
    check_artifact_degradation,
    check_mid_batch_cancellation,
    check_serve_malformed,
    check_worker_crash,
    corrupt_artifact,
    run_fault_suite,
)
from repro.checking.oracle import (
    BROKEN_ALGORITHM_NAME,
    CheckReport,
    Mismatch,
    broken_max_forest,
    check_one,
    classify_result,
    run_matrix,
)
from repro.checking.problems import (
    ProblemCheckReport,
    ProblemMismatch,
    ProblemShrinkResult,
    check_problem_one,
    run_problem_matrix,
    shrink_problem_mismatch,
    to_problem_pytest_repro,
    validate_problem_result,
)
from repro.checking.schedules import (
    AdversarialScheduleBackend,
    ScheduleReport,
    ShuffledFrontierProblem,
    hunt_llp_schedules,
    hunt_mst_schedules,
)
from repro.checking.shrink import (
    ShrinkResult,
    shrink_graph,
    shrink_mismatch,
    to_pytest_repro,
)

__all__ = [
    "FAMILIES",
    "GraphCase",
    "generate_case",
    "iter_cases",
    "FAULT_KINDS",
    "FaultReport",
    "check_artifact_degradation",
    "check_mid_batch_cancellation",
    "check_serve_malformed",
    "check_worker_crash",
    "corrupt_artifact",
    "run_fault_suite",
    "BROKEN_ALGORITHM_NAME",
    "CheckReport",
    "Mismatch",
    "broken_max_forest",
    "check_one",
    "classify_result",
    "run_matrix",
    "AdversarialScheduleBackend",
    "ScheduleReport",
    "ShuffledFrontierProblem",
    "hunt_llp_schedules",
    "hunt_mst_schedules",
    "ShrinkResult",
    "shrink_graph",
    "shrink_mismatch",
    "to_pytest_repro",
    "ProblemCheckReport",
    "ProblemMismatch",
    "ProblemShrinkResult",
    "check_problem_one",
    "run_problem_matrix",
    "shrink_problem_mismatch",
    "to_problem_pytest_repro",
    "validate_problem_result",
]
