"""`MultiTenantServer` — one asyncio front door over many tenants' graphs.

The single-service :class:`~repro.service.server.AsyncMSTService` scaled
out: requests name a ``tenant`` and ``graph``, admission control runs
*before* any compute (token bucket, then in-flight window — both from
the tenant's :class:`~repro.platform.quota.TenantQuota`), and each
resident graph gets its own coalescing async wrapper lazily, so
batching/caching stay per-graph while quotas and worker processes are
shared platform-wide.

Rejections are structured, never crashes: a drained bucket or a full
in-flight window raises :class:`~repro.errors.QuotaExceededError`, whose
``to_record()`` is the 429-style JSON the serve loop writes back —
``{"error": ..., "code": 429, "tenant": ..., "reason": "rate"|"queue",
"retry_after_s": ...}``.  Admitted requests hold one in-flight slot from
admission to completion; the open-loop :meth:`query_nowait` path releases
it from the future's done callback so load generators never leak slots.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple

from repro.service.server import AsyncMSTService

__all__ = ["MultiTenantServer"]


class MultiTenantServer:
    """Async serving tier over a :class:`~repro.platform.registry.GraphPlatform`.

    One :class:`~repro.service.server.AsyncMSTService` wrapper is created
    lazily per ``(tenant, graph)`` and kept for the server's lifetime —
    wrappers stay valid across engine eviction because eviction
    invalidates the underlying service's engine, never the service
    object.  ``max_batch``/``max_delay_s``/``max_pending``/``cache_size``
    are per-wrapper knobs passed through unchanged.
    """

    def __init__(
        self,
        platform,
        *,
        max_batch: int = 256,
        max_delay_s: float = 0.002,
        max_pending: int = 1024,
        cache_size: int = 4096,
    ) -> None:
        self.platform = platform
        self._opts = dict(
            max_batch=max_batch, max_delay_s=max_delay_s,
            max_pending=max_pending, cache_size=cache_size,
        )
        self._wrappers: Dict[Tuple[str, str], AsyncMSTService] = {}
        self._started = False

    async def _wrapper(self, tenant: str, graph: str) -> AsyncMSTService:
        """The (lazily created and started) async wrapper for one graph."""
        key = (tenant, graph)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            svc = self.platform.get_service(tenant, graph)
            wrapper = AsyncMSTService(svc, **self._opts)
            self._wrappers[key] = wrapper
        if self._started:
            await wrapper.start()
        return wrapper

    async def ensure(self, tenant: str, graph: str) -> None:
        """Pre-warm one graph's wrapper (admin path; no admission check)."""
        await self._wrapper(tenant, graph)

    async def query(self, tenant: str, graph: str, kind: str,
                    u: int | None = None, v: int | None = None,
                    w: float | None = None, *,
                    timeout_s: float | None = None):
        """Answer one admitted query; quota rejections raise structured.

        Admission happens first — a rejected request never resolves the
        graph, builds an engine, or enqueues work.  The in-flight slot is
        held across the await and released on any outcome.
        """
        release = self.platform.admit(tenant)
        try:
            wrapper = await self._wrapper(tenant, graph)
            return await wrapper.query(kind, u, v, w, timeout_s=timeout_s)
        finally:
            release()

    def query_nowait(self, tenant: str, graph: str, kind: str,
                     u: int | None = None, v: int | None = None,
                     w: float | None = None, *,
                     timeout_s: float | None = None) -> asyncio.Future:
        """Open-loop submit: admission + shed-don't-block semantics.

        Raises :class:`~repro.errors.QuotaExceededError` (quota) or
        :class:`~repro.errors.ServiceOverloadError` (wrapper queue full)
        synchronously; otherwise returns the wrapper's future with the
        admission slot released from its done callback.  Requires the
        wrapper to exist already — call :meth:`ensure` during warm-up,
        which is what the multi-tenant load harness does.
        """
        key = (tenant, graph)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            from repro.errors import ServiceError

            raise ServiceError(
                f"graph {tenant}/{graph} not warmed; call ensure() first"
            )
        release = self.platform.admit(tenant)
        try:
            fut = wrapper.query_nowait(kind, u, v, w, timeout_s=timeout_s)
        except BaseException:
            release()
            raise
        fut.add_done_callback(lambda _f: release())
        return fut

    async def start(self) -> None:
        """Start every existing wrapper's batch worker (idempotent)."""
        self._started = True
        for wrapper in self._wrappers.values():
            await wrapper.start()

    async def stop(self) -> None:
        """Drain and stop every wrapper's batch worker."""
        self._started = False
        for wrapper in self._wrappers.values():
            await wrapper.stop()

    async def __aenter__(self) -> "MultiTenantServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
