"""Background rebuild scheduling — re-solve dirty graphs off the request path.

A mutated graph is served immediately by the incremental repair
(:class:`~repro.mst.dynamic.DynamicMSF` swaps one edge in O(n)), but the
repaired artifact's index was rebuilt inline and its provenance is the
mutation stream, not a from-scratch solve.  The platform therefore marks
the entry *dirty* and hands ``(tenant, graph, version)`` to the
:class:`RebuildScheduler`, which re-solves in a pool worker — billed to
the owning tenant under the same fair-share
:class:`~repro.platform.pool.WorkerPool` the sharded coordinator uses —
and installs the result through
:meth:`~repro.platform.registry.GraphPlatform.complete_rebuild`'s
version-checked atomic swap.

Coalescing is by identity: a second mutation while a rebuild for the
same ``tenant/graph`` is queued does not enqueue again — the pending job
picks up the *latest* snapshot when it actually starts, so a burst of
mutations costs one re-solve.  A mutation racing *past* a snapshot
already taken bumps the version instead, and the finished-but-stale
result is dropped at swap time.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Tuple

import numpy as np

__all__ = ["rebuild_artifact_job", "RebuildScheduler"]


def rebuild_artifact_job(spec: dict):
    """Re-solve one graph from raw arrays; runs inside a pool worker.

    ``spec`` carries the edge arrays plus the solve recipe
    (``problem``/``algorithm``/``mode``/``params``) captured by
    :meth:`~repro.platform.registry.GraphPlatform.snapshot_for_rebuild`.
    Returns the finished artifact.  Deliberately single-process inside:
    rebuilds are the *background* load, so they take one worker slot each
    rather than fanning out shards from within a shard-pool worker.
    """
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    el = EdgeList.from_arrays(
        int(spec["n_vertices"]),
        np.asarray(spec["edge_u"]),
        np.asarray(spec["edge_v"]),
        np.asarray(spec["edge_w"]),
        dedup=False,
    )
    g = CSRGraph.from_edgelist(el)
    problem = spec["problem"]
    if problem == "mst":
        from repro.service.artifacts import build_artifact

        return build_artifact(g, spec["algorithm"], spec["mode"])
    from repro.solve.artifacts import problem_artifact_from_result
    from repro.solve.registry import get_problem

    params = dict(spec.get("params") or {})
    result = get_problem(problem, spec["mode"])(g, **params)
    return problem_artifact_from_result(g, result, problem, spec["mode"], params)


class RebuildScheduler:
    """Serialised background re-solver over the platform's worker pool.

    One daemon thread drains a deduplicated FIFO of dirty
    ``(tenant, graph)`` names; each job snapshots the entry's current
    arrays, solves in a pool worker (``tenant=`` billing keeps rebuilds
    inside the owner's fair share), and installs via the platform's
    version-checked swap.  Failures are counted, never raised — the
    entry simply stays dirty and the incremental artifact keeps serving.
    """

    def __init__(self, platform) -> None:
        self.platform = platform
        self._cv = threading.Condition()
        self._queue: deque[Tuple[str, str, int]] = deque()
        self._pending: set[Tuple[str, str]] = set()
        self._stats = {
            "scheduled": 0, "coalesced": 0, "swapped": 0, "persisted": 0,
            "stale": 0, "discarded": 0, "failed": 0,
        }
        self._stop = False
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._run, name="rebuild-scheduler", daemon=True
        )
        self._thread.start()

    def schedule(self, tenant: str, name: str, version: int) -> bool:
        """Enqueue a re-solve; False when one is already pending (coalesced)."""
        key = (tenant, name)
        with self._cv:
            if self._stop:
                return False
            if key in self._pending:
                self._stats["coalesced"] += 1
                return False
            self._pending.add(key)
            self._queue.append((tenant, name, version))
            self._stats["scheduled"] += 1
            self._idle.clear()
            self._cv.notify()
            return True

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._idle.set()
                    self._cv.wait()
                if self._stop:
                    self._idle.set()
                    return
                tenant, name, _version = self._queue.popleft()
                self._pending.discard((tenant, name))
            # Outside the lock: snapshot, solve, swap.  The snapshot's
            # version (not the scheduled one) guards the install, so the
            # coalesced "latest state" semantics hold.
            try:
                snap = self.platform.snapshot_for_rebuild(tenant, name)
                if snap is None:
                    outcome = "discarded"
                else:
                    spec, version = snap
                    fut = self.platform.pool.submit(
                        rebuild_artifact_job, spec, tenant=tenant,
                        label=f"rebuild:{tenant}/{name}",
                    )
                    artifact = fut.result()
                    outcome = self.platform.complete_rebuild(
                        tenant, name, version, artifact
                    )
            except Exception:
                outcome = "failed"
            with self._cv:
                self._stats[outcome] = self._stats.get(outcome, 0) + 1

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Block until the queue is empty and the worker idle (for tests)."""
        return self._idle.wait(timeout_s)

    def stats(self) -> dict:
        """Scheduling/outcome counters as a plain dict."""
        with self._cv:
            out = dict(self._stats)
            out["queued"] = len(self._queue)
            return out

    def stop(self) -> None:
        """Stop the scheduler thread; queued-but-unstarted work is dropped."""
        with self._cv:
            self._stop = True
            self._queue.clear()
            self._pending.clear()
            self._cv.notify_all()
        self._thread.join(timeout=10.0)
