"""The platform manifest — declarative multi-tenant state on disk.

``<root>/platform.json`` records every tenant, its quota, and each
graph's *source spec* (a file path or a generator recipe) plus solve
recipe, so a platform restart rebuilds exactly the same serving state:
graphs reload from their specs and their artifacts come back warm from
the content-addressed store — only the cheap registration work repeats.

Schema (version 1)::

    {"version": 1,
     "tenants": {
       "acme": {
         "quota": {"max_graphs": 8, "resident_budget": 4, ...},
         "graphs": {
           "roads": {"source": {"path": "data/roads.gr"},
                     "problem": "mst", "algorithm": "kruskal",
                     "mode": "auto", "shards": 0, "params": {}},
           "mesh":  {"source": {"kind": "gnm", "n": 1000, "m": 4000,
                     "seed": 7}, "problem": "sssp",
                     "params": {"source": 0}, ...}}}}}

Source specs: ``{"path": ...}`` loads by suffix exactly like the CLI
(``.gr``/``.mtx``/``.tsv``/``.txt``/``.npz``); ``{"kind": "gnm"|
"grid"|"dataset", ...}`` generates deterministically from a seed, so two
hosts with the same manifest register byte-identical graphs and share
artifact fingerprints.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ServiceError
from repro.platform.quota import TenantQuota

__all__ = [
    "MANIFEST_NAME",
    "manifest_path",
    "load_manifest",
    "save_manifest",
    "graph_from_spec",
    "build_platform",
    "platform_to_manifest",
]

MANIFEST_NAME = "platform.json"
_MANIFEST_VERSION = 1


def manifest_path(root: str | Path) -> Path:
    """Where the manifest lives under a platform root."""
    return Path(root) / MANIFEST_NAME


def load_manifest(root: str | Path) -> dict:
    """Read and validate ``<root>/platform.json`` (empty default if absent)."""
    path = manifest_path(root)
    if not path.exists():
        return {"version": _MANIFEST_VERSION, "tenants": {}}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"unreadable platform manifest {path}: {exc}") from exc
    version = data.get("version")
    if version != _MANIFEST_VERSION:
        raise ServiceError(
            f"unsupported platform manifest version {version!r} in {path}"
        )
    if not isinstance(data.get("tenants"), dict):
        raise ServiceError(f"malformed platform manifest {path}: no tenants map")
    return data


def save_manifest(root: str | Path, manifest: dict) -> Path:
    """Atomically write the manifest (tmp-then-replace); returns its path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = manifest_path(root)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def graph_from_spec(spec: dict):
    """Materialise one graph from its manifest source spec.

    ``{"path": ...}`` dispatches on suffix like ``repro mst`` does;
    generator specs are deterministic in their seed: ``{"kind": "gnm",
    "n", "m", "seed"}``, ``{"kind": "grid", "rows", "cols", "seed"}``,
    and ``{"kind": "dataset", "name", "scale", "seed"}`` (the bench
    dataset registry).
    """
    if "path" in spec:
        from repro.graphs.io import read_dimacs, read_edge_tsv, read_matrix_market
        from repro.graphs.io.binary import load_npz

        path = Path(spec["path"])
        suffix = path.suffix.lower()
        if suffix == ".gr":
            return read_dimacs(path)
        if suffix == ".mtx":
            return read_matrix_market(path)
        if suffix in (".tsv", ".txt"):
            return read_edge_tsv(path)
        if suffix == ".npz":
            return load_npz(path)
        raise ServiceError(
            f"unsupported graph format {suffix!r} in spec (use .gr/.mtx/.tsv/.npz)"
        )
    kind = spec.get("kind")
    if kind == "gnm":
        from repro.graphs.generators.random_graphs import gnm_random_graph

        return gnm_random_graph(
            int(spec["n"]), int(spec["m"]), seed=int(spec.get("seed", 0))
        )
    if kind == "grid":
        from repro.graphs.generators.grid import grid_graph

        return grid_graph(
            int(spec["rows"]), int(spec["cols"]), seed=int(spec.get("seed", 0))
        )
    if kind == "dataset":
        from repro.bench.datasets import build_dataset

        return build_dataset(
            spec["name"], spec.get("scale"), int(spec.get("seed", 0))
        )
    raise ServiceError(f"unknown graph source spec {spec!r}")


def build_platform(root: str | Path, **platform_kwargs):
    """Materialise a :class:`~repro.platform.registry.GraphPlatform` from disk.

    Loads ``<root>/platform.json``, registers every tenant with its
    persisted quota, and re-adds every graph from its source spec — warm
    artifacts come straight from the content-addressed store under the
    same root, so restart cost is dominated by graph I/O, not solves.
    """
    from repro.platform.registry import GraphPlatform

    manifest = load_manifest(root)
    platform = GraphPlatform(root, **platform_kwargs)
    try:
        for tname, trec in sorted(manifest["tenants"].items()):
            quota = TenantQuota.from_dict(trec.get("quota") or {})
            platform.add_tenant(tname, quota)
            for gname, grec in sorted((trec.get("graphs") or {}).items()):
                g = graph_from_spec(grec.get("source") or {})
                platform.add_graph(
                    tname, gname, g,
                    problem=grec.get("problem", "mst"),
                    algorithm=grec.get("algorithm", "kruskal"),
                    mode=grec.get("mode", "auto"),
                    shards=int(grec.get("shards", 0)),
                    source_spec=grec.get("source"),
                    **(grec.get("params") or {}),
                )
    except BaseException:
        platform.close()
        raise
    return platform


def platform_to_manifest(platform) -> dict:
    """Serialise a live platform's registrations back to manifest form.

    Graphs registered without a source spec (in-memory arrays handed to
    ``add_graph`` directly) cannot be re-materialised and are skipped —
    callers that want restartable state must pass ``source_spec=``.
    """
    tenants: dict = {}
    for tname in platform.tenants():
        state = platform.tenant(tname)
        graphs = {}
        for gname, entry in sorted(state.graphs.items()):
            if not entry.source:
                continue
            graphs[gname] = {
                "source": entry.source,
                "problem": entry.problem,
                "algorithm": entry.algorithm,
                "mode": entry.mode,
                "shards": entry.shards,
                "params": dict(entry.params),
            }
        tenants[tname] = {"quota": state.quota.to_dict(), "graphs": graphs}
    return {"version": _MANIFEST_VERSION, "tenants": tenants}
