"""`WorkerPool` — the shared, admission-controlled process pool.

The shard coordinator used to spawn a fresh batch of worker processes
for every sharded solve; background rebuilds would have needed a second
batch of their own.  This pool generalizes that executor into one
resident resource both lean on:

* **persistent workers** — each worker process runs a receive/solve/
  reply loop over a duplex pipe, so consecutive jobs skip the fork cost;
  workers idle past ``idle_timeout_s`` are retired (scale-down to zero),
  and new ones spawn on demand up to ``max_workers``;
* **admission control** — at most ``max_pending`` jobs may be queued;
  submitting past that raises :class:`~repro.errors.PoolSaturatedError`
  immediately (bounded backlog, load visibly shed);
* **fair-share scheduling** — queued jobs live on per-tenant deques
  drained round-robin, so one hot tenant cannot starve a cold one no
  matter how deep its own backlog is;
* **per-job timeouts** — an overdue job's worker is killed and the job
  fails with :class:`~repro.errors.PoolTimeoutError`; a worker that dies
  mid-job fails it with :class:`~repro.errors.WorkerCrashedError`.
  Retry *policy* stays with the caller (the shard coordinator keeps its
  own attempt accounting), so the pool never hides a failure.

Results come back as :class:`concurrent.futures.Future` objects.  Job
callables must be module-level (they cross the pipe by reference) and
their arguments/results picklable.  A single reactor thread owns
completion handling: it waits on every live worker pipe, completes
futures, reaps overdue and crashed workers, retires idle ones, and
re-dispatches the queue.  Spawning happens on the submitting thread, so
a host that refuses to fork fails the submit synchronously with
:class:`~repro.errors.PoolUnavailableError` — the signal the shard
coordinator turns into its serial-executor degradation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional

import multiprocessing as mp
from multiprocessing.connection import wait as conn_wait

from repro.errors import (
    PoolSaturatedError,
    PoolTimeoutError,
    PoolUnavailableError,
    WorkerCrashedError,
)

__all__ = ["WorkerPool", "pool_worker_main"]

# How long the reactor sleeps in conn_wait when nothing is readable;
# bounds how late a timeout reap or idle retirement can fire.
_TICK_S = 0.05

DEFAULT_IDLE_TIMEOUT_S = 30.0


def pool_worker_main(conn) -> None:
    """Worker process entry point: a persistent receive/run/reply loop.

    Messages are ``(job_id, fn, args, kwargs)``; replies are
    ``(job_id, "ok", result)`` or ``(job_id, "error", repr)``.  ``None``
    is the retirement sentinel; EOF (parent closed the pipe or died)
    also ends the loop.  A job that hard-crashes the process
    (``os._exit``, segfault) never replies — the parent sees EOF and
    fails the job as a worker crash.
    """
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg is None:
                return
            job_id, fn, args, kwargs = msg
            try:
                reply = (job_id, "ok", fn(*args, **kwargs))
            except Exception as exc:  # surface as data; the caller decides
                reply = (job_id, "error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


class _Job:
    __slots__ = ("job_id", "fn", "args", "kwargs", "tenant",
                 "timeout_s", "label", "future")

    def __init__(self, job_id, fn, args, kwargs, tenant, timeout_s, label):
        self.job_id = job_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.label = label
        self.future: Future = Future()


class _Worker:
    __slots__ = ("proc", "conn", "job", "deadline", "idle_since")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.job: Optional[_Job] = None  # None == idle
        self.deadline: Optional[float] = None
        self.idle_since = time.perf_counter()


class WorkerPool:
    """Bounded process pool with admission control and fair-share dispatch."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        max_pending: int = 256,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
        name: str = "pool",
    ) -> None:
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 2) - 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_workers = int(max_workers)
        self.max_pending = int(max_pending)
        self.idle_timeout_s = float(idle_timeout_s)
        self.name = name
        self._ctx = mp.get_context()
        self._lock = threading.RLock()
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._rr: deque = deque()  # tenants with queued jobs, drain order
        self._workers: Dict[int, _Worker] = {}
        self._ids = itertools.count()
        self._worker_ids = itertools.count()
        self._closed = False
        self._stats = {
            "submitted": 0, "completed": 0, "failed": 0, "timeouts": 0,
            "crashes": 0, "rejected": 0, "spawned": 0, "retired": 0,
            "max_live": 0,
        }
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        # The reactor sleeps in conn_wait; submit pokes this self-pipe so
        # a job handed to an idle worker is noticed without waiting a tick.
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._reactor = threading.Thread(
            target=self._run, daemon=True, name=f"repro-{name}-reactor"
        )
        self._reactor.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable,
        *args: Any,
        tenant: str = "default",
        timeout_s: Optional[float] = None,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Future:
        """Queue one job; returns its :class:`~concurrent.futures.Future`.

        Raises :class:`~repro.errors.PoolSaturatedError` when the queued
        backlog is at ``max_pending`` and
        :class:`~repro.errors.PoolUnavailableError` when the pool is
        closed or no worker can be spawned for an otherwise-empty pool.
        """
        with self._lock:
            if self._closed:
                raise PoolUnavailableError(f"pool {self.name!r} is closed")
            queued = sum(len(q) for q in self._queues.values())
            if queued >= self.max_pending:
                self._stats["rejected"] += 1
                raise PoolSaturatedError(
                    f"pool {self.name!r} backlog full "
                    f"({queued} queued, limit {self.max_pending})"
                )
            job = _Job(next(self._ids), fn, args, kwargs,
                       tenant, timeout_s, label or getattr(fn, "__name__", "job"))
            self._stats["submitted"] += 1
            ts = self._tenant_stats.setdefault(
                tenant, {"submitted": 0, "completed": 0, "failed": 0})
            ts["submitted"] += 1
            if tenant not in self._queues:
                self._queues[tenant] = deque()
            if not self._queues[tenant]:
                self._rr.append(tenant)
            self._queues[tenant].append(job)
            self._dispatch_locked()
        self._wake()
        return job.future

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A JSON-able snapshot of the pool's counters and occupancy."""
        with self._lock:
            out = dict(self._stats)
            out["live_workers"] = len(self._workers)
            out["busy_workers"] = sum(
                1 for w in self._workers.values() if w.job is not None)
            out["queued"] = sum(len(q) for q in self._queues.values())
            out["tenants"] = {
                t: dict(s) for t, s in sorted(self._tenant_stats.items())}
            return out

    @property
    def live_workers(self) -> int:
        """Worker processes currently alive (busy or idle)."""
        with self._lock:
            return len(self._workers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the pool: fail queued jobs, kill workers, join the reactor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for q in self._queues.values():
                for job in q:
                    self._fail(job, PoolUnavailableError(
                        f"pool {self.name!r} closed before the job ran"))
                q.clear()
            self._rr.clear()
            workers = list(self._workers.values())
            self._workers.clear()
        for w in workers:
            if w.job is not None:
                self._fail(w.job, PoolUnavailableError(
                    f"pool {self.name!r} closed mid-job"))
            self._kill(w)
        self._wake()
        self._reactor.join(timeout=5.0)
        for conn in (self._wake_r, self._wake_w):
            try:
                conn.close()
            except Exception:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internals — dispatch (any thread, under the lock)
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (OSError, ValueError):  # pragma: no cover - closing race
            pass

    def _next_job_locked(self) -> Optional[_Job]:
        """Pop the next queued job, round-robin across tenants."""
        while self._rr:
            tenant = self._rr.popleft()
            q = self._queues.get(tenant)
            if not q:
                continue
            job = q.popleft()
            if q:
                self._rr.append(tenant)
            return job
        return None

    def _spawn_locked(self) -> Optional[_Worker]:
        """Start one worker; ``None`` when the host refuses to fork."""
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=pool_worker_main, args=(child,), daemon=True,
            name=f"repro-{self.name}-w{next(self._worker_ids)}",
        )
        try:
            proc.start()
        except OSError:
            for conn in (parent, child):
                try:
                    conn.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            return None
        child.close()
        worker = _Worker(proc, parent)
        self._workers[id(worker)] = worker
        self._stats["spawned"] += 1
        self._stats["max_live"] = max(self._stats["max_live"], len(self._workers))
        return worker

    def _assign_locked(self, worker: _Worker, job: _Job) -> None:
        worker.job = job
        worker.deadline = (
            time.perf_counter() + job.timeout_s
            if job.timeout_s is not None else None
        )
        try:
            worker.conn.send((job.job_id, job.fn, job.args, job.kwargs))
        except (BrokenPipeError, OSError):
            # The worker died between jobs; retire it and fail this job
            # as a crash (the caller's retry policy decides what's next).
            self._retire_locked(worker, crashed=True)

    def _dispatch_locked(self) -> None:
        """Hand queued jobs to idle workers, spawning up to the cap."""
        while True:
            idle = [w for w in self._workers.values() if w.job is None]
            can_spawn = len(self._workers) < self.max_workers
            if not idle and not can_spawn:
                return
            job = self._next_job_locked()
            if job is None:
                return
            if job.future.cancelled():
                continue
            worker = idle[0] if idle else self._spawn_locked()
            if worker is None:
                # Spawn refused.  With live workers the job can wait for
                # one to free up; with none it would wait forever — fail
                # it so the caller can degrade.
                if self._workers:
                    q = self._queues[job.tenant]
                    q.appendleft(job)
                    if len(q) == 1:
                        self._rr.appendleft(job.tenant)
                    return
                self._fail(job, PoolUnavailableError(
                    f"pool {self.name!r} cannot spawn workers "
                    "(fork refused by the host)"))
                continue
            self._assign_locked(worker, job)

    # ------------------------------------------------------------------
    # Internals — completion (reactor thread)
    # ------------------------------------------------------------------
    def _fail(self, job: _Job, exc: Exception) -> None:
        self._stats["failed"] += 1
        self._tenant_stats.setdefault(
            job.tenant, {"submitted": 0, "completed": 0, "failed": 0}
        )["failed"] += 1
        if not job.future.done():
            job.future.set_exception(exc)

    def _complete(self, job: _Job, result: Any) -> None:
        self._stats["completed"] += 1
        self._tenant_stats.setdefault(
            job.tenant, {"submitted": 0, "completed": 0, "failed": 0}
        )["completed"] += 1
        if not job.future.done():
            job.future.set_result(result)

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            worker.conn.close()
        except Exception:  # pragma: no cover - defensive
            pass

    def _retire_locked(self, worker: _Worker, *, crashed: bool = False) -> None:
        """Drop a worker from the table (already dead or being retired)."""
        self._workers.pop(id(worker), None)
        self._stats["retired"] += 1
        if crashed:
            self._stats["crashes"] += 1
        job, worker.job = worker.job, None
        self._kill(worker)
        if job is not None:
            exitcode = worker.proc.exitcode
            self._fail(job, WorkerCrashedError(
                f"pool worker died mid-job "
                f"({job.label}, exit {exitcode})"))

    def _run(self) -> None:
        """The reactor: completions, timeouts, crashes, idle scale-down."""
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = {w.conn: w for w in self._workers.values()}
            try:
                ready = conn_wait([self._wake_r, *conns], timeout=_TICK_S)
            except OSError:  # pragma: no cover - a conn died mid-wait
                ready = []
            with self._lock:
                if self._closed:
                    return
                for conn in ready:
                    if conn is self._wake_r:
                        try:
                            self._wake_r.recv_bytes()
                        except (EOFError, OSError):  # pragma: no cover
                            pass
                        continue
                    worker = conns.get(conn)
                    if worker is None or id(worker) not in self._workers:
                        continue
                    self._on_readable_locked(worker)
                now = time.perf_counter()
                for worker in list(self._workers.values()):
                    if (worker.job is not None and worker.deadline is not None
                            and worker.deadline < now):
                        job, worker.job = worker.job, None
                        self._workers.pop(id(worker), None)
                        self._stats["retired"] += 1
                        self._stats["timeouts"] += 1
                        self._kill(worker)
                        self._fail(job, PoolTimeoutError(
                            f"pool job {job.label} exceeded "
                            f"{job.timeout_s:g}s; worker killed"))
                    elif (worker.job is None and self.idle_timeout_s >= 0
                          and now - worker.idle_since > self.idle_timeout_s):
                        self._workers.pop(id(worker), None)
                        self._stats["retired"] += 1
                        try:
                            worker.conn.send(None)  # graceful retirement
                        except (BrokenPipeError, OSError):
                            pass
                        self._kill_soon(worker)
                self._dispatch_locked()

    def _on_readable_locked(self, worker: _Worker) -> None:
        """One readable worker pipe: a reply, or EOF (the worker died)."""
        try:
            job_id, status, payload = worker.conn.recv()
        except (EOFError, OSError):
            self._retire_locked(worker, crashed=True)
            return
        job, worker.job = worker.job, None
        worker.deadline = None
        worker.idle_since = time.perf_counter()
        if job is None or job.job_id != job_id:
            # A reply for a job we already failed (e.g. reaped late);
            # the worker is healthy again, keep it idle.
            return
        if status == "ok":
            self._complete(job, payload)
        else:
            from repro.errors import PoolJobError

            self._fail(job, PoolJobError(str(payload)))

    def _kill_soon(self, worker: _Worker) -> None:
        """Retire gracefully: give the sentinel a moment, then make sure."""
        worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except Exception:  # pragma: no cover - defensive
            pass
