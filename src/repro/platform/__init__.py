"""Multi-tenant graph platform: named graphs, shared workers, quotas.

The serving layers below this package each manage one graph for one
caller.  :mod:`repro.platform` turns them into a platform: a
:class:`GraphPlatform` registry maps ``tenant/graph`` names to
content-addressed artifacts and resident service instances, a shared
:class:`WorkerPool` with admission control and fair-share scheduling
executes every sharded solve and background rebuild, per-tenant
:class:`TenantQuota` limits (resident graphs, queue depth, request rate)
reject excess load with structured 429-style errors, and a
:class:`RebuildScheduler` re-solves mutated graphs off the request path,
swapping artifacts in atomically.  :class:`MultiTenantServer` is the
asyncio front door (``repro serve --multi``); the manifest helpers make
the whole configuration restartable from ``platform.json``.
"""

from repro.platform.manifest import (
    build_platform,
    graph_from_spec,
    load_manifest,
    manifest_path,
    platform_to_manifest,
    save_manifest,
)
from repro.platform.pool import WorkerPool, pool_worker_main
from repro.platform.quota import DEFAULT_QUOTA, TenantQuota, TokenBucket
from repro.platform.rebuild import RebuildScheduler, rebuild_artifact_job
from repro.platform.registry import GraphEntry, GraphPlatform, TenantState
from repro.platform.server import MultiTenantServer

__all__ = [
    "GraphPlatform",
    "GraphEntry",
    "TenantState",
    "WorkerPool",
    "pool_worker_main",
    "TenantQuota",
    "TokenBucket",
    "DEFAULT_QUOTA",
    "RebuildScheduler",
    "rebuild_artifact_job",
    "MultiTenantServer",
    "build_platform",
    "graph_from_spec",
    "load_manifest",
    "save_manifest",
    "manifest_path",
    "platform_to_manifest",
]
