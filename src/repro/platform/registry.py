"""`GraphPlatform` — many named graphs, many tenants, one worker budget.

The single-graph services (:class:`~repro.service.core.MSTService`,
:class:`~repro.solve.service.ProblemService`) promoted to a resident
platform: a registry maps ``tenant/graph`` names to content-addressed
artifacts and live service instances, admission control enforces each
tenant's :class:`~repro.platform.quota.TenantQuota`, and every sharded
solve or background rebuild draws from one shared
:class:`~repro.platform.pool.WorkerPool`.

Residency is two-tier, mirroring the artifact design: *registration*
(the entry, its graph arrays, its on-disk artifact) is bounded by the
hard ``max_graphs`` quota, while *residency* (the built query engine —
the expensive index) is bounded by the soft ``resident_budget`` and
managed LRU: the least-recently-used engine is dropped via
``invalidate()``, and the next query rebuilds it warm from the store.
Eviction therefore never loses data and never rejects — it trades the
evicted tenant's next-query latency for everyone else's memory.

Mutations mark an entry *dirty*; the
:class:`~repro.platform.rebuild.RebuildScheduler` re-solves dirty graphs
off the request path in pool workers and atomically swaps the artifact
in — unless the entry was mutated again (version bump), evicted, or
removed in the meantime, each of which is handled without ever serving
a half-built artifact.
"""

from __future__ import annotations

import itertools
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import QuotaExceededError, ServiceError
from repro.graphs.csr import CSRGraph
from repro.obs.trace import span as _obs_span
from repro.platform.pool import WorkerPool
from repro.platform.quota import (
    DEFAULT_QUOTA,
    TenantQuota,
    TokenBucket,
    reject_graphs,
    reject_queue,
    reject_rate,
)
from repro.service.core import MSTService
from repro.service.metrics import ServiceMetrics

__all__ = ["GraphEntry", "TenantState", "GraphPlatform"]


class GraphEntry:
    """One named graph's registration inside a tenant."""

    __slots__ = ("tenant", "name", "problem", "algorithm", "mode", "shards",
                 "params", "source", "graph", "service", "version", "dirty",
                 "last_used", "rebuilds")

    def __init__(self, tenant: str, name: str, *, problem: str,
                 algorithm: str, mode: Optional[str], shards: int,
                 params: dict, source: Optional[dict], graph: CSRGraph,
                 service) -> None:
        self.tenant = tenant
        self.name = name
        self.problem = problem
        self.algorithm = algorithm
        self.mode = mode
        self.shards = shards
        self.params = params
        self.source = source or {}
        self.graph = graph
        self.service = service
        self.version = 0  # bumped on every mutation; guards rebuild swaps
        self.dirty = False
        self.last_used = 0
        self.rebuilds = 0

    @property
    def resident(self) -> bool:
        """Whether the entry's query engine is currently built."""
        return getattr(self.service, "_engine", None) is not None

    def to_dict(self) -> dict:
        """JSON-able row for ``repro tenant stats``."""
        return {
            "problem": self.problem,
            "n_vertices": int(self.graph.n_vertices),
            "n_edges": int(self.graph.n_edges),
            "resident": self.resident,
            "dirty": self.dirty,
            "version": self.version,
            "rebuilds": self.rebuilds,
        }


class TenantState:
    """One tenant: its quota, token bucket, graphs, and counters."""

    def __init__(self, name: str, quota: TenantQuota, *, clock) -> None:
        self.name = name
        self.quota = quota
        self.bucket: TokenBucket = quota.make_bucket(clock=clock)
        self.graphs: Dict[str, GraphEntry] = {}
        self.metrics = ServiceMetrics()
        self.inflight = 0
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_queue = 0
        self.evictions = 0

    def to_dict(self) -> dict:
        """JSON-able summary for ``repro tenant stats``."""
        return {
            "quota": self.quota.to_dict(),
            "graphs": {name: e.to_dict() for name, e in sorted(self.graphs.items())},
            "inflight": self.inflight,
            "admitted": self.admitted,
            "rejected": {"rate": self.rejected_rate, "queue": self.rejected_queue},
            "evictions": self.evictions,
        }


class GraphPlatform:
    """The multi-tenant registry: named graphs over one shared pool.

    ``root`` is the platform's state directory — content-addressed
    artifact stores live under ``<root>/store/`` and are shared across
    tenants (two tenants registering byte-identical graphs share one
    artifact); ``None`` keeps everything in memory.  ``pool`` supplies a
    shared :class:`~repro.platform.pool.WorkerPool`; without one the
    platform creates its own lazily, on the first operation that needs
    worker processes.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        pool: Optional[WorkerPool] = None,
        max_workers: Optional[int] = None,
        max_pending: int = 256,
        default_quota: TenantQuota = DEFAULT_QUOTA,
        clock=time.monotonic,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.default_quota = default_quota
        self._clock = clock
        self._max_workers = max_workers
        self._max_pending = max_pending
        self._pool = pool
        self._own_pool = pool is None
        self._lock = threading.RLock()
        self._tenants: Dict[str, TenantState] = {}
        self._seq = itertools.count(1)
        self._msf_store = None
        self._problem_store = None
        self._scheduler = None
        self._closed = False
        if self.root is not None:
            from repro.service.artifacts import ArtifactStore
            from repro.solve.artifacts import ProblemArtifactStore

            self._msf_store = ArtifactStore(self.root / "store" / "msf")
            self._problem_store = ProblemArtifactStore(
                self.root / "store" / "problems")

    # ------------------------------------------------------------------
    # Shared resources
    # ------------------------------------------------------------------
    @property
    def pool(self) -> WorkerPool:
        """The shared worker pool, created lazily on first use."""
        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self._max_workers, max_pending=self._max_pending,
                    name="platform",
                )
            return self._pool

    @property
    def scheduler(self):
        """The background rebuild scheduler, created lazily on first use."""
        with self._lock:
            if self._scheduler is None:
                from repro.platform.rebuild import RebuildScheduler

                self._scheduler = RebuildScheduler(self)
            return self._scheduler

    def close(self) -> None:
        """Stop the rebuild scheduler and (if owned) the worker pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            scheduler, self._scheduler = self._scheduler, None
            pool = self._pool if self._own_pool else None
            self._pool = None
        if scheduler is not None:
            scheduler.stop()
        if pool is not None:
            pool.close()

    def __enter__(self) -> "GraphPlatform":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def add_tenant(self, name: str, quota: TenantQuota | None = None) -> TenantState:
        """Register a tenant; rejects duplicates and empty names."""
        if not name or "/" in name:
            raise ServiceError(f"invalid tenant name {name!r}")
        with self._lock:
            if name in self._tenants:
                raise ServiceError(f"tenant {name!r} already exists")
            state = TenantState(
                name, quota if quota is not None else self.default_quota,
                clock=self._clock,
            )
            self._tenants[name] = state
            return state

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant and every graph it registered.

        An in-flight background rebuild for one of its graphs completes
        in the pool but its result is discarded at swap time (the entry
        no longer resolves).
        """
        with self._lock:
            if self._tenants.pop(name, None) is None:
                raise ServiceError(f"unknown tenant {name!r}")

    def tenant(self, name: str) -> TenantState:
        """Look up one tenant's state; unknown names raise."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                raise ServiceError(f"unknown tenant {name!r}")
            return state

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------
    def _make_service(self, tenant: TenantState, *, problem: str,
                      algorithm: str, mode: Optional[str], shards: int,
                      params: dict):
        if problem == "mst":
            return MSTService(
                self._msf_store, algorithm=algorithm, mode=mode,
                shards=shards, metrics=tenant.metrics,
                pool=self.pool if shards > 0 else None, tenant=tenant.name,
            )
        from repro.solve.service import ProblemService

        return ProblemService(
            self._problem_store, problem=problem, mode=mode,
            metrics=tenant.metrics, **params,
        )

    def add_graph(
        self,
        tenant: str,
        name: str,
        g: CSRGraph,
        *,
        problem: str = "mst",
        algorithm: str = "kruskal",
        mode: Optional[str] = "auto",
        shards: int = 0,
        source_spec: Optional[dict] = None,
        **params,
    ) -> GraphEntry:
        """Register ``tenant/name`` and solve (or warm-load) its artifact.

        ``problem`` is ``"mst"`` or any registered problem name (the
        entry then serves that problem's query kinds).  Rejects past the
        tenant's ``max_graphs`` quota with a structured
        :class:`~repro.errors.QuotaExceededError`; within it, the solve
        runs immediately — cold builds are an *admin* operation, kept off
        the request path by design.
        """
        if not name or "/" in name:
            raise ServiceError(f"invalid graph name {name!r}")
        with self._lock:
            state = self.tenant(tenant)
            if name in state.graphs:
                raise ServiceError(f"graph {tenant}/{name} already exists")
            limit = state.quota.max_graphs
            if limit > 0 and len(state.graphs) >= limit:
                raise reject_graphs(tenant, len(state.graphs), limit)
            with _obs_span("platform:add_graph", "platform", tenant=tenant,
                           graph=name, problem=problem):
                service = self._make_service(
                    state, problem=problem, algorithm=algorithm, mode=mode,
                    shards=shards, params=params,
                )
                service.load_graph(g)
            entry = GraphEntry(
                tenant, name, problem=problem, algorithm=algorithm,
                mode=mode, shards=shards, params=params, source=source_spec,
                graph=g, service=service,
            )
            entry.last_used = next(self._seq)
            state.graphs[name] = entry
            self._enforce_residency_locked(state)
            return entry

    def remove_graph(self, tenant: str, name: str) -> None:
        """Drop one graph registration (its artifact file stays cached)."""
        with self._lock:
            state = self.tenant(tenant)
            if state.graphs.pop(name, None) is None:
                raise ServiceError(f"unknown graph {tenant}/{name}")

    def entry(self, tenant: str, name: str) -> GraphEntry:
        """Look up one graph entry; unknown names raise."""
        with self._lock:
            state = self.tenant(tenant)
            e = state.graphs.get(name)
            if e is None:
                raise ServiceError(f"unknown graph {tenant}/{name}")
            return e

    def get_service(self, tenant: str, name: str):
        """The live service for ``tenant/name`` (LRU-touched).

        An evicted entry re-materializes lazily: its next query rebuilds
        the engine warm from the content-addressed store via the
        service's own ``ensure_ready``.  Residency is re-enforced here so
        a reload can in turn evict someone else's least-recently-used
        engine.
        """
        with self._lock:
            e = self.entry(tenant, name)
            e.last_used = next(self._seq)
            self._enforce_residency_locked(self._tenants[tenant], keep=e)
            return e.service

    def _enforce_residency_locked(self, state: TenantState,
                                  keep: GraphEntry | None = None) -> None:
        """Evict LRU engines past the tenant's soft residency budget."""
        budget = state.quota.resident_budget
        if budget <= 0:
            return
        resident = [e for e in state.graphs.values() if e.resident]
        resident.sort(key=lambda e: e.last_used)
        while len(resident) > budget:
            victim = resident.pop(0)
            if victim is keep:
                continue
            victim.service.invalidate()
            state.evictions += 1

    # ------------------------------------------------------------------
    # Admission control (the request path)
    # ------------------------------------------------------------------
    def admit(self, tenant: str):
        """Admit one request for ``tenant``; returns a release callable.

        Raises the structured :class:`~repro.errors.QuotaExceededError`
        when the tenant's token bucket is drained (``reason="rate"``,
        with ``retry_after_s``) or its in-flight window is full
        (``reason="queue"``).  The caller must invoke the returned
        callable exactly once when the request finishes (any outcome).
        """
        with self._lock:
            state = self.tenant(tenant)
            retry = state.bucket.try_take()
            if retry is not None:
                state.rejected_rate += 1
                state.metrics.record_rejected()
                raise reject_rate(tenant, retry)
            depth = state.quota.max_queue_depth
            if depth > 0 and state.inflight >= depth:
                state.rejected_queue += 1
                state.metrics.record_rejected()
                raise reject_queue(tenant, state.inflight, depth)
            state.inflight += 1
            state.admitted += 1

        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._lock:
                state.inflight -= 1

        return release

    def admission(self, tenant: str):
        """Context-manager sugar over :meth:`admit`."""
        import contextlib

        @contextlib.contextmanager
        def _ctx():
            release = self.admit(tenant)
            try:
                yield
            finally:
                release()

        return _ctx()

    # ------------------------------------------------------------------
    # Mutations and background rebuilds
    # ------------------------------------------------------------------
    def mutate(self, tenant: str, name: str, op: str, u: int, v: int,
               w: float | None = None):
        """Apply one edge mutation and schedule a background re-solve.

        The incremental repair (``DynamicMSF``) answers immediately; the
        full re-solve runs later in a pool worker and swaps in atomically
        — unless another mutation bumped the version first, in which case
        the stale result is dropped and the newer rebuild proceeds.
        Mutations are an MST capability; problem entries reject them.
        """
        with self._lock:
            e = self.entry(tenant, name)
            if e.problem != "mst":
                raise ServiceError(
                    f"graph {tenant}/{name} serves {e.problem!r}; "
                    "mutations need an MST entry"
                )
            with _obs_span("platform:mutate", "platform", tenant=tenant,
                           graph=name, op=op):
                if op == "insert":
                    out = e.service.insert_edge(int(u), int(v), float(w))
                elif op == "delete":
                    e.service.delete_edge(int(u), int(v), w)
                    out = None
                else:
                    raise ServiceError(f"unknown mutation {op!r}")
            e.graph = e.service.graph
            e.version += 1
            e.dirty = True
            version = e.version
        self.scheduler.schedule(tenant, name, version)
        return out

    def mark_dirty(self, tenant: str, name: str) -> None:
        """Flag ``tenant/name`` for an off-request-path re-solve."""
        with self._lock:
            e = self.entry(tenant, name)
            e.version += 1
            e.dirty = True
            version = e.version
        self.scheduler.schedule(tenant, name, version)

    def snapshot_for_rebuild(self, tenant: str, name: str):
        """The rebuild job's input: graph arrays + solve spec + version.

        Returns ``None`` when the entry no longer exists (removed tenant
        or graph) — the scheduler drops the work.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            e = state.graphs.get(name) if state is not None else None
            if e is None:
                return None
            g = e.graph
            spec = {
                "n_vertices": int(g.n_vertices),
                "edge_u": g.edge_u, "edge_v": g.edge_v, "edge_w": g.edge_w,
                "problem": e.problem, "algorithm": e.algorithm,
                "mode": e.mode, "params": dict(e.params),
            }
            return spec, e.version

    def complete_rebuild(self, tenant: str, name: str, version: int,
                         artifact) -> str:
        """Atomically install a finished rebuild; returns the outcome.

        ``"swapped"`` — the entry is live and current, the engine now
        serves the new artifact; ``"persisted"`` — the entry was evicted
        mid-rebuild, the artifact went to the content-addressed store so
        the next query reloads it warm; ``"stale"`` — the entry was
        mutated again (version bumped), the result is dropped and the
        newer rebuild will land instead; ``"discarded"`` — the entry (or
        its tenant) was removed.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            e = state.graphs.get(name) if state is not None else None
            if e is None:
                return "discarded"
            if e.version != version:
                return "stale"
            e.dirty = False
            e.rebuilds += 1
            if e.resident:
                e.service.adopt_artifact(artifact)
                return "swapped"
            store = e.service.store
            if store is not None:
                store.put(artifact)
            return "persisted"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, tenant: str | None = None) -> dict:
        """JSON-able platform counters (one tenant, or all + the pool)."""
        with self._lock:
            if tenant is not None:
                return self.tenant(tenant).to_dict()
            out = {
                "tenants": {n: s.to_dict() for n, s in sorted(self._tenants.items())},
            }
            if self._pool is not None:
                out["pool"] = self._pool.stats()
            if self._scheduler is not None:
                out["rebuilds"] = self._scheduler.stats()
            return out

    def metrics_providers(self) -> dict:
        """Named obs providers: one per tenant, plus the pool's counters.

        Register them on a :class:`~repro.obs.MetricsRegistry` (the CLI's
        ``--trace`` path does) so the flat metrics snapshot carries
        per-tenant serving percentiles next to the span timeline.
        """
        from repro.obs.registry import service_metrics_provider

        with self._lock:
            providers = {
                f"platform.tenant.{name}": service_metrics_provider(state.metrics)
                for name, state in sorted(self._tenants.items())
            }
        providers["platform.pool"] = lambda: (
            self._pool.stats() if self._pool is not None else {}
        )
        return providers
