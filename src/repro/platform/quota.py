"""Per-tenant admission control: token buckets and quota limits.

Quotas are the platform's contract with every *other* tenant: one hot
client may saturate its own budget, but it cannot grow the shared
backlog without bound or crowd a cold tenant's graphs out of memory.
Three dimensions are enforced, each with a distinct structured
rejection (:class:`~repro.errors.QuotaExceededError`, the 429-style
record — never a crash):

* **requests/sec** — a :class:`TokenBucket` per tenant; a drained bucket
  rejects with the exact ``retry_after_s`` until the next token accrues;
* **queue depth** — at most ``max_queue_depth`` of a tenant's requests
  may be in flight at once (admission is released on completion, so this
  bounds the tenant's share of the platform's working memory);
* **resident graphs** — a hard cap on *registered* graphs per tenant
  (``max_graphs``); the separate ``resident_budget`` is soft — it evicts
  the tenant's least-recently-used query engine rather than rejecting
  (the artifact stays on disk, so the next query reloads warm).

The bucket takes an injectable ``clock`` so refill boundaries are
testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro.errors import QuotaExceededError

__all__ = ["TokenBucket", "TenantQuota", "DEFAULT_QUOTA", "QuotaExceededError"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s accrue up to ``burst``.

    ``try_take()`` is the only mutator: it refills lazily from the
    injected monotonic ``clock`` and either spends one token or reports
    the seconds until the next token accrues.  The bucket starts full —
    a new tenant gets its burst immediately.  ``rate <= 0`` disables the
    limit (every take succeeds).
    """

    def __init__(self, rate: float, burst: float = 1.0, *, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self) -> float | None:
        """Spend one token; ``None`` on success, else seconds to back off."""
        if self.rate <= 0:
            return None
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to the clock's now)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission-control limits.

    ``max_graphs`` caps registered graphs (hard: the add is rejected);
    ``resident_budget`` caps *resident query engines* (soft: the LRU
    engine is dropped, its artifact stays on disk); ``max_queue_depth``
    caps in-flight requests; ``rate_qps``/``burst`` parameterize the
    token bucket.  Any non-positive limit disables that dimension.
    """

    max_graphs: int = 8
    resident_budget: int = 4
    max_queue_depth: int = 256
    rate_qps: float = 0.0
    burst: float = 1.0

    def make_bucket(self, *, clock=time.monotonic) -> TokenBucket:
        """A fresh token bucket enforcing this quota's rate dimension."""
        burst = self.burst if self.burst > 0 else max(1.0, self.rate_qps)
        return TokenBucket(self.rate_qps, burst, clock=clock)

    def to_dict(self) -> dict:
        """JSON-able form (the manifest's ``quota`` object)."""
        return {
            "max_graphs": self.max_graphs,
            "resident_budget": self.resident_budget,
            "max_queue_depth": self.max_queue_depth,
            "rate_qps": self.rate_qps,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in dict(data).items() if k in known})


DEFAULT_QUOTA = TenantQuota()


def reject_rate(tenant: str, retry_after_s: float) -> QuotaExceededError:
    """The structured rejection for a drained token bucket."""
    wait = max(0.0, float(retry_after_s))
    return QuotaExceededError(
        f"tenant {tenant!r} over its request rate; retry in {wait:.3f}s",
        tenant=tenant, reason="rate", retry_after_s=math.ceil(wait * 1e3) / 1e3,
    )


def reject_queue(tenant: str, depth: int, limit: int) -> QuotaExceededError:
    """The structured rejection for a full per-tenant in-flight window."""
    return QuotaExceededError(
        f"tenant {tenant!r} has {depth} requests in flight (limit {limit})",
        tenant=tenant, reason="queue",
    )


def reject_graphs(tenant: str, count: int, limit: int) -> QuotaExceededError:
    """The structured rejection for the registered-graph cap."""
    return QuotaExceededError(
        f"tenant {tenant!r} already has {count} graphs (limit {limit})",
        tenant=tenant, reason="graphs",
    )
