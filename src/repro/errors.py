"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subclasses group failures by subsystem:
graph construction and validation, algorithm preconditions, the LLP engine,
the parallel runtime, and I/O.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph is malformed or violates a structural precondition."""


class ValidationError(GraphError):
    """A structural invariant check on a graph representation failed."""


class DisconnectedGraphError(GraphError):
    """An algorithm requiring a connected graph was given a disconnected one."""


class WeightError(GraphError):
    """Edge weights violate a precondition (e.g. NaN, non-finite)."""


class AlgorithmError(ReproError):
    """An algorithm reached an invalid internal state."""


class LLPError(ReproError):
    """The LLP engine detected a protocol violation.

    Raised, for example, when ``advance`` fails to strictly increase a
    forbidden index (which would make the engine loop forever), or when the
    state vector would exceed the lattice's top element for a problem where
    that indicates infeasibility.
    """


class InfeasibleError(LLPError):
    """The predicate has no satisfying element below the lattice top."""


class BackendError(ReproError):
    """The parallel runtime backend failed or was misused."""


class GraphIOError(ReproError):
    """A graph file could not be parsed or written."""


class BenchmarkError(ReproError):
    """A benchmark harness configuration is invalid."""


class ServiceError(ReproError):
    """The MST query service was misused or hit a corrupted artifact.

    Raised, for example, when a persisted MSF artifact fails integrity
    checks (truncated file, version mismatch, fingerprint disagreement),
    when a query names an unknown edge or operation, or when the service
    is asked to answer queries before a graph was loaded.
    """


class ServiceOverloadError(ServiceError):
    """A non-blocking submit found the service's bounded queue full.

    Raised only by the open-loop entry point
    (:meth:`~repro.service.server.AsyncMSTService.query_nowait`); the
    blocking :meth:`~repro.service.server.AsyncMSTService.query` path
    awaits on backpressure instead.  Every raise is counted in
    :attr:`~repro.service.metrics.ServiceMetrics.rejected`.
    """


class ServiceTimeoutError(ServiceError):
    """A request's per-request deadline expired before it was answered.

    The deadline is checked when the batch worker dequeues the request
    and again when its batch completes; either expiry fails the awaiting
    caller with this error and counts in
    :attr:`~repro.service.metrics.ServiceMetrics.timeouts`.
    """


class QuotaExceededError(ServiceError):
    """A tenant request was rejected by an admission-control quota.

    The platform's 429-style structured rejection: never a crash, always
    an answerable record.  ``tenant`` names the offender, ``reason`` the
    quota dimension that fired (``"rate"``, ``"queue"``, ``"graphs"``),
    and ``retry_after_s`` — when the limit is time-based — how long the
    client should back off before the token bucket can admit it again.
    """

    def __init__(self, message: str, *, tenant: str = "",
                 reason: str = "quota", retry_after_s: float | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s

    def to_record(self) -> dict:
        """The JSON-able rejection record served in place of an answer."""
        record = {
            "error": str(self),
            "code": 429,
            "tenant": self.tenant,
            "reason": self.reason,
        }
        if self.retry_after_s is not None:
            record["retry_after_s"] = round(float(self.retry_after_s), 6)
        return record


class PoolError(ServiceError):
    """Base class for the shared worker pool's failure modes."""


class PoolSaturatedError(PoolError):
    """Admission control found the pool's bounded backlog full.

    The pool analogue of :class:`ServiceOverloadError`: submitting past
    ``max_pending`` queued jobs is rejected immediately instead of
    growing an unbounded backlog.
    """


class PoolTimeoutError(PoolError):
    """A pool job exceeded its per-job deadline; its worker was killed."""


class WorkerCrashedError(PoolError):
    """A pool worker process died while running a job."""


class PoolJobError(PoolError):
    """The submitted callable raised inside the worker process."""


class PoolUnavailableError(PoolError):
    """The pool cannot run jobs at all (spawn refused, pool closed).

    Distinct from per-job failures so callers can degrade the whole
    operation (the shard coordinator falls back to its serial executor)
    rather than retrying a machinery problem job by job.
    """
