"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subclasses group failures by subsystem:
graph construction and validation, algorithm preconditions, the LLP engine,
the parallel runtime, and I/O.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph is malformed or violates a structural precondition."""


class ValidationError(GraphError):
    """A structural invariant check on a graph representation failed."""


class DisconnectedGraphError(GraphError):
    """An algorithm requiring a connected graph was given a disconnected one."""


class WeightError(GraphError):
    """Edge weights violate a precondition (e.g. NaN, non-finite)."""


class AlgorithmError(ReproError):
    """An algorithm reached an invalid internal state."""


class LLPError(ReproError):
    """The LLP engine detected a protocol violation.

    Raised, for example, when ``advance`` fails to strictly increase a
    forbidden index (which would make the engine loop forever), or when the
    state vector would exceed the lattice's top element for a problem where
    that indicates infeasibility.
    """


class InfeasibleError(LLPError):
    """The predicate has no satisfying element below the lattice top."""


class BackendError(ReproError):
    """The parallel runtime backend failed or was misused."""


class GraphIOError(ReproError):
    """A graph file could not be parsed or written."""


class BenchmarkError(ReproError):
    """A benchmark harness configuration is invalid."""


class ServiceError(ReproError):
    """The MST query service was misused or hit a corrupted artifact.

    Raised, for example, when a persisted MSF artifact fails integrity
    checks (truncated file, version mismatch, fingerprint disagreement),
    when a query names an unknown edge or operation, or when the service
    is asked to answer queries before a graph was loaded.
    """


class ServiceOverloadError(ServiceError):
    """A non-blocking submit found the service's bounded queue full.

    Raised only by the open-loop entry point
    (:meth:`~repro.service.server.AsyncMSTService.query_nowait`); the
    blocking :meth:`~repro.service.server.AsyncMSTService.query` path
    awaits on backpressure instead.  Every raise is counted in
    :attr:`~repro.service.metrics.ServiceMetrics.rejected`.
    """


class ServiceTimeoutError(ServiceError):
    """A request's per-request deadline expired before it was answered.

    The deadline is checked when the batch worker dequeues the request
    and again when its batch completes; either expiry fails the awaiting
    caller with this error and counts in
    :attr:`~repro.service.metrics.ServiceMetrics.timeouts`.
    """
