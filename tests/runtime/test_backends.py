"""Backend contract: rounds, worklists, charging, and traces."""

import pytest

from repro.errors import BackendError
from repro.runtime.backend import TaskContext
from repro.runtime.cost_model import CostModel
from repro.runtime.sequential import SequentialBackend
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threads import ThreadBackend


def backends():
    return [
        ("sequential", SequentialBackend()),
        ("simulated", SimulatedBackend(4)),
        ("threads", ThreadBackend(3)),
    ]


@pytest.fixture(params=["sequential", "simulated", "threads"])
def backend(request):
    b = dict(backends())[request.param]
    yield b
    if hasattr(b, "shutdown"):
        b.shutdown()


def test_run_round_returns_results_in_order(backend):
    results = backend.run_round(list(range(10)), lambda ctx, x: x * x)
    assert results == [x * x for x in range(10)]


def test_run_round_records_work_and_span(backend):
    def task(ctx, x):
        ctx.charge(x + 1)
        return x

    backend.run_round([0, 1, 2, 3], task)
    rec = backend.trace.rounds[-1]
    assert rec.n_tasks == 4
    assert rec.work == 1 + 2 + 3 + 4
    assert rec.span == 4
    assert rec.barrier


def test_empty_round_not_recorded(backend):
    assert backend.run_round([], lambda ctx, x: x) == []
    assert backend.trace.n_rounds == 0


def test_charge_serial_accumulates(backend):
    backend.charge_serial(5)
    backend.charge_serial(7)
    assert backend.trace.serial_units == 12


def test_charge_pipelined_accumulates(backend):
    backend.charge_pipelined(4)
    assert backend.trace.pipelined_units == 4


def test_charge_parallel_records_balanced_round(backend):
    backend.charge_parallel(100)
    rec = backend.trace.rounds[-1]
    assert rec.work == 100
    assert rec.span == -(-100 // rec.n_tasks)
    backend.charge_parallel(0)  # no-op
    assert backend.trace.n_rounds == 1


def test_worklist_spawning_chain(backend):
    """Tasks spawn a chain 0 -> 1 -> 2 -> 3; span equals total chain cost."""

    def task(ctx, x):
        ctx.charge(2)
        children = [x + 1] if x < 3 else []
        return children, x

    payloads = backend.run_worklist([0], task)
    assert sorted(payloads) == [0, 1, 2, 3]
    rec = backend.trace.rounds[-1]
    assert not rec.barrier
    assert rec.n_tasks == 4
    assert rec.work == 8
    assert rec.span == 8  # pure chain: no parallelism


def test_worklist_fanout_span(backend):
    """A root spawning 8 leaves: span is root + one leaf."""

    def task(ctx, x):
        ctx.charge(1)
        return (list(range(1, 9)) if x == 0 else []), x

    backend.run_worklist([0], task)
    rec = backend.trace.rounds[-1]
    assert rec.work == 9
    assert rec.span == 2


def test_worklist_empty_seed(backend):
    assert backend.run_worklist([], lambda ctx, x: ([], x)) == []


def test_worklist_exception_propagates(backend):
    def task(ctx, x):
        raise ValueError("boom")

    with pytest.raises(ValueError):
        backend.run_worklist([1], task)


def test_round_exception_propagates(backend):
    def task(ctx, x):
        if x == 2:
            raise RuntimeError("task failed")
        return x

    with pytest.raises(RuntimeError):
        backend.run_round([0, 1, 2, 3], task)


def test_reset_trace(backend):
    backend.charge_serial(3)
    old = backend.reset_trace()
    assert old.serial_units == 3
    assert backend.trace.serial_units == 0


def test_n_workers_and_concurrent_flags():
    assert SequentialBackend().n_workers == 1
    assert SimulatedBackend(8).n_workers == 8
    assert not SequentialBackend().concurrent
    assert not SimulatedBackend(2).concurrent
    with ThreadBackend(2) as tb:
        assert tb.n_workers == 2
        assert tb.concurrent


def test_simulated_worker_bounds():
    with pytest.raises(BackendError):
        SimulatedBackend(0)
    with pytest.raises(BackendError):
        SimulatedBackend(100000)


def test_thread_backend_rejects_zero_workers():
    with pytest.raises(BackendError):
        ThreadBackend(0)


def test_thread_backend_shutdown_idempotent_and_blocks_use():
    tb = ThreadBackend(2)
    tb.shutdown()
    tb.shutdown()
    with pytest.raises(BackendError):
        tb.run_round([1], lambda ctx, x: x)
    with pytest.raises(BackendError):
        tb.run_worklist([1], lambda ctx, x: ([], x))


def test_simulated_modelled_time_monotone_in_workers():
    """More workers never hurt a single fat round."""
    model = CostModel()
    times = []
    for p in (1, 2, 4, 8):
        b = SimulatedBackend(p, model)

        def task(ctx, x):
            ctx.charge(100)
            return x

        b.run_round(list(range(64)), task)
        times.append(b.modelled_time())
    assert times == sorted(times, reverse=True)


def test_simulated_modelled_speedup():
    b = SimulatedBackend(8)
    b.run_round(list(range(32)), lambda ctx, x: ctx.charge(50))
    assert b.modelled_speedup() > 2.0


def test_map_round_materialises_iterables(backend):
    results = backend.map_round((x for x in range(5)), lambda ctx, x: x + 1)
    assert results == [1, 2, 3, 4, 5]


def test_worklist_payloads_include_all_tasks(backend):
    """Payload list covers seeds and every spawned child exactly once."""

    def task(ctx, x):
        ctx.charge(1)
        return ([x * 2] if x in (1, 2) else []), x

    payloads = backend.run_worklist([1, 2], task)
    # seeds 1, 2 -> children 2, 4; the spawned 2 spawns another 4
    assert sorted(payloads) == [1, 2, 2, 4, 4]
