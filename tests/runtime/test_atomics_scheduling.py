"""Atomic array primitives (incl. threaded hammering) and work chunking."""

import threading

import numpy as np
import pytest

from repro.runtime.atomics import AtomicInt64Array
from repro.runtime.scheduling import balanced_chunks, chunk_indices, chunk_range


@pytest.mark.parametrize("thread_safe", [True, False])
class TestAtomicArray:
    def test_load_store(self, thread_safe):
        a = AtomicInt64Array(4, fill=7, thread_safe=thread_safe)
        assert len(a) == 4
        assert a.load(2) == 7
        a.store(2, -3)
        assert a.load(2) == -3

    def test_fetch_min(self, thread_safe):
        a = AtomicInt64Array(2, fill=10, thread_safe=thread_safe)
        assert a.fetch_min(0, 5) == 10
        assert a.fetch_min(0, 8) == 5  # no change, returns old
        assert a.load(0) == 5

    def test_fetch_add(self, thread_safe):
        a = AtomicInt64Array(1, thread_safe=thread_safe)
        assert a.fetch_add(0, 3) == 0
        assert a.fetch_add(0, -1) == 3
        assert a.load(0) == 2

    def test_compare_and_swap(self, thread_safe):
        a = AtomicInt64Array(1, fill=5, thread_safe=thread_safe)
        assert a.compare_and_swap(0, 5, 9)
        assert not a.compare_and_swap(0, 5, 11)
        assert a.load(0) == 9


def test_threaded_fetch_min_converges_to_global_min():
    a = AtomicInt64Array(8, fill=1 << 40)
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1_000_000, size=(4, 500, 8))

    def work(vs):
        for row in vs:
            for i in range(8):
                a.fetch_min(i, int(row[i]))

    threads = [threading.Thread(target=work, args=(values[t],)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = values.reshape(-1, 8).min(axis=0)
    assert [a.load(i) for i in range(8)] == expected.tolist()


def test_threaded_cas_exactly_one_winner():
    a = AtomicInt64Array(64, fill=0)
    wins = [0] * 8

    def work(tid):
        for i in range(64):
            if a.compare_and_swap(i, 0, tid + 1):
                wins[tid] += 1

    threads = [threading.Thread(target=work, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(wins) == 64  # every slot claimed exactly once


def test_threaded_fetch_add_counts_all():
    a = AtomicInt64Array(1)

    def work():
        for _ in range(2000):
            a.fetch_add(0, 1)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert a.load(0) == 8000


# ------------------------------------------------------------- chunking
def test_chunk_range_covers_exactly():
    chunks = chunk_range(10, 3)
    covered = [i for lo, hi in chunks for i in range(lo, hi)]
    assert covered == list(range(10))
    assert len(chunks) == 3


def test_chunk_range_more_chunks_than_items():
    chunks = chunk_range(3, 8)
    assert len(chunks) == 3
    assert chunk_range(0, 4) == []


def test_chunk_indices_partition():
    idx = np.arange(20) * 2
    parts = chunk_indices(idx, 4)
    assert np.concatenate(parts).tolist() == idx.tolist()


def test_balanced_chunks_equalise_cost():
    costs = np.array([10, 10, 10, 10, 1, 1, 1, 1, 1, 1], dtype=float)
    parts = balanced_chunks(costs, 2)
    totals = [costs[p].sum() for p in parts]
    assert len(parts) >= 2
    assert max(totals) <= costs.sum() * 0.75  # roughly balanced


def test_balanced_chunks_zero_costs():
    parts = balanced_chunks(np.zeros(6), 3)
    assert np.concatenate(parts).tolist() == list(range(6))


def test_balanced_chunks_empty():
    assert balanced_chunks(np.array([]), 4) == []
