"""The message-passing network simulator."""

import pytest

from repro.errors import BackendError
from repro.runtime.messaging import Message, Network


def test_basic_delivery_order():
    net = Network(3)
    log = []
    net.send(0, 1, "a")
    net.send(0, 2, "b")

    def handler(n, msg):
        log.append((msg.src, msg.dst, msg.kind))

    stats = net.run(handler)
    assert log == [(0, 1, "a"), (0, 2, "b")]
    assert stats.messages_sent == 2
    assert stats.messages_delivered == 2
    assert stats.by_kind == {"a": 1, "b": 1}


def test_fifo_per_channel():
    net = Network(2)
    log = []
    for i in range(10):
        net.send(0, 1, "m", i)

    net.run(lambda n, msg: log.append(msg.payload[0]))
    assert log == list(range(10))


def test_handlers_can_send_more_messages():
    net = Network(4)
    hops = []

    def handler(n, msg):
        hops.append(msg.dst)
        if msg.dst < 3:
            n.send(msg.dst, msg.dst + 1, "hop")

    net.send(0, 1, "hop")
    stats = net.run(handler)
    assert hops == [1, 2, 3]
    assert stats.final_time == 3  # unit latency chain


def test_latency_shifts_time():
    net = Network(2, latency=5)
    seen = []
    net.send(0, 1, "x")
    net.run(lambda n, m: seen.append(n.time))
    assert seen == [5]


def test_defer_redelivers_later():
    net = Network(2)
    attempts = []

    def handler(n, msg):
        attempts.append(n.time)
        if len(attempts) < 3:
            n.defer(msg)

    net.send(0, 1, "retry")
    stats = net.run(handler)
    assert len(attempts) == 3
    assert stats.deferrals == 2
    assert attempts == sorted(attempts)


def test_delivery_limit_detects_livelock():
    net = Network(2)

    def handler(n, msg):
        n.defer(msg)  # never make progress

    net.send(0, 1, "spin")
    with pytest.raises(BackendError):
        net.run(handler, max_deliveries=50)


def test_validation():
    with pytest.raises(BackendError):
        Network(-1)
    with pytest.raises(BackendError):
        Network(2, latency=0)
    net = Network(2)
    with pytest.raises(BackendError):
        net.send(0, 5, "x")


def test_pending_counter():
    net = Network(2)
    assert net.pending() == 0
    net.send(0, 1, "x")
    assert net.pending() == 1
    net.run(lambda n, m: None)
    assert net.pending() == 0


def test_message_payload_tuple():
    net = Network(2)
    got = []
    net.send(0, 1, "data", 42, "tag")
    net.run(lambda n, m: got.append(m.payload))
    assert got == [(42, "tag")]
