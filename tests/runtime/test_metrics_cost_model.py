"""ExecutionTrace accounting and the cost model's pricing rules."""

import math

import pytest

from repro.runtime.cost_model import CostModel, calibrate_unit_time
from repro.runtime.metrics import ExecutionTrace, RoundRecord


def test_round_record_span_bounded_by_work():
    RoundRecord(2, 10, 10)
    with pytest.raises(ValueError):
        RoundRecord(2, 5, 6)


def test_trace_aggregates():
    t = ExecutionTrace()
    t.add_round(4, 40, 15)
    t.add_round(2, 10, 6)
    t.charge_serial(5)
    t.charge_pipelined(3)
    assert t.n_rounds == 2
    assert t.parallel_work == 50
    assert t.total_work == 58
    assert t.critical_path == 5 + max(3, 21)
    s = t.summary()
    assert s["rounds"] == 2
    assert s["avg_tasks_per_round"] == 3.0


def test_trace_merge():
    a, b = ExecutionTrace(), ExecutionTrace()
    a.add_round(1, 5, 5)
    a.bump("x")
    b.add_round(2, 8, 4)
    b.charge_serial(2)
    b.charge_pipelined(9)
    b.bump("x", 2)
    a.merge(b)
    assert a.n_rounds == 2
    assert a.serial_units == 2
    assert a.pipelined_units == 9
    assert a.counters["x"] == 3


def test_modelled_time_p1_equals_total_work_plus_overheads():
    model = CostModel(unit_time=1e-6, sync_base=0.0, sync_per_doubling=0.0,
                      async_base=0.0, async_per_doubling=0.0, task_overhead_units=0)
    t = ExecutionTrace()
    t.add_round(2, 100, 60)
    t.charge_serial(10)
    assert model.modelled_time(t, 1) == pytest.approx(110e-6)


def test_modelled_time_decreases_with_workers_for_wide_round():
    model = CostModel()
    t = ExecutionTrace()
    t.add_round(64, 6400, 100)
    times = [model.modelled_time(t, p) for p in (1, 2, 4, 8, 16)]
    assert times == sorted(times, reverse=True)


def test_sync_cost_grows_logarithmically():
    model = CostModel()
    assert model.sync_cost(1) == model.sync_base
    assert model.sync_cost(4) == pytest.approx(model.sync_base + 2 * model.sync_per_doubling)
    assert model.async_cost(1) == model.async_base
    assert model.async_cost(8) == pytest.approx(
        model.async_base + 3 * model.async_per_doubling
    )


def test_async_rounds_priced_cheaper_than_barriers():
    model = CostModel()
    barrier, async_ = ExecutionTrace(), ExecutionTrace()
    barrier.add_round(4, 40, 10, barrier=True)
    async_.add_round(4, 40, 10, barrier=False)
    assert model.modelled_time(async_, 16) < model.modelled_time(barrier, 16)


def test_pipelined_overlaps_rounds_beyond_one_worker():
    model = CostModel(unit_time=1e-6, sync_base=0.0, sync_per_doubling=0.0,
                      async_base=0.0, async_per_doubling=0.0, task_overhead_units=0)
    t = ExecutionTrace()
    t.charge_pipelined(1000)
    t.add_round(10, 100, 10)
    # p=1: stream + rounds serialise
    assert model.modelled_time(t, 1) == pytest.approx(1100e-6)
    # p=2: one worker streams, one runs the rounds; stream dominates
    assert model.modelled_time(t, 2) == pytest.approx(1000e-6)


def test_worker_bounds_rejected():
    model = CostModel()
    t = ExecutionTrace()
    with pytest.raises(ValueError):
        model.modelled_time(t, 0)
    with pytest.raises(ValueError):
        model.modelled_time(t, model.max_workers + 1)
    with pytest.raises(ValueError):
        model.sync_cost(0)
    with pytest.raises(ValueError):
        model.async_cost(-1)


def test_speedup_uses_t1():
    model = CostModel()
    t = ExecutionTrace()
    t.add_round(32, 3200, 100)
    assert model.speedup(t, 8) == pytest.approx(
        model.modelled_time(t, 1) / model.modelled_time(t, 8)
    )


def test_with_unit_time():
    model = CostModel().with_unit_time(5e-9)
    assert model.unit_time == 5e-9


def test_calibrate_unit_time():
    def run():
        t = ExecutionTrace()
        t.charge_serial(10_000)
        # burn a bit of real time so the calibration has signal
        x = 0
        for i in range(20_000):
            x += i
        return t

    model = calibrate_unit_time(run, repeats=2)
    assert model.unit_time > 0


def test_calibrate_rejects_empty_trace():
    with pytest.raises(ValueError):
        calibrate_unit_time(lambda: ExecutionTrace(), repeats=1)


def test_negative_counters_rejected():
    t = ExecutionTrace()
    t.charge_serial(-1)  # allowed arithmetic, but results stay consistent
    assert t.serial_units == -1


# ---------------------------------------------------- model-level properties
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def random_traces(draw):
    t = ExecutionTrace()
    for _ in range(draw(st.integers(0, 6))):
        n_tasks = draw(st.integers(1, 50))
        span = draw(st.integers(1, 200))
        work = span + draw(st.integers(0, 5000))
        t.add_round(n_tasks, work, span, barrier=draw(st.booleans()))
    t.charge_serial(draw(st.integers(0, 1000)))
    return t


@given(trace=random_traces(), p=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_speedup_never_exceeds_worker_count(trace, p):
    """Without a pipelined stream, T(1) <= p * T(p) (no superlinearity)."""
    model = CostModel()
    assert model.modelled_time(trace, 1) <= p * model.modelled_time(trace, p) + 1e-15


@given(trace=random_traces())
@settings(max_examples=60, deadline=None)
def test_infinite_worker_floor(trace):
    """T(p) never drops below the serial units plus barrier costs."""
    model = CostModel()
    floor = trace.serial_units * model.unit_time
    for p in (2, 8, 64):
        assert model.modelled_time(trace, p) >= floor


def test_trace_accounting_schedule_robust():
    """Thread-backend traces price within a small factor of simulated ones.

    The charged units are schedule-independent; only async-region spans may
    differ across interleavings, so modelled times from a real concurrent
    run must stay close to the deterministic reference.
    """
    from repro.graphs.generators import road_network
    from repro.mst.llp_boruvka import llp_boruvka
    from repro.runtime.simulated import SimulatedBackend
    from repro.runtime.threads import ThreadBackend

    g = road_network(8, 8, seed=9)
    sim = SimulatedBackend(4)
    llp_boruvka(g, sim)
    model = sim.cost_model
    reference = model.modelled_time(sim.trace, 4)
    with ThreadBackend(4) as tb:
        llp_boruvka(g, tb)
        threaded = model.modelled_time(tb.trace, 4)
    assert threaded == pytest.approx(reference, rel=0.25)
