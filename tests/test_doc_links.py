"""The docs link checker: the repo's own docs pass, broken links fail."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
TOOL = REPO / "tools" / "check_doc_links.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, args)],
        capture_output=True,
        text=True,
    )


def test_repo_docs_have_no_broken_links():
    proc = _run()  # defaults: docs/ + README.md
    assert proc.returncode == 0, proc.stderr


def test_index_is_reachable_from_readme():
    assert "docs/index.md" in (REPO / "README.md").read_text()
    index = REPO / "docs" / "index.md"
    linked = set()
    import re

    for m in re.finditer(r"\]\(([^)#\s]+)", index.read_text()):
        if not m.group(1).startswith(("http://", "https://")):
            linked.add((index.parent / m.group(1)).resolve().name)
    for doc in (REPO / "docs").glob("*.md"):
        if doc.name == "index.md":
            continue
        assert doc.name in linked, f"docs/index.md does not mention {doc.name}"


def test_broken_file_link_detected(tmp_path):
    (tmp_path / "a.md").write_text("see [gone](missing.md)\n")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "broken link" in proc.stderr and "missing.md" in proc.stderr


def test_broken_anchor_detected(tmp_path):
    (tmp_path / "a.md").write_text("# Real Heading\n\n[ok](#real-heading)\n")
    (tmp_path / "b.md").write_text("[bad](a.md#no-such-section)\n")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "missing anchor" in proc.stderr
    assert "a.md#real-heading" not in proc.stderr


def test_external_and_code_block_links_ignored(tmp_path):
    (tmp_path / "a.md").write_text(
        "[out](https://example.com/x.md)\n"
        "```python\n# [fake](nowhere.md) inside a fence\n```\n"
        "and `[inline](also-nowhere.md)` code\n"
    )
    proc = _run(tmp_path)
    assert proc.returncode == 0, proc.stderr


def test_non_markdown_argument_is_usage_error(tmp_path):
    (tmp_path / "notes.txt").write_text("hi")
    assert _run(tmp_path / "notes.txt").returncode == 2


def test_index_names_every_subsystem():
    """The checker's own rule, asserted directly against the source tree."""
    sys.path.insert(0, str(REPO / "tools"))
    import check_doc_links

    assert check_doc_links.check_subsystem_index() == []


def test_missing_subsystem_detected(tmp_path):
    sys.path.insert(0, str(REPO / "tools"))
    import check_doc_links

    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "index.md").write_text("covers `alpha` only\n")
    for name in ("alpha", "beta"):
        pkg = tmp_path / "src" / "repro" / name
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
    problems = check_doc_links.check_subsystem_index(tmp_path)
    assert len(problems) == 1
    assert "repro.beta" in problems[0]


def test_default_run_reports_uncovered_subsystem_in_output():
    """The CI run prints the coverage claim, not just link health."""
    proc = _run()
    assert proc.returncode == 0, proc.stderr
    assert "covers every subsystem" in proc.stdout
