"""The docs link checker: the repo's own docs pass, broken links fail."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
TOOL = REPO / "tools" / "check_doc_links.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, args)],
        capture_output=True,
        text=True,
    )


def test_repo_docs_have_no_broken_links():
    proc = _run()  # defaults: docs/ + README.md
    assert proc.returncode == 0, proc.stderr


def test_index_is_reachable_from_readme():
    assert "docs/index.md" in (REPO / "README.md").read_text()
    index = REPO / "docs" / "index.md"
    linked = set()
    import re

    for m in re.finditer(r"\]\(([^)#\s]+)", index.read_text()):
        if not m.group(1).startswith(("http://", "https://")):
            linked.add((index.parent / m.group(1)).resolve().name)
    for doc in (REPO / "docs").glob("*.md"):
        if doc.name == "index.md":
            continue
        assert doc.name in linked, f"docs/index.md does not mention {doc.name}"


def test_broken_file_link_detected(tmp_path):
    (tmp_path / "a.md").write_text("see [gone](missing.md)\n")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "broken link" in proc.stderr and "missing.md" in proc.stderr


def test_broken_anchor_detected(tmp_path):
    (tmp_path / "a.md").write_text("# Real Heading\n\n[ok](#real-heading)\n")
    (tmp_path / "b.md").write_text("[bad](a.md#no-such-section)\n")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "missing anchor" in proc.stderr
    assert "a.md#real-heading" not in proc.stderr


def test_external_and_code_block_links_ignored(tmp_path):
    (tmp_path / "a.md").write_text(
        "[out](https://example.com/x.md)\n"
        "```python\n# [fake](nowhere.md) inside a fence\n```\n"
        "and `[inline](also-nowhere.md)` code\n"
    )
    proc = _run(tmp_path)
    assert proc.returncode == 0, proc.stderr


def test_non_markdown_argument_is_usage_error(tmp_path):
    (tmp_path / "notes.txt").write_text("hi")
    assert _run(tmp_path / "notes.txt").returncode == 2
