"""The numba gate: env toggles, clean fallback, and kernel equivalence.

numba is optional (and absent on the reference CI image); the contract
tested unconditionally is that the gate answers honestly, the kernels
keep working with the gate in every position, and the autotune cache is
invalidated when the gate flips.  Bit-exactness of the jitted kernels
themselves is asserted only where numba is installed.
"""

import numpy as np
import pytest

from repro.kernels import HAS_NUMBA, jit_enabled, jit_status, pointer_jump
from repro.kernels.jit import (
    active_jit_minimum_edge,
    active_jit_pointer_sweep,
)
from repro.kernels.segments import minimum_edge_per_vertex


def test_gate_falsy_env_disables(monkeypatch):
    for raw in ("0", "off", "false", "no", " OFF "):
        monkeypatch.setenv("REPRO_JIT", raw)
        assert not jit_enabled()
        assert active_jit_minimum_edge() is None
        assert active_jit_pointer_sweep() is None


def test_gate_needs_numba(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "1")
    assert jit_enabled() == HAS_NUMBA
    monkeypatch.delenv("REPRO_JIT", raising=False)
    assert jit_enabled() == HAS_NUMBA


def test_status_reports_gate(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "off")
    status = jit_status()
    assert status == {
        "numba_available": HAS_NUMBA, "enabled": False, "env": "off",
    }


def test_kernels_work_with_gate_forced_open(monkeypatch):
    """REPRO_JIT=1 without numba must fall back, not crash."""
    monkeypatch.setenv("REPRO_JIT", "1")
    edge_u = np.array([0, 1, 2, 0], dtype=np.int64)
    edge_v = np.array([1, 2, 3, 3], dtype=np.int64)
    keys = np.array([5, 1, 7, 2], dtype=np.int64)
    eids = np.arange(4, dtype=np.int64)
    to, eid, best = minimum_edge_per_vertex(4, edge_u, edge_v, keys, eids)
    assert eid.tolist() == [3, 1, 1, 3]
    G = np.array([1, 2, 2, 0], dtype=np.int64)
    roots, sweeps, changes = pointer_jump(G)
    assert roots.tolist() == [2, 2, 2, 2]


def test_autotune_cache_invalidated_on_gate_flip(tmp_path, monkeypatch):
    """A calibration measured under one kernel backend must not leak."""
    from repro.mst.autotune import (
        DEFAULT_CROSSOVERS,
        invalidate_cache,
        load_crossovers,
    )

    path = tmp_path / "autotune.json"
    # A persisted calibration stamped as jit-measured ...
    path.write_text(
        '{"_jit": true, "prim": {"min_edges": 7, "min_avg_degree": 1.0}}'
    )
    monkeypatch.setenv("REPRO_JIT", "0")  # ... read under the numpy backend
    invalidate_cache()
    try:
        table = load_crossovers(path)
        assert table["prim"] == DEFAULT_CROSSOVERS["prim"]  # file discarded
        # Matching stamp: the entry is honoured.
        path.write_text(
            '{"_jit": false, "prim": {"min_edges": 7, "min_avg_degree": 1.0}}'
        )
        invalidate_cache()
        table = load_crossovers(path)
        assert table["prim"].min_edges == 7
    finally:
        invalidate_cache()


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_jit_kernels_bit_exact():  # pragma: no cover - needs numba
    from repro.kernels.jit import jit_minimum_edge_per_vertex, jit_pointer_sweep

    rng = np.random.default_rng(0)
    m, n = 500, 60
    edge_u = rng.integers(0, n, m).astype(np.int64)
    edge_v = (edge_u + 1 + rng.integers(0, n - 1, m)).astype(np.int64) % n
    keys = rng.integers(0, 40, m).astype(np.int64)  # duplicates on purpose
    eids = np.arange(m, dtype=np.int64)
    ref = minimum_edge_per_vertex(n, edge_u, edge_v, keys, eids)
    got = jit_minimum_edge_per_vertex(n, edge_u, edge_v, keys, eids)
    for a, b in zip(ref, got):
        assert np.array_equal(a, b)
    G = rng.integers(0, n, n).astype(np.int64)
    G[rng.integers(0, n, 5)] = np.arange(n)[rng.integers(0, n, 5)]
    G[0] = 0
    GG, moved = jit_pointer_sweep(G)
    assert np.array_equal(GG, G[G])
    assert moved == int(np.count_nonzero(G[G] != G))
