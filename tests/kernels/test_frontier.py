"""Frontier-sparse kernels: batched CSR slicing and scatter-min relaxation.

The reference semantics are the per-vertex loop the kernels replace:
relaxing a frontier batch must produce exactly the state of relaxing its
vertices one at a time (unique edge ranks make the winner per target
unambiguous, so batch composition cannot matter).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import frontier_edges, frontier_relax
from repro.runtime.sequential import SequentialBackend

INT64_MAX = np.iinfo(np.int64).max


def _relax_reference(g, frontier, d, fixed, parent, parent_edge):
    """Per-vertex, per-edge Python relaxation of the whole frontier."""
    improved = set()
    for j in frontier.tolist():
        for pos in range(int(g.indptr[j]), int(g.indptr[j + 1])):
            t = int(g.indices[pos])
            k = int(g.half_ranks[pos])
            if not fixed[t] and k < d[t]:
                d[t] = k
                parent[t] = j
                parent_edge[t] = int(g.edge_ids[pos])
                improved.add(t)
    return improved


def _fresh_state(g):
    d = np.full(g.n_vertices, INT64_MAX, dtype=np.int64)
    fixed = np.zeros(g.n_vertices, dtype=bool)
    parent = np.full(g.n_vertices, -1, dtype=np.int64)
    parent_edge = np.full(g.n_vertices, -1, dtype=np.int64)
    return d, fixed, parent, parent_edge


def test_frontier_edges_matches_per_vertex_slices(any_graph):
    g = any_graph
    rng = np.random.default_rng(0)
    for size in (0, 1, max(1, g.n_vertices // 2), g.n_vertices):
        frontier = np.sort(rng.choice(g.n_vertices, size=size, replace=False))
        pos, src = frontier_edges(g.indptr, frontier.astype(np.int64))
        want_pos, want_src = [], []
        for j in frontier.tolist():
            for p in range(int(g.indptr[j]), int(g.indptr[j + 1])):
                want_pos.append(p)
                want_src.append(j)
        assert pos.tolist() == want_pos
        assert src.tolist() == want_src


def test_frontier_relax_matches_loop_reference(any_graph):
    g = any_graph
    if g.n_vertices == 0:
        return
    rng = np.random.default_rng(1)
    frontier = np.sort(
        rng.choice(g.n_vertices, size=max(1, g.n_vertices // 3), replace=False)
    ).astype(np.int64)

    d_ref, fixed, p_ref, pe_ref = _fresh_state(g)
    # Mark the frontier itself (and a few extras) fixed, as Prim would.
    fixed[frontier] = True
    if g.n_vertices > 4:
        fixed[::5] = True
    d_vec, _, p_vec, pe_vec = _fresh_state(g)

    want_improved = _relax_reference(g, frontier, d_ref, fixed, p_ref, pe_ref)
    got_v, got_k = frontier_relax(
        frontier, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d_vec, fixed, p_vec, pe_vec,
    )

    assert np.array_equal(d_vec, d_ref)
    assert np.array_equal(p_vec, p_ref)
    assert np.array_equal(pe_vec, pe_ref)
    assert set(got_v.tolist()) == want_improved
    assert np.array_equal(got_k, d_vec[got_v])
    # Each improved vertex is reported exactly once.
    assert len(set(got_v.tolist())) == got_v.size


def test_frontier_relax_second_pass_is_a_noop(fig1_graph):
    """Re-relaxing the same frontier cannot improve anything further."""
    g = fig1_graph
    frontier = np.array([0, 2], dtype=np.int64)
    d, fixed, parent, parent_edge = _fresh_state(g)
    fixed[frontier] = True
    first, _ = frontier_relax(
        frontier, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d, fixed, parent, parent_edge,
    )
    assert first.size > 0
    again, _ = frontier_relax(
        frontier, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d, fixed, parent, parent_edge,
    )
    assert again.size == 0


def test_frontier_relax_empty_frontier_and_all_fixed(fig1_graph):
    g = fig1_graph
    d, fixed, parent, parent_edge = _fresh_state(g)
    got_v, got_k = frontier_relax(
        np.empty(0, dtype=np.int64), g.indptr, g.indices, g.half_ranks,
        g.edge_ids, d, fixed, parent, parent_edge,
    )
    assert got_v.size == got_k.size == 0
    fixed[:] = True
    got_v, _ = frontier_relax(
        np.arange(g.n_vertices, dtype=np.int64), g.indptr, g.indices,
        g.half_ranks, g.edge_ids, d, fixed, parent, parent_edge,
    )
    assert got_v.size == 0
    assert np.all(parent == -1)


def test_frontier_relax_charges_sum_of_degrees(fig1_graph):
    g = fig1_graph
    backend = SequentialBackend()
    frontier = np.array([1, 3], dtype=np.int64)
    d, fixed, parent, parent_edge = _fresh_state(g)
    fixed[frontier] = True
    frontier_relax(
        frontier, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d, fixed, parent, parent_edge, backend=backend,
    )
    degrees = int((g.indptr[frontier + 1] - g.indptr[frontier]).sum())
    assert backend.trace.total_work == degrees
