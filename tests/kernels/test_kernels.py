"""Unit tests for the vectorized array kernels (repro.kernels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.kernels import (
    contract_edges,
    minimum_edge_per_vertex,
    pointer_jump,
    relax_neighbors,
    segmented_argmin,
    segmented_min,
)
from repro.runtime.sequential import SequentialBackend

INT64_MAX = np.iinfo(np.int64).max


# ----------------------------------------------------------------------
# segmented_min
# ----------------------------------------------------------------------
def test_segmented_min_basic_and_empty_segments():
    values = np.array([5, 3, 9, 1, 7], dtype=np.int64)
    indptr = np.array([0, 2, 2, 4, 5], dtype=np.int64)  # segment 1 empty
    out = segmented_min(values, indptr, empty=-99)
    assert out.tolist() == [3, -99, 1, 7]


def test_segmented_min_zero_values_and_zero_segments():
    assert segmented_min(np.empty(0, np.int64), np.zeros(4, np.int64)).tolist() == [
        INT64_MAX
    ] * 3
    assert segmented_min(np.empty(0, np.int64), np.zeros(1, np.int64)).size == 0


def test_segmented_min_matches_python_reference():
    rng = np.random.default_rng(0)
    for _ in range(10):
        counts = rng.integers(0, 5, size=30)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        values = rng.integers(0, 1000, size=int(indptr[-1])).astype(np.int64)
        out = segmented_min(values, indptr)
        for i in range(30):
            seg = values[indptr[i] : indptr[i + 1]]
            assert out[i] == (seg.min() if seg.size else INT64_MAX)


def test_segmented_min_charges_backend():
    backend = SequentialBackend()
    values = np.arange(10, dtype=np.int64)
    indptr = np.array([0, 5, 10], dtype=np.int64)
    segmented_min(values, indptr, backend=backend)
    assert backend.trace.total_work == 10


# ----------------------------------------------------------------------
# segmented_argmin
# ----------------------------------------------------------------------
def test_segmented_argmin_unsorted_segments_and_stable_ties():
    seg = np.array([2, 0, 2, 0, 1], dtype=np.int64)
    keys = np.array([4, 7, 1, 7, 5], dtype=np.int64)
    out = segmented_argmin(seg, keys, 4)
    assert out[0] == 1  # tie between positions 1 and 3 -> earliest
    assert out[1] == 4
    assert out[2] == 2
    assert out[3] == -1  # empty segment


def test_segmented_argmin_empty():
    assert segmented_argmin(np.empty(0, np.int64), np.empty(0, np.int64), 3).tolist() == [
        -1,
        -1,
        -1,
    ]


def test_segmented_argmin_matches_python_reference():
    rng = np.random.default_rng(1)
    for _ in range(10):
        n_seg = 12
        m = int(rng.integers(0, 60))
        seg = rng.integers(0, n_seg, size=m).astype(np.int64)
        keys = rng.integers(0, 8, size=m).astype(np.int64)  # many ties
        out = segmented_argmin(seg, keys, n_seg)
        for s in range(n_seg):
            members = np.flatnonzero(seg == s)
            if members.size == 0:
                assert out[s] == -1
            else:
                best = members[np.argmin(keys[members])]  # argmin is stable
                assert out[s] == best


# ----------------------------------------------------------------------
# minimum_edge_per_vertex
# ----------------------------------------------------------------------
def test_minimum_edge_per_vertex_small():
    # Triangle 0-1-2 plus isolated vertex 3; unique keys.
    u = np.array([0, 1, 0], dtype=np.int64)
    v = np.array([1, 2, 2], dtype=np.int64)
    keys = np.array([5, 1, 3], dtype=np.int64)
    eids = np.array([10, 11, 12], dtype=np.int64)
    to, eid, best = minimum_edge_per_vertex(4, u, v, keys, eids)
    assert to.tolist() == [2, 2, 1, -1]
    assert eid.tolist() == [12, 11, 11, -1]
    assert best.tolist() == [3, 1, 1, INT64_MAX]


def test_minimum_edge_per_vertex_empty():
    to, eid, best = minimum_edge_per_vertex(
        3, np.empty(0, np.int64), np.empty(0, np.int64),
        np.empty(0, np.int64), np.empty(0, np.int64),
    )
    assert to.tolist() == [-1, -1, -1]
    assert eid.tolist() == [-1, -1, -1]
    assert (best == INT64_MAX).all()


def test_minimum_edge_per_vertex_matches_graph_oracle(any_graph):
    g = any_graph
    eids = np.arange(g.n_edges, dtype=np.int64)
    to, eid, best = minimum_edge_per_vertex(
        g.n_vertices, g.edge_u, g.edge_v, g.ranks, eids
    )
    assert np.array_equal(eid, g.min_edge_per_vertex)
    has = eid >= 0
    assert np.array_equal(best[has], g.min_rank_per_vertex[has])


# ----------------------------------------------------------------------
# pointer_jump
# ----------------------------------------------------------------------
def test_pointer_jump_chain_converges_to_root():
    # 0 <- 1 <- 2 <- ... <- 9
    G = np.arange(-1, 9, dtype=np.int64)
    G[0] = 0
    roots, sweeps, changes = pointer_jump(G)
    assert (roots == 0).all()
    assert sweeps == len(changes)
    assert sweeps <= int(np.log2(10)) + 2
    assert changes == sorted(changes, reverse=True) or len(changes) <= 1


def test_pointer_jump_identity_and_empty():
    G = np.arange(5, dtype=np.int64)
    roots, sweeps, changes = pointer_jump(G)
    assert np.array_equal(roots, G)
    assert sweeps == 0 and changes == []
    roots, sweeps, _ = pointer_jump(np.empty(0, np.int64))
    assert roots.size == 0 and sweeps == 0


def test_pointer_jump_does_not_mutate_input():
    G = np.array([1, 2, 2], dtype=np.int64)
    G_before = G.copy()
    pointer_jump(G)
    assert np.array_equal(G, G_before)


def test_pointer_jump_detects_long_cycle():
    G = np.array([1, 2, 0, 2], dtype=np.int64)  # 3-cycle never converges
    with pytest.raises(AlgorithmError):
        pointer_jump(G)


def test_pointer_jump_collapses_two_cycle_to_two_roots():
    # Squaring resolves an unbroken mutual pair into two self-roots —
    # convergent but semantically a split component.  This is why the
    # Boruvka callers break mutual pairs *before* jumping.
    roots, _, _ = pointer_jump(np.array([1, 0], dtype=np.int64))
    assert roots.tolist() == [0, 1]


def test_pointer_jump_charges_per_sweep():
    G = np.array([0, 0, 1, 2], dtype=np.int64)
    backend = SequentialBackend()
    _, sweeps, _ = pointer_jump(G, backend=backend)
    # One charged round per sweep plus the final fixed-point check sweep.
    assert len(backend.trace.rounds) == sweeps + 1
    assert backend.trace.total_work == (sweeps + 1) * G.size


# ----------------------------------------------------------------------
# contract_edges
# ----------------------------------------------------------------------
def test_contract_edges_drops_internal_and_renumbers():
    # Components {0,1} -> root 0 and {2,3} -> root 2.
    labels = np.array([0, 0, 2, 2], dtype=np.int64)
    u = np.array([0, 1, 0, 2], dtype=np.int64)
    v = np.array([1, 2, 3, 3], dtype=np.int64)
    keys = np.array([3, 1, 2, 0], dtype=np.int64)
    eids = np.array([100, 101, 102, 103], dtype=np.int64)
    u2, v2, k2, e2, n_new = contract_edges(u, v, keys, eids, labels, compact=True)
    assert n_new == 2
    # Edges 0 (internal) and 3 (internal) die; 1 and 2 become the
    # super-pair (0, 1) and only the lighter (key 1, eid 101) survives.
    assert u2.tolist() == [0] and v2.tolist() == [1]
    assert k2.tolist() == [1] and e2.tolist() == [101]


def test_contract_edges_keeps_parallel_edges_without_compact():
    labels = np.array([0, 0, 2, 2], dtype=np.int64)
    u = np.array([1, 0], dtype=np.int64)
    v = np.array([2, 3], dtype=np.int64)
    keys = np.array([1, 2], dtype=np.int64)
    eids = np.array([7, 8], dtype=np.int64)
    u2, v2, k2, e2, n_new = contract_edges(u, v, keys, eids, labels, compact=False)
    assert n_new == 2
    assert u2.size == 2  # both parallel super-edges survive
    assert sorted(e2.tolist()) == [7, 8]


def test_contract_edges_all_internal():
    labels = np.zeros(3, dtype=np.int64)
    u = np.array([0, 1], dtype=np.int64)
    v = np.array([1, 2], dtype=np.int64)
    keys = np.array([0, 1], dtype=np.int64)
    eids = np.array([0, 1], dtype=np.int64)
    u2, v2, k2, e2, n_new = contract_edges(u, v, keys, eids, labels)
    assert n_new == 0
    assert u2.size == v2.size == k2.size == e2.size == 0


def test_contract_edges_empty_input():
    empty = np.empty(0, np.int64)
    u2, v2, k2, e2, n_new = contract_edges(
        empty, empty, empty, empty, np.arange(4, dtype=np.int64)
    )
    assert n_new == 0 and u2.size == 0


# ----------------------------------------------------------------------
# relax_neighbors
# ----------------------------------------------------------------------
def test_relax_neighbors_updates_only_improving_unfixed(fig1_graph):
    g = fig1_graph
    n = g.n_vertices
    d = np.full(n, 1 << 60, dtype=np.int64)
    fixed = np.zeros(n, dtype=bool)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    fixed[0] = True
    improved, keys = relax_neighbors(
        0, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d, fixed, parent, parent_edge,
    )
    nbrs = set(g.neighbors(0).tolist())
    assert set(improved.tolist()) == nbrs
    assert (parent[improved] == 0).all()
    # Second relaxation from the same vertex improves nothing.
    improved2, _ = relax_neighbors(
        0, g.indptr, g.indices, g.half_ranks, g.edge_ids,
        d, fixed, parent, parent_edge,
    )
    assert improved2.size == 0


def test_relax_neighbors_isolated_vertex():
    indptr = np.array([0, 0], dtype=np.int64)
    out, keys = relax_neighbors(
        0, indptr, np.empty(0, np.int64), np.empty(0, np.int64),
        np.empty(0, np.int64), np.empty(1, np.int64),
        np.zeros(1, bool), np.empty(1, np.int64), np.empty(1, np.int64),
    )
    assert out.size == 0 and keys.size == 0
