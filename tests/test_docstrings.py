"""Quality gate: every public module, class, and function is documented."""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_has_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_") or not inspect.isfunction(meth):
                            continue
                        if not (inspect.getdoc(meth) or "").strip():
                            missing.append(f"{module.__name__}.{name}.{mname}")
    assert not missing, f"undocumented public callables: {sorted(missing)}"


def test_public_all_lists_resolve():
    for module in _walk_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"
