"""Algorithm 4 verbatim (PrimLLP): the generic engine must find the MST."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.builder import from_edges
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    random_connected_graph,
    star_graph,
)
from repro.llp.engine_parallel import solve_parallel
from repro.llp.engine_seq import solve_sequential
from repro.llp.problems.mst_prim import PrimLLP, mst_via_llp_engine
from repro.mst.kruskal import kruskal
from repro.mst.llp_prim import llp_prim
from repro.mst.verify import verify_minimum

from tests.conftest import FIG1_EDGES, FIG1_MST_WEIGHTS


def test_fig1_lattice_dimensions(fig1_graph):
    """Section V-A: rooted at a, the lattice is 3 x 4 x 3 x 2 = 72 states."""
    problem = PrimLLP(fig1_graph, root=0)
    bottom, top = problem.bottom(), problem.top()
    sizes = []
    for v in range(1, 5):
        chain = problem._chains[v]
        sizes.append(len(chain))
        assert bottom[v] == chain[0]
        assert top[v] == chain[-1]
    assert sorted(sizes) == [2, 3, 3, 4]
    assert int(np.prod(sizes)) == 72


def test_fig1_bottom_is_min_edges(fig1_graph):
    """Initial proposals: G[b]=3, G[c]=3, G[d]=2, G[e]=2 (by weight)."""
    problem = PrimLLP(fig1_graph, root=0)
    bottom = problem.bottom()
    w_of = lambda v: fig1_graph.edge_weight(
        int(fig1_graph.edge_by_rank[int(bottom[v])])
    )
    assert w_of(1) == 3.0
    assert w_of(2) == 3.0
    assert w_of(3) == 2.0
    assert w_of(4) == 2.0


def test_fig1_engine_finds_mst(fig1_graph):
    result = mst_via_llp_engine(fig1_graph, root=0)
    weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
    assert weights == FIG1_MST_WEIGHTS
    verify_minimum(fig1_graph, result)


@pytest.mark.parametrize(
    "make",
    [
        lambda: grid_graph(4, 4, seed=1),
        lambda: cycle_graph(9, seed=2),
        lambda: star_graph(8, seed=3),
        lambda: random_connected_graph(20, 15, seed=4),
    ],
    ids=["grid", "cycle", "star", "random"],
)
def test_engine_solution_matches_oracle(make):
    g = make()
    result = mst_via_llp_engine(g)
    assert result.edge_set() == kruskal(g).edge_set()
    verify_minimum(g, result)


def test_sequential_and_parallel_engines_agree(fig1_graph):
    a = solve_sequential(PrimLLP(fig1_graph, 0))
    b = solve_parallel(PrimLLP(fig1_graph, 0))
    assert np.allclose(a.state, b.state)


def test_specification_matches_derived_algorithm():
    g = random_connected_graph(18, 12, seed=7)
    spec = mst_via_llp_engine(g, root=0)
    derived = llp_prim(g, root=0)
    assert spec.edge_set() == derived.edge_set()


def test_each_vertex_advances_at_most_once(fig1_graph):
    problem = PrimLLP(fig1_graph, 0)
    result = solve_parallel(problem, record_history=True)
    bottom = problem.bottom()
    changed = (result.state != bottom).sum()
    assert result.advances == changed  # one advance per moved vertex


def test_monotone_history(fig1_graph):
    result = solve_parallel(PrimLLP(fig1_graph, 0), record_history=True)
    for a, b in zip(result.history, result.history[1:]):
        assert (b >= a).all()


def test_fixed_set_semantics(fig1_graph):
    problem = PrimLLP(fig1_graph, 0)
    fixed = problem.fixed_set(problem.bottom())
    # bottom: d,e propose edge (d,e): a 2-cycle -> non-fixed;
    # b,c propose (b,c): 2-cycle -> non-fixed; only the root is fixed.
    assert fixed.tolist() == [True, False, False, False, False]


def test_rejects_disconnected_and_bad_root():
    g = from_edges([(0, 1, 1.0)], n_vertices=3)
    with pytest.raises(GraphError):
        mst_via_llp_engine(g)
    with pytest.raises(GraphError):
        PrimLLP(grid_graph(2, 2), root=9)


def test_alternative_root(fig1_graph):
    result = mst_via_llp_engine(fig1_graph, root=4)
    weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
    assert weights == FIG1_MST_WEIGHTS
