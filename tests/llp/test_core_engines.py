"""LLP protocol and the sequential/parallel engines.

Uses a tiny synthetic problem with a known least fixpoint: each index j
must reach at least ``target[j]``, and additionally ``G[0] >= G[1]``
(a cross-index constraint that keeps the predicate lattice-linear but
non-trivial).
"""

import numpy as np
import pytest

from repro.errors import InfeasibleError, LLPError
from repro.llp.core import LLPProblem, check_lattice_linearity
from repro.llp.engine_parallel import solve_parallel
from repro.llp.engine_seq import solve_sequential
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threads import ThreadBackend


class ThresholdProblem(LLPProblem):
    """G[j] must reach target[j]; index 0 must also cover G[1]."""

    def __init__(self, target, top=None):
        self.target = np.asarray(target, dtype=np.float64)
        self._top = top

    @property
    def n(self):
        return self.target.size

    def bottom(self):
        return np.zeros(self.n)

    def top(self):
        return None if self._top is None else np.asarray(self._top, dtype=np.float64)

    def forbidden(self, G, j):
        if G[j] < self.target[j]:
            return True
        return j == 0 and G[0] < G[1]

    def advance(self, G, j):
        if G[j] < self.target[j]:
            return float(max(self.target[j], G[1] if j == 0 else 0.0))
        return float(G[1])


def expected_fixpoint(target):
    out = np.asarray(target, dtype=np.float64).copy()
    out[0] = max(out[0], out[1])
    return out


@pytest.mark.parametrize("solver", [solve_sequential, solve_parallel])
def test_engines_reach_least_fixpoint(solver):
    problem = ThresholdProblem([1.0, 5.0, 2.0])
    result = solver(problem)
    assert result.feasible
    assert np.allclose(result.state, [5.0, 5.0, 2.0])


def test_engines_agree_on_many_instances():
    rng = np.random.default_rng(1)
    for _ in range(10):
        target = rng.uniform(0, 10, size=6)
        a = solve_sequential(ThresholdProblem(target))
        b = solve_parallel(ThresholdProblem(target))
        assert np.allclose(a.state, b.state)
        assert np.allclose(a.state, expected_fixpoint(target))


def test_sequential_order_independence():
    target = [3.0, 9.0, 1.0, 4.0]
    fwd = solve_sequential(ThresholdProblem(target))
    rev = solve_sequential(
        ThresholdProblem(target), order=lambda idx: sorted(idx, reverse=True)
    )
    assert np.allclose(fwd.state, rev.state)


def test_parallel_engine_on_backends():
    target = [2.0, 7.0, 3.0]
    sim = solve_parallel(ThresholdProblem(target), SimulatedBackend(4))
    with ThreadBackend(3) as tb:
        thr = solve_parallel(ThresholdProblem(target), tb)
    assert np.allclose(sim.state, expected_fixpoint(target))
    assert np.allclose(thr.state, expected_fixpoint(target))


def test_already_feasible_returns_bottom():
    result = solve_parallel(ThresholdProblem([0.0, 0.0]))
    assert result.rounds == 0
    assert result.advances == 0
    assert np.allclose(result.state, 0.0)


def test_infeasible_when_top_exceeded():
    problem = ThresholdProblem([5.0, 1.0], top=[2.0, 2.0])
    with pytest.raises(InfeasibleError):
        solve_sequential(problem)
    with pytest.raises(InfeasibleError):
        solve_parallel(ThresholdProblem([5.0, 1.0], top=[2.0, 2.0]))


def test_history_recording():
    result = solve_parallel(ThresholdProblem([1.0, 2.0, 3.0]), record_history=True)
    assert len(result.history) == result.rounds + 1
    # states grow monotonically in the lattice
    for a, b in zip(result.history, result.history[1:]):
        assert (b >= a).all()


class BrokenAdvance(ThresholdProblem):
    def advance(self, G, j):
        return float(G[j])  # not strictly increasing


def test_non_increasing_advance_detected():
    with pytest.raises(LLPError):
        solve_sequential(BrokenAdvance([1.0, 1.0]))
    with pytest.raises(LLPError):
        solve_parallel(BrokenAdvance([1.0, 1.0]))


class NeverFeasible(LLPProblem):
    @property
    def n(self):
        return 1

    def bottom(self):
        return np.zeros(1)

    def forbidden(self, G, j):
        return True

    def advance(self, G, j):
        return float(G[j]) + 1.0


def test_round_limit_guards_divergence():
    with pytest.raises(LLPError):
        solve_sequential(NeverFeasible(), max_advances=50)
    with pytest.raises(LLPError):
        solve_parallel(NeverFeasible(), max_rounds=50)


def test_wrong_bottom_shape_rejected():
    class BadShape(ThresholdProblem):
        def bottom(self):
            return np.zeros(self.n + 2)

    with pytest.raises(LLPError):
        solve_sequential(BadShape([1.0]))
    with pytest.raises(LLPError):
        solve_parallel(BadShape([1.0]))


def test_check_lattice_linearity_accepts_valid():
    problem = ThresholdProblem([2.0, 4.0])
    samples = [np.array([0.0, 0.0]), np.array([1.0, 4.0]), np.array([4.0, 4.0])]
    check_lattice_linearity(problem, samples)


def test_check_lattice_linearity_flags_broken_advance():
    problem = BrokenAdvance([2.0, 2.0])
    with pytest.raises(LLPError):
        check_lattice_linearity(problem, [np.array([0.0, 0.0])])


def test_is_feasible_default():
    problem = ThresholdProblem([1.0, 1.0])
    assert not problem.is_feasible(np.array([0.0, 0.0]))
    assert problem.is_feasible(np.array([1.0, 1.0]))
