"""Priority engine (Dijkstra-as-schedule) and the job-scheduling LLP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, LLPError
from repro.graphs.generators import random_connected_graph
from repro.llp.engine_parallel import solve_parallel
from repro.llp.engine_priority import solve_priority
from repro.llp.engine_seq import solve_sequential
from repro.llp.problems.scheduling import JobSchedulingLLP, earliest_schedule_llp
from repro.llp.problems.shortest_path import ShortestPathLLP


# ----------------------------------------------------------- priority engine
def test_priority_engine_matches_parallel_on_shortest_path():
    g = random_connected_graph(50, 80, seed=1)
    a = solve_priority(ShortestPathLLP(g, 0))
    b = solve_parallel(ShortestPathLLP(g, 0))
    assert np.allclose(a.state, b.state)


def test_priority_schedule_advance_counts_bounded():
    """Every non-source vertex advances at least once, and the smallest-
    advance-first schedule stays within a small multiple of that floor
    (the bottom-up lattice admits intermediate justified values, so
    exactly n-1 advances is not attainable in general)."""
    g = random_connected_graph(40, 70, seed=2)
    result = solve_priority(ShortestPathLLP(g, 0))
    floor = g.n_vertices - 1
    assert floor <= result.advances <= 6 * floor


def test_priority_never_more_advances_than_sequential():
    for seed in range(4):
        g = random_connected_graph(30, 60, seed=seed)
        pri = solve_priority(ShortestPathLLP(g, 0))
        seq = solve_sequential(ShortestPathLLP(g, 0))
        assert pri.advances <= seq.advances


def test_priority_engine_infeasible_and_divergence_guards():
    class Diverge(JobSchedulingLLP):
        def top(self):
            return np.zeros(self.n)

    problem = Diverge([1.0, 1.0], [(0, 1)])
    with pytest.raises(InfeasibleError):
        solve_priority(problem)


# ------------------------------------------------------------ job scheduling
def test_chain_schedule():
    starts, makespan = earliest_schedule_llp(
        [3.0, 2.0, 4.0], [(0, 1), (1, 2)]
    )
    assert starts.tolist() == [0.0, 3.0, 5.0]
    assert makespan == 9.0


def test_diamond_takes_longest_branch():
    #   0 -> 1 -> 3,  0 -> 2 -> 3, durations favour the 2-branch
    starts, makespan = earliest_schedule_llp(
        [1.0, 2.0, 5.0, 1.0], [(0, 1), (0, 2), (1, 3), (2, 3)]
    )
    assert starts[3] == 6.0  # via job 2
    assert makespan == 7.0


def test_release_times_respected():
    starts, _ = earliest_schedule_llp([1.0, 1.0], [(0, 1)], release=[0.0, 10.0])
    assert starts.tolist() == [0.0, 10.0]


def test_independent_jobs_start_immediately():
    starts, makespan = earliest_schedule_llp([4.0, 2.0, 7.0], [])
    assert starts.tolist() == [0.0, 0.0, 0.0]
    assert makespan == 7.0


def test_cycle_rejected():
    with pytest.raises(LLPError):
        JobSchedulingLLP([1.0, 1.0], [(0, 1), (1, 0)])
    with pytest.raises(LLPError):
        JobSchedulingLLP([1.0], [(0, 0)])


def test_validation():
    with pytest.raises(LLPError):
        JobSchedulingLLP([-1.0], [])
    with pytest.raises(LLPError):
        JobSchedulingLLP([1.0], [(0, 5)])
    with pytest.raises(LLPError):
        JobSchedulingLLP([1.0, 1.0], [], release=[0.0])


def test_all_three_engines_agree():
    problem_args = ([2.0, 3.0, 1.0, 4.0], [(0, 2), (1, 2), (2, 3)])
    a = solve_sequential(JobSchedulingLLP(*problem_args)).state
    b = solve_parallel(JobSchedulingLLP(*problem_args)).state
    c = solve_priority(JobSchedulingLLP(*problem_args)).state
    assert np.allclose(a, b)
    assert np.allclose(a, c)


def _dp_oracle(durations, preds_of):
    """Topological DP for earliest start times."""
    n = len(durations)
    import functools

    @functools.lru_cache(maxsize=None)
    def start(j):
        ps = preds_of[j]
        return max((start(i) + durations[i] for i in ps), default=0.0)

    return [start(j) for j in range(n)]


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_matches_dp_on_random_dags(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 15))
    durations = rng.integers(1, 9, size=n).astype(float)
    # random DAG: edges only from lower to higher index
    precs = []
    for b in range(1, n):
        for a in range(b):
            if rng.random() < 0.3:
                precs.append((a, b))
    starts, makespan = earliest_schedule_llp(durations, precs)
    preds_of = tuple(
        tuple(a for a, b in precs if b == j) for j in range(n)
    )
    oracle = _dp_oracle(tuple(durations), preds_of)
    assert np.allclose(starts, oracle)
    assert makespan == pytest.approx(max(o + d for o, d in zip(oracle, durations)))
