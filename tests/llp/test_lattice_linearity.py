"""Definition-2 spot checks for every ``llp/problems`` formulation.

Each LLP problem class is run to its fixpoint with the sequential engine
recording every intermediate state, then :func:`check_lattice_linearity`
replays the whole trajectory (bottom, every advance, the fixpoint):
``forbidden_indices`` must agree with ``forbidden``, every advance must
strictly increase its component, and no infeasible state may lack a
forbidden index.  The seventh module, :mod:`repro.llp.problems.bipartite`,
has no predicate of its own — it is the matching substrate the
market-clearing lattice advances on — so its contract (maximum matching,
minimal Hall violator) is checked directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import random_connected_graph
from repro.llp.core import check_lattice_linearity
from repro.llp.engine_seq import solve_sequential
from repro.llp.problems.bipartite import hall_violator, max_bipartite_matching
from repro.llp.problems.market_clearing import MarketClearingLLP
from repro.llp.problems.mst_prim import PrimLLP
from repro.llp.problems.pointer_jumping import PointerJumpingLLP
from repro.llp.problems.scheduling import JobSchedulingLLP
from repro.llp.problems.shortest_path import ShortestPathLLP
from repro.llp.problems.stable_marriage import StableMarriageLLP


def _trajectory(problem):
    """Bottom-to-fixpoint states of one sequential solve."""
    result = solve_sequential(problem, record_history=True)
    states = [problem.bottom(), *result.history]
    assert problem.is_feasible(states[-1])
    return states


def test_prim_llp_is_lattice_linear():
    g = random_connected_graph(18, 30, seed=0)
    problem = PrimLLP(g)
    check_lattice_linearity(problem, _trajectory(problem))


def test_shortest_path_llp_is_lattice_linear():
    g = random_connected_graph(16, 28, seed=1)
    problem = ShortestPathLLP(g, source=0)
    check_lattice_linearity(problem, _trajectory(problem))


def test_shortest_path_llp_nonzero_source():
    g = random_connected_graph(12, 20, seed=2)
    problem = ShortestPathLLP(g, source=5)
    check_lattice_linearity(problem, _trajectory(problem))


def test_pointer_jumping_llp_is_lattice_linear():
    # A three-level tree plus self-rooted vertices.
    parent = np.array([0, 0, 0, 1, 1, 2, 4, 6, 8], dtype=np.int64)
    problem = PointerJumpingLLP(parent)
    check_lattice_linearity(problem, _trajectory(problem))


def test_scheduling_llp_is_lattice_linear():
    problem = JobSchedulingLLP(
        durations=[3.0, 2.0, 4.0, 1.0, 2.0],
        precedences=[(0, 2), (1, 2), (2, 4), (3, 4)],
        release=[0.0, 1.0, 0.0, 5.0, 0.0],
    )
    check_lattice_linearity(problem, _trajectory(problem))


def test_stable_marriage_llp_is_lattice_linear():
    problem = StableMarriageLLP(
        men_prefs=[[0, 1, 2], [1, 0, 2], [0, 2, 1]],
        women_prefs=[[1, 0, 2], [0, 1, 2], [2, 1, 0]],
    )
    check_lattice_linearity(problem, _trajectory(problem))


def test_market_clearing_llp_is_lattice_linear():
    problem = MarketClearingLLP(
        np.array([[4, 1, 0], [3, 2, 1], [0, 3, 2]], dtype=np.int64)
    )
    check_lattice_linearity(problem, _trajectory(problem))


def test_off_trajectory_states_are_covered():
    # Definition 2 must hold off the solve path too: perturb trajectory
    # states downward-compatible mixes (meet of two recorded states stays
    # in the lattice for these max-based advances).
    g = random_connected_graph(10, 16, seed=4)
    problem = ShortestPathLLP(g, source=0)
    states = _trajectory(problem)
    mixes = [
        np.minimum(states[i], states[j])
        for i in range(0, len(states), 3)
        for j in range(0, len(states), 5)
    ]
    check_lattice_linearity(problem, mixes)


# ----------------------------------------------------------------------
# bipartite.py — the matching substrate (no LLP predicate of its own)
# ----------------------------------------------------------------------
def test_max_bipartite_matching_is_maximum():
    adj = [[0, 1], [0], [1, 2], [2]]
    ml, mr = max_bipartite_matching(adj, 3)
    matched = int((ml >= 0).sum())
    assert matched == 3  # Koenig bound for this instance
    for l, r in enumerate(ml):
        if r >= 0:
            assert mr[r] == l and r in adj[l]


def test_hall_violator_empty_when_perfect():
    assert hall_violator([[0], [1], [2]], 3) == []


def test_hall_violator_is_overdemanded():
    # Three buyers all demand only item 0: S = {0} has 3 > 1 demanders.
    adj = [[0], [0], [0]]
    s = hall_violator(adj, 2)
    assert s == [0]
    demanders = [l for l in range(len(adj)) if adj[l] and set(adj[l]) <= set(s)]
    assert len(demanders) > len(s)


def test_hall_violator_alternating_reachability():
    # Buyers 0,1 fight over item 0; buyer 2 safely holds item 1.  The
    # violator must include item 0 and exclude item 1.
    adj = [[0], [0], [1]]
    s = hall_violator(adj, 2)
    assert s == [0]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_graph_llp_trajectories(seed):
    # Random graphs widen the trajectory diversity beyond the fixtures.
    g = random_connected_graph(14, 24, seed=seed)
    for problem in (PrimLLP(g), ShortestPathLLP(g, source=0)):
        check_lattice_linearity(problem, _trajectory(problem))


def test_gnm_pointer_jumping_from_forest():
    rng = np.random.default_rng(7)
    n = 40
    parent = np.arange(n, dtype=np.int64)
    for v in range(1, n):
        parent[v] = rng.integers(0, v)  # ancestors have smaller ids: acyclic
    problem = PointerJumpingLLP(parent)
    check_lattice_linearity(problem, _trajectory(problem))
