"""LLP instantiations: shortest paths, stable marriage, market clearing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, LLPError
from repro.graphs.builder import from_edges
from repro.graphs.generators import grid_graph, random_connected_graph
from repro.llp.engine_parallel import solve_parallel
from repro.llp.engine_seq import solve_sequential
from repro.llp.problems.bipartite import hall_violator, max_bipartite_matching
from repro.llp.problems.market_clearing import MarketClearingLLP, market_clearing_llp
from repro.llp.problems.shortest_path import ShortestPathLLP, shortest_paths_llp
from repro.llp.problems.stable_marriage import StableMarriageLLP, stable_marriage_llp


# ------------------------------------------------------------ shortest path
def _dijkstra_oracle(g, source):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w):
        G.add_edge(int(u), int(v), weight=float(w))
    return nx.single_source_dijkstra_path_length(G, source)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_shortest_path_matches_dijkstra(seed):
    g = random_connected_graph(40, 60, seed=seed)
    d = shortest_paths_llp(g, 0)
    oracle = _dijkstra_oracle(g, 0)
    for v, dist in oracle.items():
        assert d[v] == pytest.approx(dist)


def test_shortest_path_engines_agree():
    g = grid_graph(5, 5, seed=3)
    a = solve_sequential(ShortestPathLLP(g, 0)).state
    b = solve_parallel(ShortestPathLLP(g, 0)).state
    assert np.allclose(a, b)


def test_shortest_path_source_distance_zero():
    g = grid_graph(3, 3, seed=1)
    d = shortest_paths_llp(g, 4)
    assert d[4] == 0.0
    assert (d[np.arange(9) != 4] > 0).all()


def test_shortest_path_rejects_disconnected():
    g = from_edges([(0, 1, 1.0)], n_vertices=3)
    with pytest.raises(GraphError):
        ShortestPathLLP(g, 0)


def test_shortest_path_rejects_bad_source_and_negative_weights():
    g = grid_graph(2, 2, seed=0)
    with pytest.raises(GraphError):
        ShortestPathLLP(g, 99)
    neg = from_edges([(0, 1, -1.0)])
    with pytest.raises(GraphError):
        ShortestPathLLP(neg, 0)


def test_shortest_path_single_vertex():
    g = from_edges([], n_vertices=1)
    assert shortest_paths_llp(g, 0).tolist() == [0.0]


# --------------------------------------------------------- stable marriage
def _is_stable(men, women, wife):
    n = len(wife)
    rank_m = np.empty((n, n), int)
    rank_w = np.empty((n, n), int)
    for i in range(n):
        rank_m[i, men[i]] = np.arange(n)
        rank_w[i, women[i]] = np.arange(n)
    husband = np.empty(n, int)
    husband[wife] = np.arange(n)
    for m in range(n):
        for w in range(n):
            if w == wife[m]:
                continue
            if rank_m[m, w] < rank_m[m, wife[m]] and rank_w[w, m] < rank_w[w, husband[w]]:
                return False
    return True


def _gale_shapley_oracle(men, women):
    """Textbook man-proposing Gale-Shapley (man-optimal matching)."""
    n = len(men)
    rank_w = np.empty((n, n), int)
    for i in range(n):
        rank_w[i, women[i]] = np.arange(n)
    next_choice = [0] * n
    engaged_to: dict[int, int] = {}
    free = list(range(n))
    while free:
        m = free.pop()
        w = men[m][next_choice[m]]
        next_choice[m] += 1
        if w not in engaged_to:
            engaged_to[w] = m
        elif rank_w[w, m] < rank_w[w, engaged_to[w]]:
            free.append(engaged_to[w])
            engaged_to[w] = m
        else:
            free.append(m)
    wife = np.empty(n, int)
    for w, m in engaged_to.items():
        wife[m] = w
    return wife


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_stable_marriage_matches_gale_shapley(seed):
    rng = np.random.default_rng(seed)
    n = 7
    men = np.array([rng.permutation(n) for _ in range(n)])
    women = np.array([rng.permutation(n) for _ in range(n)])
    wife = stable_marriage_llp(men, women)
    assert _is_stable(men, women, wife)
    assert (wife == _gale_shapley_oracle(men, women)).all()  # man-optimal


def test_stable_marriage_engines_agree():
    rng = np.random.default_rng(9)
    n = 6
    men = np.array([rng.permutation(n) for _ in range(n)])
    women = np.array([rng.permutation(n) for _ in range(n)])
    p1 = StableMarriageLLP(men, women)
    a = solve_sequential(p1)
    b = solve_parallel(StableMarriageLLP(men, women))
    assert (p1.matching(a.state) == p1.matching(b.state)).all()


def test_stable_marriage_identity_prefs():
    n = 5
    men = np.array([np.arange(n)] * n)
    women = np.array([np.arange(n)] * n)
    wife = stable_marriage_llp(men, women)
    # all men prefer woman 0; woman's list prefers man 0... matching is
    # the serial dictatorship by id.
    assert wife.tolist() == list(range(n))


def test_stable_marriage_rejects_malformed_prefs():
    with pytest.raises(LLPError):
        StableMarriageLLP([[0, 1], [1, 0]], [[0, 0], [1, 0]])
    with pytest.raises(LLPError):
        StableMarriageLLP([[0, 1]], [[0, 1], [1, 0]])


# --------------------------------------------------------- market clearing
def test_market_clearing_competitive_item():
    # Both buyers want item 0 (values 5 vs 5); price rises to make the
    # other item competitive.
    v = np.array([[5, 0], [5, 0]])
    prices, match = market_clearing_llp(v)
    assert prices.tolist() == [5, 0]
    assert sorted(match.tolist()) == [0, 1]


def test_market_clearing_no_contention_zero_prices():
    v = np.array([[9, 0, 0], [0, 9, 0], [0, 0, 9]])
    prices, match = market_clearing_llp(v)
    assert prices.tolist() == [0, 0, 0]
    assert match.tolist() == [0, 1, 2]


def test_market_clearing_engines_agree():
    rng = np.random.default_rng(5)
    v = rng.integers(0, 8, size=(4, 4))
    a = solve_sequential(MarketClearingLLP(v)).state
    b = solve_parallel(MarketClearingLLP(v)).state
    assert np.allclose(a, b)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_market_clearing_produces_clearing_prices(seed):
    rng = np.random.default_rng(seed)
    n = rng.integers(2, 5)
    v = rng.integers(0, 7, size=(n, n))
    problem = MarketClearingLLP(v)
    result = solve_parallel(problem)
    # at the final prices the demand graph has no over-demanded set
    assert problem.forbidden_indices(result.state) == []
    match = problem.clearing_matching(result.state)
    # every matched buyer receives an item in their demand set
    demands = problem.demand_sets(result.state)
    for b, item in enumerate(match):
        if item >= 0:
            assert item in demands[b]


def test_market_clearing_validation():
    with pytest.raises(LLPError):
        MarketClearingLLP(np.array([[1.5, 2.0], [1.0, 0.0]]))
    with pytest.raises(LLPError):
        MarketClearingLLP(np.array([[1, 2, 3], [4, 5, 6]]))
    with pytest.raises(LLPError):
        MarketClearingLLP(np.array([[-1, 2], [3, 4]]))


# --------------------------------------------------------------- bipartite
def test_max_matching_perfect():
    adj = [[0, 1], [1, 2], [2, 0]]
    ml, mr = max_bipartite_matching(adj, 3)
    assert (ml >= 0).all()
    assert sorted(ml.tolist()) == [0, 1, 2]


def test_max_matching_with_augmenting_path():
    # greedy would match 0->a, leaving 1 stuck; augmenting fixes it
    adj = [[0], [0, 1]]
    ml, _ = max_bipartite_matching(adj, 2)
    assert ml.tolist() == [0, 1]


def test_hall_violator_empty_when_perfect():
    assert hall_violator([[0], [1]], 2) == []


def test_hall_violator_finds_overdemanded_set():
    # three buyers all demand only item 0
    adj = [[0], [0], [0]]
    assert hall_violator(adj, 2) == [0]


def test_hall_violator_alternating_paths():
    # buyers: {0}, {0,1}, {1} -> items {0,1} demanded by 3 buyers
    adj = [[0], [0, 1], [1]]
    assert hall_violator(adj, 3) == [0, 1]
