"""Standalone pointer-jumping LLP (Lemma 4's inner instance)."""

import numpy as np
import pytest

from repro.errors import LLPError
from repro.llp.engine_parallel import solve_parallel
from repro.llp.engine_seq import solve_sequential
from repro.llp.problems.pointer_jumping import PointerJumpingLLP, rooted_stars_llp
from repro.runtime.simulated import SimulatedBackend


def _chain(n):
    """0 <- 1 <- 2 <- ... (vertex i points to i-1; 0 is the root)."""
    return np.array([max(0, i - 1) for i in range(n)], dtype=np.int64)


def test_chain_collapses_to_star():
    stars = rooted_stars_llp(_chain(10))
    assert (stars == 0).all()


def test_already_star_is_noop():
    parent = np.array([0, 0, 0, 3, 3], dtype=np.int64)
    result = solve_parallel(PointerJumpingLLP(parent))
    assert result.rounds == 0
    assert (rooted_stars_llp(parent) == parent).all()


def test_forest_with_multiple_roots():
    parent = np.array([0, 0, 1, 3, 3, 4], dtype=np.int64)
    stars = rooted_stars_llp(parent)
    assert stars.tolist() == [0, 0, 0, 3, 3, 3]


def test_round_count_logarithmic():
    problem = PointerJumpingLLP(_chain(64))
    result = solve_parallel(problem)
    assert problem.is_star()
    assert result.rounds <= 7  # ceil(log2(63)) + 1


def test_sequential_engine_also_converges():
    problem = PointerJumpingLLP(_chain(12))
    solve_sequential(problem)
    assert problem.is_star()


def test_depth_lattice_top_respected():
    problem = PointerJumpingLLP(_chain(8))
    result = solve_parallel(problem)
    # total shortcuts per vertex never exceed depth - 1
    assert (result.state <= problem.top()).all()


def test_cycle_rejected():
    with pytest.raises(LLPError):
        PointerJumpingLLP(np.array([1, 0], dtype=np.int64))
    with pytest.raises(LLPError):
        PointerJumpingLLP(np.array([1, 2, 0], dtype=np.int64))


def test_out_of_range_rejected():
    with pytest.raises(LLPError):
        PointerJumpingLLP(np.array([5], dtype=np.int64))


def test_on_backend():
    stars = rooted_stars_llp(_chain(33), backend=SimulatedBackend(4))
    assert (stars == 0).all()


def test_empty_forest():
    stars = rooted_stars_llp(np.empty(0, dtype=np.int64))
    assert stars.size == 0


def test_random_forests_match_naive_root_walk():
    rng = np.random.default_rng(3)
    for _ in range(10):
        n = int(rng.integers(1, 40))
        parent = np.arange(n, dtype=np.int64)
        order = rng.permutation(n)
        for i, v in enumerate(order[1:], start=1):
            parent[v] = order[rng.integers(0, i)]  # point at an earlier vertex
        expected = parent.copy()
        for v in range(n):
            x = v
            while expected[x] != x:
                x = int(expected[x])
            expected[v] = x
        assert (rooted_stars_llp(parent) == expected).all()
