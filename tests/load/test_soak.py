"""Soak harness: report structure, fault contracts, leak/replay checks."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.load.soak import FAULT_FAMILIES, run_soak

REPORT_KEYS = {
    "benchmark", "scenario", "load", "slo", "throughput", "coalescing",
    "cache", "queue", "error_budget", "faults", "replay", "leaked_segments",
    "ok",
}


def test_soak_without_faults_is_clean_and_complete(tmp_path):
    report = run_soak(
        scenario="soak", duration_s=0.6, rate_qps=120, seed=1,
        n_vertices=80, n_edges=320, faults=(), time_scale=0.5,
        store_dir=tmp_path, events_out=tmp_path / "events.jsonl",
    )
    assert REPORT_KEYS <= set(report)
    assert report["ok"] is True
    assert report["faults"] == []
    assert report["replay"]["deterministic"] is True
    assert len(report["replay"]["stream_hash"]) == 64
    assert report["leaked_segments"] == []
    assert (tmp_path / "events.jsonl").exists()
    load = report["load"]
    assert load["offered"] == load["completed"] + load["rejected"] \
        + load["timeouts"] + load["errors"]


def test_soak_artifact_corruption_recovers_under_load(tmp_path):
    report = run_soak(
        scenario="soak", duration_s=1.0, rate_qps=150, seed=2,
        n_vertices=100, n_edges=400, faults=("artifact-corruption",),
        time_scale=0.5, store_dir=tmp_path,
    )
    (outcome,) = report["faults"]
    assert outcome["family"] == "artifact-corruption"
    assert outcome["injected"] >= 1
    assert outcome["ok"], outcome["detail"]
    assert report["ok"] is True


def test_soak_worker_crash_retries_to_the_oracle():
    report = run_soak(
        scenario="soak", duration_s=1.0, rate_qps=100, seed=3,
        n_vertices=120, n_edges=480, faults=("worker-crash",),
    )
    (outcome,) = report["faults"]
    assert outcome["family"] == "worker-crash"
    assert outcome["injected"] == 1
    assert outcome["ok"], outcome["detail"]
    assert report["leaked_segments"] == []


def test_soak_rejects_unknown_fault_family():
    with pytest.raises(ServiceError, match="unknown fault families"):
        run_soak(faults=("gamma-rays",), duration_s=0.5)
    assert set(FAULT_FAMILIES) == {
        "artifact-corruption", "worker-crash", "worker-hang",
    }


def test_soak_slo_covers_served_kinds(tmp_path):
    report = run_soak(
        scenario="soak", duration_s=0.8, rate_qps=200, seed=5,
        n_vertices=80, n_edges=320, faults=(), time_scale=0.5,
        store_dir=tmp_path,
    )
    assert report["slo"], "no per-kind SLO rows were produced"
    for kind, slo in report["slo"].items():
        assert slo["count"] > 0, kind
        assert slo["p50_us"] <= slo["p95_us"] <= slo["p99_us"]
