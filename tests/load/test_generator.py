"""Open-loop driver: outcome accounting, shedding, deadlines, mutations."""

from __future__ import annotations

import asyncio

import pytest

from repro.graphs.generators import gnm_random_graph
from repro.load.generator import run_events, run_scenario
from repro.load.record import Recorder, request_stream_hash
from repro.load.scenarios import generate_events, get_scenario
from repro.mst.kruskal import kruskal
from repro.service.core import MSTService
from repro.service.server import AsyncMSTService

N, M, SEED = 150, 500, 5


def _service():
    svc = MSTService(None, algorithm="kruskal")
    svc.load_graph(gnm_random_graph(N, M, seed=SEED))
    return svc


def _accounting_holds(result):
    return result.offered == (
        result.completed + result.rejected + result.timeouts + result.errors
    )


def test_outcome_accounting_partitions_offered_load():
    scenario = get_scenario("burst", duration_s=1.0, rate_qps=400, seed=1)
    result = run_scenario(_service(), scenario, time_scale=0.1)
    assert result.offered == len(result.events) > 0
    assert _accounting_holds(result)
    assert result.failure_rate == pytest.approx(
        (result.rejected + result.timeouts + result.errors) / result.offered
    )


def test_tiny_queue_sheds_load_as_rejections():
    svc = _service()
    scenario = get_scenario("burst", duration_s=1.0, rate_qps=2000, seed=2)
    result = run_scenario(svc, scenario, time_scale=0.02, max_pending=2,
                          max_delay_s=0.05, cache_size=1)
    assert result.rejected > 0
    assert _accounting_holds(result)
    assert svc.metrics.rejected == result.rejected


def test_microscopic_deadline_times_requests_out():
    svc = _service()

    async def main():
        events = generate_events(
            get_scenario("steady", duration_s=0.5, rate_qps=200, seed=3), N
        )
        async with AsyncMSTService(svc, cache_size=1) as server:
            return await run_events(server, events, timeout_s=1e-9,
                                    time_scale=0.05)

    result = asyncio.run(main())
    assert result.timeouts > 0
    assert _accounting_holds(result)
    assert svc.metrics.timeouts == result.timeouts


def test_recorder_sees_every_offered_request():
    svc = _service()

    async def main():
        events = generate_events(
            get_scenario("hot-key", duration_s=0.5, rate_qps=300, seed=4), N
        )
        recorder = Recorder()
        async with AsyncMSTService(svc) as server:
            result = await run_events(server, events, recorder=recorder)
            return events, recorder, result

    events, recorder, result = asyncio.run(main())
    assert len(recorder.events) == result.offered == len(events)
    assert request_stream_hash(recorder.events) == request_stream_hash(events)


def test_mutations_apply_to_the_live_graph_and_clear_the_cache():
    svc = _service()
    scenario = get_scenario(
        "mixed-mutation", duration_s=2.0, rate_qps=200, seed=6,
        mix={"weight": 0.5, "insert": 0.25, "delete": 0.25},
    )
    result = run_scenario(svc, scenario, time_scale=0.05)
    assert result.mutations > 0
    assert _accounting_holds(result)
    # The served forest must now equal a fresh solve of the mutated graph.
    assert svc.total_weight() == pytest.approx(
        kruskal(svc._graph).total_weight
    )


def test_replaying_the_recorded_stream_preserves_the_hash():
    scenario = get_scenario("steady", duration_s=0.5, rate_qps=300, seed=7)
    first = run_scenario(_service(), scenario, time_scale=0.1)
    again = run_scenario(
        _service(), scenario,
        events=[e for e in generate_events(scenario, N)], time_scale=0.1,
    )
    assert request_stream_hash(first.events) == request_stream_hash(again.events)


def test_load_result_to_dict_is_json_shaped():
    scenario = get_scenario("uniform", duration_s=0.3, rate_qps=100, seed=8)
    d = run_scenario(_service(), scenario, time_scale=0.1).to_dict()
    assert {"scenario", "seed", "offered", "completed", "rejected", "timeouts",
            "errors", "mutations", "wall_s", "offered_qps", "completed_qps",
            "failure_rate"} <= set(d)
