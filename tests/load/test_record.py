"""Event log: byte-identical serialisation, hash scope, replay rebuild."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.load.record import (
    OUTCOMES,
    Recorder,
    read_events,
    replay_requests,
    request_stream_hash,
    write_events,
)
from repro.load.scenarios import generate_events, get_scenario

SCENARIO = get_scenario("mixed-mutation", duration_s=2.0, rate_qps=300, seed=21)
N_VERTICES = 300


def _events():
    return generate_events(SCENARIO, N_VERTICES)


def test_write_is_byte_identical_for_equal_streams(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_events([e.to_dict() for e in _events()], a)
    write_events([e.to_dict() for e in _events()], b)
    assert a.read_bytes() == b.read_bytes()


def test_roundtrip_preserves_the_stream_hash(tmp_path):
    events = _events()
    path = write_events([e.to_dict() for e in events], tmp_path / "log.jsonl")
    assert request_stream_hash(read_events(path)) == request_stream_hash(events)


def test_hash_ignores_outcome_fields():
    events = _events()
    recorder = Recorder()
    for i, event in enumerate(events):
        recorder.record(event, OUTCOMES[i % len(OUTCOMES)], latency_s=i * 1e-4,
                        result=i, error="boom" if i % 7 == 0 else None)
    assert request_stream_hash(recorder.events) == request_stream_hash(events)


def test_hash_is_sensitive_to_the_request_part():
    events = _events()
    mutated = [e.to_dict() for e in events]
    mutated[0]["u"] = (mutated[0]["u"] or 0) + 1
    assert request_stream_hash(mutated) != request_stream_hash(events)


def test_replay_requests_rebuilds_the_exact_stream():
    events = _events()
    replayed = replay_requests([e.to_dict() for e in events])
    assert replayed == events


def test_recorder_sorts_by_seq_and_counts_outcomes():
    events = _events()[:4]
    recorder = Recorder()
    for event in reversed(events):
        recorder.record(event, "ok", 1e-3)
    assert [r["seq"] for r in recorder.events] == [e.seq for e in events]
    assert recorder.outcome_counts()["ok"] == 4


def test_recorder_rejects_unknown_outcome():
    recorder = Recorder()
    with pytest.raises(ServiceError, match="unknown outcome"):
        recorder.record(_events()[0], "vanished", 1e-3)


def test_recorder_serialises_infinite_results(tmp_path):
    recorder = Recorder()
    recorder.record(_events()[0], "ok", 1e-3, result=float("inf"))
    path = recorder.write(tmp_path / "inf.jsonl")
    assert read_events(path)[0]["result"] == "inf"


def test_read_events_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json}\n")
    with pytest.raises(ServiceError, match="invalid JSON"):
        read_events(bad)
    bad.write_text('{"no": "seq"}\n')
    with pytest.raises(ServiceError, match="not an event record"):
        read_events(bad)
