"""Multi-tenant load harness: accounting invariant, quota shedding, op_map."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.graphs.generators.grid import grid_graph
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.load.multitenant import TenantLoad, run_multitenant
from repro.load.scenarios import Scenario
from repro.platform import GraphPlatform, TenantQuota


def _scenario(rate_qps=400.0, duration_s=0.4, mix=None, seed=11,
              arrival="uniform"):
    return Scenario(
        name="test-mix", seed=seed, duration_s=duration_s, rate_qps=rate_qps,
        arrival=arrival, mix=mix or {"connected": 0.6, "weight": 0.4},
    )


def _accounting_ok(rec: dict) -> bool:
    return rec["offered"] == (
        rec["completed"] + rec["rejected"] + rec["quota_rejected"]
        + rec["timeouts"] + rec["errors"]
    )


def test_single_tenant_accounting_invariant():
    with GraphPlatform() as platform:
        platform.add_tenant("solo")
        platform.add_graph("solo", "g", gnm_random_graph(100, 300, seed=2))
        result = run_multitenant(
            platform, [TenantLoad("solo", "g", _scenario())])
    rec = result.tenants["solo"].to_dict()
    assert _accounting_ok(rec)
    assert rec["offered"] > 0
    assert rec["completed"] > 0
    assert rec["quota_rejected"] == 0  # unthrottled tenant sheds nothing
    assert rec["p99_ms"] >= rec["p50_ms"] >= 0


def test_hot_tenant_sheds_cold_tenant_does_not():
    with GraphPlatform() as platform:
        platform.add_tenant("cold", TenantQuota(rate_qps=0.0))
        platform.add_tenant("hot", TenantQuota(rate_qps=20.0, burst=5.0))
        g = gnm_random_graph(100, 300, seed=2)
        platform.add_graph("cold", "g", g)
        platform.add_graph("hot", "g", g)
        result = run_multitenant(platform, [
            TenantLoad("cold", "g", _scenario(rate_qps=150.0)),
            TenantLoad("hot", "g", _scenario(rate_qps=800.0, seed=12,
                                             arrival="poisson")),
        ])
    cold = result.tenants["cold"].to_dict()
    hot = result.tenants["hot"].to_dict()
    assert _accounting_ok(cold) and _accounting_ok(hot)
    # The hot tenant is mostly shed at admission; the cold one never is.
    assert hot["quota_rejected"] > 0
    assert cold["quota_rejected"] == 0
    assert cold["completed"] > 0
    # Quota rejections are cheap shed, not errors.
    assert hot["errors"] == 0


def test_op_map_drives_problem_tenants():
    """SSSP graphs are loadable: op_map renames MST mix kinds at issue time."""
    with GraphPlatform() as platform:
        platform.add_tenant("sci")
        platform.add_graph("sci", "paths", grid_graph(8, 8, seed=1),
                           problem="sssp", source=0)
        result = run_multitenant(platform, [
            TenantLoad("sci", "paths",
                       _scenario(mix={"component": 1.0}),
                       op_map={"component": "dist"}),
        ])
    rec = result.tenants["sci"].to_dict()
    assert _accounting_ok(rec)
    assert rec["completed"] > 0
    assert rec["errors"] == 0  # "dist" really is what the engine ran


def test_duplicate_tenant_loads_rejected():
    with GraphPlatform() as platform:
        platform.add_tenant("solo")
        platform.add_graph("solo", "g", gnm_random_graph(50, 150, seed=2))
        loads = [
            TenantLoad("solo", "g", _scenario()),
            TenantLoad("solo", "g", _scenario(seed=13)),
        ]
        with pytest.raises(ServiceError, match="one TenantLoad per tenant"):
            run_multitenant(platform, loads)


def test_mutation_events_are_dropped_from_the_mix():
    """Mutation ops in a scenario mix are skipped, not sent as queries."""
    with GraphPlatform() as platform:
        platform.add_tenant("solo")
        platform.add_graph("solo", "g", gnm_random_graph(80, 240, seed=2))
        scenario = Scenario(
            name="with-mutations", seed=11, duration_s=0.3, rate_qps=300.0,
            arrival="uniform",
            mix={"connected": 0.7, "insert": 0.2, "delete": 0.1},
        )
        result = run_multitenant(
            platform, [TenantLoad("solo", "g", scenario)])
    rec = result.tenants["solo"].to_dict()
    assert _accounting_ok(rec)
    assert rec["errors"] == 0
    # Dropped mutations shrink offered below the scenario's nominal count.
    assert rec["completed"] > 0


def test_result_to_dict_shape():
    with GraphPlatform() as platform:
        platform.add_tenant("solo")
        platform.add_graph("solo", "g", gnm_random_graph(50, 150, seed=2))
        result = run_multitenant(
            platform,
            [TenantLoad("solo", "g", _scenario(duration_s=0.2))])
    rec = result.tenants["solo"].to_dict()
    for key in ("tenant", "graph", "scenario", "offered", "completed",
                "rejected", "quota_rejected", "timeouts", "errors",
                "p50_ms", "p99_ms"):
        assert key in rec, key
    assert rec["tenant"] == "solo" and rec["graph"] == "g"
