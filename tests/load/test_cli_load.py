"""The ``repro load`` subcommands, driven end to end through main()."""

from __future__ import annotations

import json

from repro.cli import main

COMMON = ["--dataset", "usa-road", "--scale", "6", "--time-scale", "0.1"]


def _stdout_hash(capsys) -> str:
    for line in capsys.readouterr().out.splitlines():
        if line.startswith("stream_hash="):
            return line.split("=", 1)[1]
    raise AssertionError("no stream_hash line in output")


def test_load_run_reports_accounting_and_hash(capsys):
    rc = main(["load", "run", "--scenario", "burst", "--duration", "0.5",
               "--rate", "200", *COMMON])
    assert rc == 0
    out = capsys.readouterr().out
    assert "offered=" in out and "stream_hash=" in out


def test_load_record_then_replay_preserves_the_hash(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    assert main(["load", "record", "--scenario", "hot-key", "--duration",
                 "0.5", "--rate", "200", "--out", str(log), *COMMON]) == 0
    recorded = _stdout_hash(capsys)
    assert log.exists()

    assert main(["load", "replay", "--events", str(log), *COMMON]) == 0
    assert _stdout_hash(capsys) == recorded


def test_load_run_json_output_is_machine_readable(capsys):
    rc = main(["load", "run", "--scenario", "steady", "--duration", "0.4",
               "--rate", "150", "--json", *COMMON])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["offered"] == payload["completed"] + payload["rejected"] \
        + payload["timeouts"] + payload["errors"]
    assert len(payload["stream_hash"]) == 64


def test_load_soak_cli_writes_the_report(tmp_path, capsys):
    report_path = tmp_path / "soak.json"
    rc = main(["load", "soak", "--duration", "0.6", "--rate", "120",
               "--n", "80", "--m", "320", "--time-scale", "0.5",
               "--faults", "", "--out", str(report_path)])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["faults"] == []
    assert "soak" in capsys.readouterr().out


def test_load_rejects_unknown_scenario(capsys):
    rc = main(["load", "run", "--scenario", "tsunami", *COMMON])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err
