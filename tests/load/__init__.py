"""Tests for the sustained-traffic load subsystem (:mod:`repro.load`)."""
