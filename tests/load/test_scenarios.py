"""Scenario expansion: determinism, validation, arrival/mix/skew shape."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ServiceError
from repro.load.scenarios import (
    ARRIVALS,
    SCENARIOS,
    RequestEvent,
    Scenario,
    generate_events,
    get_scenario,
)

N_VERTICES = 500


def test_every_preset_validates_and_expands():
    for name in SCENARIOS:
        scenario = get_scenario(name)
        events = generate_events(scenario, N_VERTICES)
        assert events, name
        assert all(isinstance(e, RequestEvent) for e in events)


def test_same_seed_same_stream():
    scenario = get_scenario("burst", seed=42)
    assert generate_events(scenario, N_VERTICES) == \
        generate_events(scenario, N_VERTICES)


def test_different_seed_different_stream():
    a = generate_events(get_scenario("steady", seed=1), N_VERTICES)
    b = generate_events(get_scenario("steady", seed=2), N_VERTICES)
    assert a != b


def test_events_sorted_within_duration_and_sequenced():
    scenario = get_scenario("ramp", duration_s=2.0, seed=5)
    events = generate_events(scenario, N_VERTICES)
    offsets = [e.t_offset_s for e in events]
    assert offsets == sorted(offsets)
    assert 0.0 <= offsets[0] and offsets[-1] <= scenario.duration_s
    assert [e.seq for e in events] == list(range(len(events)))


def test_operands_in_vertex_range():
    events = generate_events(get_scenario("hot-key", seed=3), N_VERTICES)
    for e in events:
        if e.u is not None:
            assert 0 <= e.u < N_VERTICES
        if e.v is not None:
            assert 0 <= e.v < N_VERTICES


def test_mix_ratios_roughly_respected():
    scenario = get_scenario("steady", duration_s=20.0, rate_qps=500, seed=7)
    events = generate_events(scenario, N_VERTICES)
    counts = Counter(e.op for e in events)
    total = len(events)
    for op, weight in scenario.mix.items():
        assert counts[op] / total == pytest.approx(weight, abs=0.05), op


def test_zipf_hot_keys_dominate():
    scenario = get_scenario("hot-key", duration_s=10.0, rate_qps=500, seed=9)
    events = generate_events(scenario, N_VERTICES)
    pairs = Counter(
        (e.u, e.v) for e in events if e.u is not None and e.v is not None
    )
    top = sum(c for _, c in pairs.most_common(scenario.hot_keys))
    # With Zipf skew the hot pool must absorb well over a uniform share.
    assert top / sum(pairs.values()) > 0.5


def test_insert_events_never_self_loop():
    scenario = get_scenario("mixed-mutation", duration_s=10.0, rate_qps=400,
                            seed=11)
    events = generate_events(scenario, N_VERTICES)
    inserts = [e for e in events if e.op == "insert"]
    assert inserts
    assert all(e.u != e.v for e in inserts)
    assert all(e.w is not None and e.w > 0 for e in inserts)


def test_max_requests_caps_the_stream():
    scenario = get_scenario("steady", duration_s=60.0, rate_qps=1000, seed=1,
                            max_requests=100)
    assert len(generate_events(scenario, N_VERTICES)) == 100


def test_unknown_scenario_name_rejected():
    with pytest.raises(ServiceError, match="unknown scenario"):
        get_scenario("nope")


@pytest.mark.parametrize("overrides", [
    {"duration_s": 0.0},
    {"rate_qps": -1.0},
    {"arrival": "fractal"},
    {"mix": {"connected": 0.5, "nonsense": 0.5}},
    {"mix": {}},
    {"zipf_s": -1.0},
    {"hot_keys": 0},
    {"timeout_s": -2.0},
])
def test_invalid_fields_rejected(overrides):
    with pytest.raises(ServiceError):
        get_scenario("steady", **overrides)


def test_arrival_presets_cover_all_processes():
    covered = {SCENARIOS[name].arrival for name in SCENARIOS}
    assert covered == set(ARRIVALS)


def test_to_dict_from_dict_roundtrip():
    scenario = get_scenario("soak", seed=13)
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone == scenario
