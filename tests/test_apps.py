"""Applications layer: clustering, TSP, Steiner trees."""

import itertools

import numpy as np
import pytest

from repro.apps.clustering import single_linkage_clusters
from repro.apps.steiner import steiner_tree_approx
from repro.apps.tsp import tour_weight, tsp_two_approx
from repro.errors import GraphError
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import grid_graph, road_network
from repro.mst.kruskal import kruskal


def _metric_complete(points):
    """Complete graph over 2-D points with Euclidean weights."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    iu, iv = np.triu_indices(n, k=1)
    w = np.hypot(pts[iu, 0] - pts[iv, 0], pts[iu, 1] - pts[iv, 1])
    return CSRGraph.from_edgelist(
        EdgeList.from_arrays(n, iu.astype(np.int64), iv.astype(np.int64), w)
    )


# -------------------------------------------------------------- clustering
def test_two_obvious_clusters():
    pts = [(0, 0), (0, 1), (1, 0), (10, 10), (10, 11), (11, 10)]
    g = _metric_complete(pts)
    labels = single_linkage_clusters(g, 2)
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4] == labels[5]
    assert labels[0] != labels[3]


def test_k_equals_n_all_singletons():
    g = grid_graph(3, 3, seed=1)
    labels = single_linkage_clusters(g, 9)
    assert sorted(labels.tolist()) == list(range(9))


def test_k_equals_components():
    g = from_edges([(0, 1, 1.0), (2, 3, 2.0)], n_vertices=4)
    labels = single_linkage_clusters(g, 2)
    assert labels.tolist() == [0, 0, 2, 2]
    with pytest.raises(GraphError):
        single_linkage_clusters(g, 1)  # cannot merge components


def test_precomputed_forest_accepted():
    g = road_network(5, 5, seed=3)
    labels_a = single_linkage_clusters(g, 4)
    labels_b = single_linkage_clusters(g, 4, forest=kruskal(g))
    assert (labels_a == labels_b).all()


def test_matches_scipy_single_linkage():
    from scipy.cluster.hierarchy import fcluster, linkage
    from scipy.spatial.distance import pdist

    rng = np.random.default_rng(5)
    pts = rng.random((20, 2))
    g = _metric_complete(pts)
    for k in (2, 3, 5):
        ours = single_linkage_clusters(g, k)
        ref = fcluster(linkage(pdist(pts), method="single"), k, criterion="maxclust")
        # compare partitions (label values differ)
        our_parts = {tuple(np.flatnonzero(ours == c)) for c in np.unique(ours)}
        ref_parts = {tuple(np.flatnonzero(ref == c)) for c in np.unique(ref)}
        assert our_parts == ref_parts


def test_cluster_bounds():
    g = grid_graph(2, 2, seed=1)
    with pytest.raises(GraphError):
        single_linkage_clusters(g, 0)
    with pytest.raises(GraphError):
        single_linkage_clusters(g, 9)
    assert single_linkage_clusters(from_edges([], n_vertices=0), 0).size == 0


# --------------------------------------------------------------------- TSP
def test_tour_visits_all_and_respects_bound():
    rng = np.random.default_rng(7)
    pts = rng.random((12, 2))
    g = _metric_complete(pts)
    tour = tsp_two_approx(g)
    assert sorted(tour) == list(range(12))
    w = tour_weight(g, tour)
    mst_w = kruskal(g).total_weight
    assert w <= 2.0 * mst_w + 1e-9  # the textbook guarantee
    assert w >= mst_w  # a tour can never beat the MST


def test_tour_matches_bruteforce_factor_on_tiny_instance():
    pts = [(0, 0), (0, 1), (1, 1), (1, 0), (0.5, 0.5)]
    g = _metric_complete(pts)
    tour = tsp_two_approx(g)
    w = tour_weight(g, tour)
    best = min(
        tour_weight(g, [0, *perm])
        for perm in itertools.permutations(range(1, 5))
    )
    assert w <= 2.0 * best + 1e-9


def test_tsp_requires_complete_graph():
    with pytest.raises(GraphError):
        tsp_two_approx(grid_graph(3, 3, seed=1))


def test_tsp_trivial_sizes():
    assert tsp_two_approx(from_edges([], n_vertices=0)) == []
    assert tsp_two_approx(from_edges([], n_vertices=1)) == [0]
    g = _metric_complete([(0, 0), (1, 0)])
    assert sorted(tsp_two_approx(g)) == [0, 1]


def test_tour_weight_validation():
    g = _metric_complete([(0, 0), (1, 0), (0, 1)])
    with pytest.raises(GraphError):
        tour_weight(g, [0, 1])
    with pytest.raises(GraphError):
        tour_weight(g, [0, 1, 1])


def test_tsp_custom_start():
    g = _metric_complete([(0, 0), (1, 0), (0, 1), (1, 1)])
    tour = tsp_two_approx(g, start=2)
    assert tour[0] == 2
    with pytest.raises(GraphError):
        tsp_two_approx(g, start=9)


# ------------------------------------------------------------------ Steiner
def test_steiner_two_terminals_is_shortest_path():
    # path 0-1-2 cheap, direct 0-2 expensive
    g = from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
    edges, weight = steiner_tree_approx(g, [0, 2])
    assert weight == pytest.approx(2.0)
    assert len(edges) == 2


def test_steiner_single_terminal():
    g = grid_graph(3, 3, seed=2)
    edges, weight = steiner_tree_approx(g, [4])
    assert edges == [] and weight == 0.0


def test_steiner_all_terminals_equals_mst():
    g = road_network(4, 5, seed=4)
    edges, weight = steiner_tree_approx(g, list(range(g.n_vertices)))
    assert weight == pytest.approx(kruskal(g).total_weight)


def test_steiner_connects_terminals_and_prunes_leaves():
    g = grid_graph(4, 4, seed=5)
    terms = [0, 3, 12]
    edges, weight = steiner_tree_approx(g, terms)
    # terminals connected within the chosen edges
    from repro.structures.union_find import UnionFind

    uf = UnionFind(g.n_vertices)
    for e in edges:
        uf.union(int(g.edge_u[e]), int(g.edge_v[e]))
    assert uf.connected(0, 3) and uf.connected(0, 12)
    # every leaf of the tree is a terminal
    from collections import Counter

    deg = Counter()
    for e in edges:
        u, v = g.edge_endpoints(e)
        deg[u] += 1
        deg[v] += 1
    for v, d in deg.items():
        if d == 1:
            assert v in terms


def test_steiner_bound_vs_bruteforce_on_tiny_instance():
    g = grid_graph(3, 3, seed=6)
    terms = [0, 2, 8]
    edges, weight = steiner_tree_approx(g, terms)
    best = _brute_force_steiner(g, terms)
    t = len(terms)
    assert weight <= 2.0 * (1 - 1 / t) * best + 1e-9


def test_steiner_validation():
    g = grid_graph(2, 2, seed=1)
    with pytest.raises(GraphError):
        steiner_tree_approx(g, [])
    with pytest.raises(GraphError):
        steiner_tree_approx(g, [99])


def _brute_force_steiner(g, terms):
    """Optimal Steiner weight by trying every edge subset (tiny graphs)."""
    from repro.structures.union_find import UnionFind

    best = np.inf
    m = g.n_edges
    for mask in range(1 << m):
        ids = [e for e in range(m) if mask & (1 << e)]
        uf = UnionFind(g.n_vertices)
        for e in ids:
            uf.union(int(g.edge_u[e]), int(g.edge_v[e]))
        if all(uf.connected(terms[0], t) for t in terms[1:]):
            w = sum(float(g.edge_w[e]) for e in ids)
            best = min(best, w)
    return best
