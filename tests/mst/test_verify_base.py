"""MSTResult assembly and the verifier (must reject corrupted forests)."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, road_network
from repro.mst.base import MSTResult, result_from_edge_ids
from repro.mst.kruskal import kruskal
from repro.mst.verify import (
    verify_cut_property_sample,
    verify_minimum,
    verify_spanning_forest,
)


@pytest.fixture
def graph():
    return gnm_random_graph(30, 80, seed=5)


@pytest.fixture
def good(graph):
    return kruskal(graph)


def test_result_from_edge_ids_computes_aggregates(graph, good):
    rebuilt = result_from_edge_ids(graph, good.edge_ids)
    assert rebuilt.total_weight == pytest.approx(good.total_weight)
    assert rebuilt.n_components == good.n_components
    assert rebuilt.weight_of(graph) == pytest.approx(good.total_weight)


def test_result_rejects_bad_edge_ids(graph):
    with pytest.raises(AlgorithmError):
        result_from_edge_ids(graph, np.array([0, 0]))
    with pytest.raises(AlgorithmError):
        result_from_edge_ids(graph, np.array([graph.n_edges]))
    with pytest.raises(AlgorithmError):
        result_from_edge_ids(graph, np.array([-1]))


def test_verify_accepts_correct_forest(graph, good):
    verify_spanning_forest(graph, good)
    verify_minimum(graph, good)
    verify_cut_property_sample(graph, good, n_samples=8)


def test_verify_rejects_cycle(graph, good):
    # add a non-tree edge: creates a cycle
    extra = next(e for e in range(graph.n_edges) if e not in good.edge_set())
    bad_ids = np.append(good.edge_ids, extra)
    bad = MSTResult(
        edge_ids=np.sort(bad_ids),
        total_weight=float(graph.edge_w[bad_ids].sum()),
        n_components=good.n_components,
    )
    with pytest.raises(AlgorithmError):
        verify_spanning_forest(graph, bad)


def test_verify_rejects_non_spanning(graph, good):
    bad = result_from_edge_ids(graph, good.edge_ids[:-1])
    with pytest.raises(AlgorithmError):
        verify_spanning_forest(graph, bad)


def test_verify_rejects_wrong_weight(graph, good):
    bad = MSTResult(
        edge_ids=good.edge_ids,
        total_weight=good.total_weight + 1.0,
        n_components=good.n_components,
    )
    with pytest.raises(AlgorithmError):
        verify_spanning_forest(graph, bad)


def test_verify_rejects_wrong_component_count(graph, good):
    bad = MSTResult(
        edge_ids=good.edge_ids,
        total_weight=good.total_weight,
        n_components=good.n_components + 1,
    )
    with pytest.raises(AlgorithmError):
        verify_spanning_forest(graph, bad)


def test_verify_minimum_rejects_spanning_but_not_minimal():
    g = road_network(7, 7, seed=6)
    mst = kruskal(g)
    # swap one tree edge for a non-tree edge that keeps it spanning
    tree = set(mst.edge_set())
    for e in range(g.n_edges):
        if e in tree:
            continue
        u, v = g.edge_endpoints(e)
        # find the tree edge on the cycle: try removing each tree edge
        for t in list(tree):
            candidate = (tree - {t}) | {e}
            try:
                alt = result_from_edge_ids(g, np.array(sorted(candidate)))
                verify_spanning_forest(g, alt)
            except AlgorithmError:
                continue
            # alt spans but differs from the MST; must be rejected
            with pytest.raises(AlgorithmError):
                verify_minimum(g, alt)
            return
    pytest.skip("no spanning swap found")


def test_cut_property_sample_rejects_heavier_swap():
    g = road_network(6, 6, seed=7)
    mst = kruskal(g)
    tree = set(mst.edge_set())
    # construct a spanning tree that is NOT minimal (as above), then the
    # sampled cut check must fail with full sampling
    for e in range(g.n_edges):
        if e in tree:
            continue
        for t in list(tree):
            candidate = (tree - {t}) | {e}
            try:
                alt = result_from_edge_ids(g, np.array(sorted(candidate)))
                verify_spanning_forest(g, alt)
            except AlgorithmError:
                continue
            with pytest.raises(AlgorithmError):
                verify_cut_property_sample(g, alt, n_samples=alt.n_edges)
            return
    pytest.skip("no spanning swap found")


def test_verify_empty_result():
    g = from_edges([], n_vertices=3)
    r = result_from_edge_ids(g, np.array([], dtype=np.int64))
    verify_spanning_forest(g, r)
    verify_minimum(g, r)
    verify_cut_property_sample(g, r)


def test_edge_set_and_n_edges(good):
    assert len(good.edge_set()) == good.n_edges


def test_cycle_property_verifier_accepts_all_algorithms(graph):
    from repro.mst.registry import available_algorithms, get_algorithm
    from repro.mst.verify import verify_minimum_cycle_property
    from repro.runtime.simulated import SimulatedBackend

    for name in available_algorithms():
        result = get_algorithm(name)(graph, backend=SimulatedBackend(2))
        verify_minimum_cycle_property(graph, result)


def test_cycle_property_verifier_rejects_non_minimal():
    from repro.graphs.generators import road_network
    from repro.mst.verify import verify_minimum_cycle_property

    g = road_network(7, 7, seed=6)
    mst = kruskal(g)
    tree = set(mst.edge_set())
    for e in range(g.n_edges):
        if e in tree:
            continue
        for t in list(tree):
            candidate = (tree - {t}) | {e}
            try:
                alt = result_from_edge_ids(g, np.array(sorted(candidate)))
                verify_spanning_forest(g, alt)
            except AlgorithmError:
                continue
            with pytest.raises(AlgorithmError):
                verify_minimum_cycle_property(g, alt)
            return
    pytest.skip("no spanning swap found")


def test_cycle_property_verifier_forest_input():
    from repro.mst.verify import verify_minimum_cycle_property

    g = from_edges([(0, 1, 1.0), (1, 2, 5.0), (0, 2, 3.0), (3, 4, 2.0)], n_vertices=6)
    verify_minimum_cycle_property(g, kruskal(g))
