"""Adaptive algorithm selection (the Section VIII guidance as an API)."""

import pytest

from repro.graphs.generators import rmat_graph, road_network
from repro.mst.hybrid import auto_mst, select_algorithm
from repro.mst.verify import verify_minimum
from repro.runtime.simulated import SimulatedBackend

from tests.conftest import mst_edge_oracle


def test_single_worker_picks_sequential_llp_prim():
    g = road_network(6, 6, seed=1)
    assert select_algorithm(g, 1) == "llp-prim"
    result = auto_mst(g, workers=1)
    assert result.stats["selected_algorithm"] == "llp-prim"
    verify_minimum(g, result)


def test_low_core_counts_pick_llp_prim_parallel():
    g = road_network(6, 6, seed=1)
    assert select_algorithm(g, 2) == "llp-prim-parallel"
    assert select_algorithm(g, 4) == "llp-prim-parallel"


def test_high_core_counts_pick_llp_boruvka():
    g = road_network(6, 6, seed=1)
    assert select_algorithm(g, 8) == "llp-boruvka"
    assert select_algorithm(g, 32) == "llp-boruvka"


def test_dense_graphs_shift_crossover_up():
    g = rmat_graph(8, 16, seed=2)  # avg degree >> 16
    assert select_algorithm(g, 8) == "llp-prim-parallel"
    assert select_algorithm(g, 16) == "llp-boruvka"


def test_custom_crossover():
    g = road_network(6, 6, seed=1)
    assert select_algorithm(g, 8, crossover=16) == "llp-prim-parallel"
    assert select_algorithm(g, 2, crossover=1) == "llp-boruvka"


@pytest.mark.parametrize("workers", [1, 2, 8, 32])
def test_auto_mst_correct_at_every_setting(workers):
    g = road_network(8, 9, seed=3)
    result = auto_mst(g, workers=workers)
    assert result.edge_set() == mst_edge_oracle(g)
    assert result.stats["selected_for_workers"] == workers


def test_auto_mst_with_explicit_backend():
    g = rmat_graph(7, 6, seed=4)
    backend = SimulatedBackend(16)
    result = auto_mst(g, workers=16, backend=backend)
    assert result.edge_set() == mst_edge_oracle(g)
    assert backend.trace.total_work > 0
