"""Targeted LLP-Boruvka unit behaviour: symmetry breaking and 2-cycles.

Regression suite for the mutual-minimum-pair handling — the one place
Algorithm 6's pseudo-forest can cycle.  A vertex whose pointer chain leads
*into* an unresolved 2-cycle must also terminate (the original
implementation livelocked there).
"""

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.mst.llp_boruvka import llp_boruvka
from repro.mst.verify import verify_minimum
from repro.runtime.sequential import SequentialBackend
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threads import ThreadBackend


def test_single_mutual_pair():
    # one edge: both endpoints pick it; smaller id must root
    g = from_edges([(0, 1, 1.0)])
    r = llp_boruvka(g)
    assert r.n_edges == 1


def test_chain_into_mutual_pair():
    """2 -> 1 <-> 0: vertex 2's chain enters the cycle from outside."""
    g = from_edges([(0, 1, 1.0), (1, 2, 5.0)])
    r = llp_boruvka(g)
    assert r.n_edges == 2
    verify_minimum(g, r)


def test_long_chain_into_mutual_pair():
    # path with strictly increasing weights: every vertex's mwe points
    # toward vertex 0, producing one long tree onto the (0, 1) pair
    n = 12
    g = from_edges([(i, i + 1, float(i + 1)) for i in range(n - 1)])
    for backend in (SequentialBackend(), SimulatedBackend(4)):
        r = llp_boruvka(g, backend)
        assert r.n_edges == n - 1
    verify_minimum(g, r)


def test_many_disjoint_mutual_pairs():
    # perfect matching: every component is exactly a mutual pair
    g = from_edges([(2 * i, 2 * i + 1, float(i + 1)) for i in range(6)])
    r = llp_boruvka(g, SimulatedBackend(3))
    assert r.n_edges == 6
    assert r.stats["levels"] == 1
    assert r.n_components == 6


def test_star_contracts_in_one_level():
    g = from_edges([(0, i, float(i)) for i in range(1, 9)])
    r = llp_boruvka(g)
    assert r.stats["levels"] == 1
    assert r.n_edges == 8


def test_two_cycle_resolution_under_threads():
    """Hammer the race-prone path with real threads, many times."""
    g = from_edges(
        [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 6.0), (3, 4, 2.0), (0, 4, 9.0)]
    )
    for _ in range(5):
        with ThreadBackend(4) as tb:
            r = llp_boruvka(g, tb)
        verify_minimum(g, r)


def test_jump_round_stat_counts_longest_chain():
    n = 17  # strictly increasing path: a single deep tree at level 1
    g = from_edges([(i, i + 1, float(i + 1)) for i in range(n - 1)])
    r = llp_boruvka(g)
    assert r.stats["jump_rounds"] >= 1


def test_mutual_pair_weights_equalish_but_distinct_ranks():
    """Equal raw weights: ranks still break the tie deterministically."""
    g = from_edges([(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
    a = llp_boruvka(g)
    b = llp_boruvka(g, SimulatedBackend(2))
    assert a.edge_set() == b.edge_set()
    assert a.n_edges == 3
