"""Loop-vs-vectorized equivalence property tests.

Every algorithm with a ``mode="vectorized"`` array-kernel fast path must
produce *exactly* the MSF of its loop-mode reference — same edge-id set,
same total weight — on every graph.  Unique weight ranks make the MSF
unique, so set equality is the right oracle (no tie wiggle room).
"""

from __future__ import annotations

import pytest

from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, grid_graph, rmat_graph
from repro.mst.kruskal import kruskal
from repro.mst.llp_boruvka import llp_boruvka
from repro.mst.registry import (
    PARALLEL_ALGORITHMS,
    get_algorithm,
    list_algorithm_info,
)
from repro.runtime.sequential import SequentialBackend
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threads import ThreadBackend

MODE_ALGOS = [info.name for info in list_algorithm_info() if info.has_vectorized]

# >= 20 seeded random graphs; the sparse ones (m < n - 1) are forcibly
# disconnected, exercising the MSF (multi-component) path.
RANDOM_CASES = [(40 + 3 * s, m, s) for s, m in enumerate(
    [10, 25, 38, 44, 60, 75, 90, 105, 120, 150,
     12, 30, 42, 55, 70, 85, 100, 130, 160, 200]
)]


def _graphs():
    for n, m, seed in RANDOM_CASES:
        yield f"gnm-{n}-{m}-s{seed}", gnm_random_graph(n, m, seed=seed)
    yield "grid-7x8", grid_graph(7, 8, seed=21)
    yield "rmat-7", rmat_graph(7, 6, seed=22)


def test_mode_algos_discovered():
    assert set(MODE_ALGOS) == {
        "prim", "llp-prim", "boruvka", "llp-boruvka", "parallel-boruvka"
    }


@pytest.mark.slow
@pytest.mark.parametrize("algo_name", MODE_ALGOS)
def test_vectorized_matches_loop_everywhere(algo_name):
    loop = get_algorithm(algo_name, mode="loop")
    vec = get_algorithm(algo_name, mode="vectorized")
    for label, g in _graphs():
        oracle = kruskal(g)
        r_loop = loop(g)
        r_vec = vec(g)
        assert r_loop.edge_set() == oracle.edge_set(), (algo_name, label)
        assert r_vec.edge_set() == oracle.edge_set(), (algo_name, label)
        assert r_vec.total_weight == pytest.approx(r_loop.total_weight), (
            algo_name, label,
        )


@pytest.mark.slow
@pytest.mark.parametrize("compact", [True, False])
def test_llp_boruvka_modes_agree_for_both_compact_settings(compact):
    for label, g in _graphs():
        oracle = kruskal(g).edge_set()
        r_loop = llp_boruvka(g, compact=compact)
        r_vec = llp_boruvka(g, compact=compact, mode="vectorized")
        assert r_loop.edge_set() == oracle, (label, compact)
        assert r_vec.edge_set() == oracle, (label, compact)
        assert r_vec.total_weight == pytest.approx(r_loop.total_weight)


@pytest.mark.slow
@pytest.mark.parametrize(
    "algo_name", [n for n in MODE_ALGOS if n in PARALLEL_ALGORITHMS]
)
def test_vectorized_parallel_algos_on_every_backend(algo_name):
    vec = get_algorithm(algo_name, mode="vectorized")
    g = gnm_random_graph(60, 150, seed=33)
    sparse = gnm_random_graph(50, 30, seed=34)  # disconnected MSF case
    for graph in (g, sparse):
        oracle = kruskal(graph).edge_set()
        assert vec(graph, backend=SequentialBackend()).edge_set() == oracle
        assert vec(graph, backend=SimulatedBackend(4)).edge_set() == oracle
        with ThreadBackend(3) as tb:
            assert vec(graph, backend=tb).edge_set() == oracle


def test_vectorized_quick_smoke_fig1():
    g = from_edges([
        (0, 2, 4.0), (1, 2, 3.0), (0, 1, 5.0), (1, 3, 7.0),
        (2, 3, 9.0), (3, 4, 2.0), (2, 4, 11.0),
    ])
    oracle = kruskal(g).edge_set()
    for name in MODE_ALGOS:
        assert get_algorithm(name, mode="vectorized")(g).edge_set() == oracle, name
