"""Cross-algorithm agreement: every algorithm must return the unique MSF.

This is the central correctness property of the reproduction: with
distinct weight ranks the MSF is unique, so thirteen independent
implementations (four of them parallel, one distributed, one sharded
multiprocess) must produce the identical edge set, which in turn must
match networkx.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.edgelist import EdgeList
from repro.graphs.csr import CSRGraph
from repro.mst.registry import available_algorithms, get_algorithm
from repro.mst.verify import verify_minimum, verify_spanning_forest
from repro.runtime.simulated import SimulatedBackend

from tests.conftest import mst_weight_oracle


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 24))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(0, min(max_m, 60)))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    if m:
        pairs = set()
        while len(pairs) < m:
            a, b = rng.integers(0, n, size=2)
            if a != b:
                pairs.add((min(int(a), int(b)), max(int(a), int(b))))
        u, v = np.array(sorted(pairs)).T
        w = rng.uniform(0, 100, size=len(pairs))
    else:
        u = v = np.empty(0, dtype=np.int64)
        w = np.empty(0)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w))


ALL = available_algorithms()


@given(g=random_graphs())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_all_algorithms_agree_and_match_networkx(g):
    backend_needed = {"llp-prim-parallel", "parallel-boruvka", "llp-boruvka"}
    reference = None
    for name in ALL:
        algo = get_algorithm(name)
        backend = SimulatedBackend(3) if name in backend_needed else None
        result = algo(g, backend=backend)
        verify_spanning_forest(g, result)
        if reference is None:
            reference = result.edge_set()
            assert result.total_weight == pytest.approx(mst_weight_oracle(g))
        assert result.edge_set() == reference, f"{name} disagrees"


@given(g=random_graphs())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_duplicate_weights_still_unique_forest(g):
    """Rank tie-breaking: collapse all weights to 3 distinct values; every
    algorithm must still agree on one forest (the rank-canonical one)."""
    w = np.round(np.asarray(g.edge_w) % 3.0)
    g2 = CSRGraph.from_edgelist(g.to_edgelist().with_weights(w))
    ref = None
    for name in ("prim", "llp-prim", "kruskal", "boruvka"):
        result = get_algorithm(name)(g2)
        verify_spanning_forest(g2, result)
        if ref is None:
            ref = result.edge_set()
        assert result.edge_set() == ref, f"{name} disagrees under ties"


def test_registry_lists_and_rejects():
    from repro.errors import BenchmarkError

    names = available_algorithms()
    assert "prim" in names and "llp-boruvka" in names and "sharded" in names
    assert len(names) == 13
    with pytest.raises(BenchmarkError):
        get_algorithm("nope")


def test_registry_adapters_run(fig1_graph):
    for name in available_algorithms():
        result = get_algorithm(name)(fig1_graph, backend=SimulatedBackend(2))
        verify_minimum(fig1_graph, result)
