"""GHS distributed MST: correctness and message complexity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import (
    complete_graph,
    gnm_random_graph,
    path_graph,
    road_network,
)
from repro.mst.ghs import ghs
from repro.mst.verify import verify_minimum

from tests.conftest import FIG1_MST_WEIGHTS, mst_edge_oracle


def test_fig1(fig1_graph):
    result = ghs(fig1_graph)
    weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
    assert weights == FIG1_MST_WEIGHTS


def test_matches_oracle_on_all_morphologies(any_graph):
    result = ghs(any_graph)
    assert result.edge_set() == mst_edge_oracle(any_graph)
    verify_minimum(any_graph, result)


def test_empty_and_trivial():
    assert ghs(from_edges([], n_vertices=0)).n_edges == 0
    r = ghs(from_edges([], n_vertices=3))
    assert r.n_edges == 0 and r.n_components == 3
    assert ghs(from_edges([(0, 1, 2.0)])).n_edges == 1


def test_disconnected_components_each_quiesce():
    g = from_edges([(0, 1, 1.0), (2, 3, 2.0), (3, 4, 0.5)], n_vertices=6)
    r = ghs(g)
    assert r.n_edges == 3
    assert r.n_components == 3


def test_message_complexity_bound():
    """GHS sends O(m + n log n) messages: check with a generous constant."""
    g = road_network(12, 12, seed=3)
    r = ghs(g)
    n, m = g.n_vertices, g.n_edges
    bound = 10 * (2 * m + 5 * n * max(1, int(np.log2(n))))
    assert r.stats["messages"] < bound


def test_level_bound_logarithmic():
    """Fragment levels never exceed log2(n) (each level doubles size)."""
    for seed in range(3):
        g = gnm_random_graph(64, 200, seed=seed)
        r = ghs(g)
        assert r.stats["max_level"] <= int(np.log2(64))


def test_deterministic():
    g = road_network(8, 9, seed=5)
    a, b = ghs(g), ghs(g)
    assert a.edge_set() == b.edge_set()
    assert a.stats == b.stats


def test_dense_graph():
    g = complete_graph(16, seed=6)
    assert ghs(g).edge_set() == mst_edge_oracle(g)


def test_long_path_levels():
    g = path_graph(65, seed=7)
    r = ghs(g)
    assert r.n_edges == 64
    assert r.stats["max_level"] >= 2


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_random_graphs(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 30))
    m = int(rng.integers(0, min(n * (n - 1) // 2, 60)))
    g = gnm_random_graph(n, m, seed=seed)
    result = ghs(g)
    assert result.edge_set() == mst_edge_oracle(g)
    verify_minimum(g, result)
