"""Dynamic MSF maintenance vs recompute-from-scratch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.mst.dynamic import DynamicMSF
from repro.mst.kruskal import kruskal


def _static_weight(d: DynamicMSF) -> float:
    return kruskal(d.snapshot()).total_weight


def test_insert_builds_tree():
    d = DynamicMSF(4)
    d.insert_edge(0, 1, 1.0)
    d.insert_edge(1, 2, 2.0)
    d.insert_edge(2, 3, 3.0)
    assert d.n_tree_edges == 3
    assert d.n_components == 1
    assert d.total_weight() == pytest.approx(6.0)


def test_heavier_cycle_edge_stays_out():
    d = DynamicMSF(3)
    d.insert_edge(0, 1, 1.0)
    d.insert_edge(1, 2, 2.0)
    d.insert_edge(0, 2, 9.0)  # closes a cycle, heavier
    assert d.n_tree_edges == 2
    assert d.total_weight() == pytest.approx(3.0)


def test_lighter_cycle_edge_swaps_in():
    d = DynamicMSF(3)
    d.insert_edge(0, 1, 5.0)
    d.insert_edge(1, 2, 2.0)
    d.insert_edge(0, 2, 1.0)  # lighter than the path max (5)
    assert d.total_weight() == pytest.approx(3.0)
    pairs = {(u, v) for u, v, _ in d.tree_edges()}
    assert (0, 1) not in pairs


def test_delete_non_tree_edge_is_free():
    d = DynamicMSF(3)
    d.insert_edge(0, 1, 1.0)
    d.insert_edge(1, 2, 2.0)
    heavy = d.insert_edge(0, 2, 9.0)
    d.delete_edge(heavy)
    assert d.total_weight() == pytest.approx(3.0)
    assert d.n_edges == 2


def test_delete_tree_edge_promotes_replacement():
    d = DynamicMSF(3)
    light = d.insert_edge(0, 1, 1.0)
    d.insert_edge(1, 2, 2.0)
    d.insert_edge(0, 2, 9.0)  # non-tree backup
    d.delete_edge(light)
    assert d.n_components == 1
    assert d.total_weight() == pytest.approx(11.0)


def test_delete_tree_edge_without_replacement_splits():
    d = DynamicMSF(3)
    e = d.insert_edge(0, 1, 1.0)
    d.insert_edge(1, 2, 2.0)
    d.delete_edge(e)
    assert d.n_components == 2
    assert not d.connected(0, 1)
    assert d.connected(1, 2)


def test_parallel_edges_kept_lightest_in_tree():
    d = DynamicMSF(2)
    a = d.insert_edge(0, 1, 5.0)
    b = d.insert_edge(0, 1, 2.0)
    assert d.total_weight() == pytest.approx(2.0)
    d.delete_edge(b)
    assert d.total_weight() == pytest.approx(5.0)
    assert d.n_tree_edges == 1
    del a


def test_validation():
    d = DynamicMSF(3)
    with pytest.raises(GraphError):
        d.insert_edge(0, 0, 1.0)
    with pytest.raises(GraphError):
        d.insert_edge(0, 9, 1.0)
    with pytest.raises(GraphError):
        d.insert_edge(0, 1, float("nan"))
    with pytest.raises(GraphError):
        d.delete_edge(42)
    with pytest.raises(GraphError):
        DynamicMSF(-1)


def test_connected_and_iter():
    d = DynamicMSF(4)
    d.insert_edge(0, 1, 1.0)
    assert d.connected(0, 1)
    assert d.connected(2, 2)
    assert not d.connected(0, 3)
    assert len(list(d)) == 1


def test_snapshot_collapses_parallel_edges():
    d = DynamicMSF(2)
    d.insert_edge(0, 1, 5.0)
    d.insert_edge(0, 1, 2.0)
    g = d.snapshot()
    assert g.n_edges == 1
    assert g.edge_w[0] == 2.0


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 4)),
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_matches_recompute_under_random_ops(ops):
    """Random insert/delete stream: maintained weight == static MSF weight."""
    n = 10
    d = DynamicMSF(n)
    live: list[int] = []
    rng = np.random.default_rng(0)
    for a, b, action in ops:
        if action == 0 and live:
            # delete a pseudo-random live edge (deterministic pick)
            eid = live.pop((a * 7 + b) % len(live))
            d.delete_edge(eid)
        elif a != b:
            w = float(rng.integers(0, 50))  # deliberate ties
            live.append(d.insert_edge(a, b, w))
        # invariant: maintained forest weight equals the static optimum
        assert d.total_weight() == pytest.approx(_static_weight(d))
        assert d.n_components == n - d.n_tree_edges


def test_large_random_stream_unique_weights():
    rng = np.random.default_rng(3)
    n = 30
    d = DynamicMSF(n)
    ids = []
    for i in range(200):
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        ids.append(d.insert_edge(int(u), int(v), float(rng.random())))
    for eid in rng.choice(ids, size=60, replace=False):
        d.delete_edge(int(eid))
        ids.remove(int(eid))
    assert d.total_weight() == pytest.approx(_static_weight(d))


def test_from_graph_matches_incremental_load():
    from repro.graphs.generators import road_network
    from repro.mst.dynamic import DynamicMSF

    g = road_network(7, 8, seed=11)
    fast = DynamicMSF.from_graph(g)
    slow = DynamicMSF(g.n_vertices)
    for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w):
        slow.insert_edge(int(u), int(v), float(w))
    assert fast.total_weight() == pytest.approx(slow.total_weight())
    assert fast.tree_edges() == slow.tree_edges()
    assert fast.n_edges == g.n_edges


def test_from_graph_then_mutate():
    from repro.graphs.generators import grid_graph
    from repro.mst.dynamic import DynamicMSF

    g = grid_graph(4, 4, seed=12)
    d = DynamicMSF.from_graph(g)
    # delete a tree edge: the forest must repair itself exactly
    tree_edge = int(kruskal(g).edge_ids[0])
    d.delete_edge(tree_edge)
    assert d.total_weight() == pytest.approx(_static_weight(d))
