"""Sequential MST algorithms: Prim, lazy Prim, LLP-Prim, Boruvka, Kruskal,
Filter-Kruskal — per-algorithm behaviour and edge cases."""

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.graphs.builder import from_edges
from repro.graphs.generators import path_graph, star_graph
from repro.mst.boruvka import boruvka
from repro.mst.filter_kruskal import filter_kruskal
from repro.mst.kruskal import kruskal
from repro.mst.llp_prim import llp_prim
from repro.mst.prim import prim
from repro.mst.prim_lazy import prim_lazy

from tests.conftest import FIG1_EDGES, FIG1_MST_WEIGHTS, mst_edge_oracle

SEQUENTIAL = [
    ("prim", prim),
    ("prim_lazy", prim_lazy),
    ("llp_prim", llp_prim),
    ("llp_prim_noearly", lambda g: llp_prim(g, early_fixing=False)),
    ("boruvka", boruvka),
    ("boruvka_vec", lambda g: boruvka(g, vectorized=True)),
    ("kruskal", kruskal),
    ("filter_kruskal", filter_kruskal),
]
IDS = [s[0] for s in SEQUENTIAL]


@pytest.mark.parametrize("name,algo", SEQUENTIAL, ids=IDS)
class TestSequentialContract:
    def test_fig1_worked_example(self, name, algo, fig1_graph):
        """The paper's running example: MST edges have weights {2,3,4,7}."""
        result = algo(fig1_graph)
        weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
        assert weights == FIG1_MST_WEIGHTS
        assert result.total_weight == pytest.approx(16.0)
        assert result.n_components == 1

    def test_matches_oracle_on_all_morphologies(self, name, algo, any_graph):
        result = algo(any_graph)
        assert result.edge_set() == mst_edge_oracle(any_graph)

    def test_empty_graph(self, name, algo):
        g = from_edges([], n_vertices=0)
        result = algo(g)
        assert result.n_edges == 0
        assert result.total_weight == 0.0

    def test_single_vertex(self, name, algo):
        g = from_edges([], n_vertices=1)
        result = algo(g)
        assert result.n_edges == 0
        assert result.n_components == 1

    def test_isolated_vertices_forest(self, name, algo):
        g = from_edges([(0, 1, 1.0), (3, 4, 2.0)], n_vertices=6)
        result = algo(g)
        assert result.n_edges == 2
        assert result.n_components == 4

    def test_two_vertices_one_edge(self, name, algo):
        g = from_edges([(0, 1, 3.5)])
        result = algo(g)
        assert result.n_edges == 1
        assert result.total_weight == pytest.approx(3.5)

    def test_tree_input_returns_all_edges(self, name, algo):
        g = path_graph(10, seed=4)
        result = algo(g)
        assert result.n_edges == 9
        assert result.edge_set() == frozenset(range(9))


# --------------------------------------------------------------- Prim-family
@pytest.mark.parametrize(
    "algo", [prim, prim_lazy, llp_prim], ids=["prim", "lazy", "llp"]
)
def test_msf_false_raises_on_disconnected(algo):
    g = from_edges([(0, 1, 1.0)], n_vertices=3)
    with pytest.raises(DisconnectedGraphError):
        algo(g, msf=False)


@pytest.mark.parametrize(
    "algo", [prim, prim_lazy, llp_prim], ids=["prim", "lazy", "llp"]
)
def test_parent_array_is_rooted_tree(algo, fig1_graph):
    result = algo(fig1_graph)
    parent = result.parent
    assert parent[0] == -1  # default root
    # walking parents always reaches the root
    for v in range(1, 5):
        seen = set()
        x = v
        while x != 0:
            assert x not in seen
            seen.add(x)
            x = int(parent[x])


@pytest.mark.parametrize(
    "algo", [prim, prim_lazy, llp_prim], ids=["prim", "lazy", "llp"]
)
def test_alternative_root(algo, fig1_graph):
    result = algo(fig1_graph, root=3)
    assert result.parent[3] == -1
    weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
    assert weights == FIG1_MST_WEIGHTS


def test_prim_heap_stats_present(fig1_graph):
    st = prim(fig1_graph).stats
    assert st["heap_pops"] >= 4
    assert st["edges_scanned"] == 14  # both directions of all 7 edges


def test_prim_lazy_duplicate_entry_accounting(any_graph):
    st = prim_lazy(any_graph).stats
    # every push is eventually popped (fresh or stale) or drained at the end
    assert st["heap_pops"] <= st["heap_pushes"]
    assert st["stale_pops"] <= st["heap_pops"]
    # lazy insertion does at least as many pushes as there are fixed
    # non-root vertices
    assert st["heap_pushes"] >= 1


# ------------------------------------------------------------------ LLP-Prim
def test_llp_prim_saves_heap_operations(any_graph):
    """The paper's headline mechanism: early fixing cuts heap traffic."""
    base = prim(any_graph).stats
    llp = llp_prim(any_graph).stats
    base_ops = base["heap_pushes"] + base["heap_pops"]
    llp_ops = llp["heap_pushes"] + llp["heap_pops"]
    assert llp_ops <= base_ops
    if any_graph.n_edges > 4:
        assert llp["mwe_fixes"] > 0


def test_llp_prim_fix_counts_add_up(any_graph):
    g = any_graph
    st = llp_prim(g).stats
    from repro.graphs.components import count_components

    n_roots = count_components(g)
    assert st["mwe_fixes"] + st["heap_fixes"] + n_roots == g.n_vertices


def test_llp_prim_no_early_fixing_matches_prim_heap_profile(fig1_graph):
    st = llp_prim(fig1_graph, early_fixing=False).stats
    assert st["mwe_fixes"] == 0
    assert st["heap_fixes"] == 4


def test_llp_prim_fig1_narrative(fig1_graph):
    """Section V-A walks Fig 1: c, b, e fix early; only d uses the heap."""
    st = llp_prim(fig1_graph, root=0).stats
    assert st["mwe_fixes"] == 3  # c (mwe of a), b (mwe of b/c), e (mwe of d/e)
    assert st["heap_fixes"] == 1  # d


# ------------------------------------------------------------------- Boruvka
def test_boruvka_round_count_logarithmic():
    g = path_graph(64, seed=2)
    st = boruvka(g).stats
    assert st["rounds"] <= 8  # components at least halve per round


def test_boruvka_star_single_round():
    g = star_graph(20, seed=1)
    st = boruvka(g).stats
    assert st["rounds"] == 1


def test_boruvka_vectorized_equals_loop(any_graph):
    a = boruvka(any_graph)
    b = boruvka(any_graph, vectorized=True)
    assert a.edge_set() == b.edge_set()


# ------------------------------------------------------------------- Kruskal
def test_kruskal_early_exit():
    g = from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    st = kruskal(g).stats
    assert st["edges_scanned"] == 2  # stops after n-1 unions


def test_filter_kruskal_filters_on_larger_input():
    from repro.graphs.generators import gnm_random_graph

    g = gnm_random_graph(60, 500, seed=8)
    res = filter_kruskal(g)
    assert res.stats["partitions"] >= 1
    assert res.stats["filtered_out"] > 0
    assert res.edge_set() == mst_edge_oracle(g)
