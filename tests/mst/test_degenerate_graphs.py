"""Degenerate-graph regression tests: empty, single-vertex, isolated.

Every registered algorithm — in every kernel mode it supports — must
handle the zero-edge corner cases without special-casing by callers:

* the empty graph (0 vertices, 0 edges),
* a single vertex with no edges,
* isolated vertices alongside a real component (MSF with singletons).

The zero-edge guard lives in one place (``CSRGraph.__init__`` defines
``ranks``/``half_ranks`` as empty int64 arrays); these tests pin every
algorithm to it.
"""

from __future__ import annotations

import pytest

from repro.graphs.builder import from_edges
from repro.mst.registry import (
    PARALLEL_ALGORITHMS,
    algorithm_info,
    available_algorithms,
    get_algorithm,
)
from repro.runtime.simulated import SimulatedBackend


def _all_algo_modes():
    for name in available_algorithms():
        for mode in algorithm_info(name).modes:
            yield name, mode


CASES = list(_all_algo_modes())


def _run(name, mode, g):
    algo = get_algorithm(name, mode=mode)
    backend = SimulatedBackend(2) if name in PARALLEL_ALGORITHMS else None
    return algo(g, backend=backend)


@pytest.mark.parametrize("name,mode", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_empty_graph(name, mode):
    g = from_edges([], n_vertices=0)
    assert g.ranks.size == 0 and g.half_ranks.size == 0
    result = _run(name, mode, g)
    assert result.n_edges == 0
    assert result.total_weight == 0.0


@pytest.mark.parametrize("name,mode", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_single_vertex(name, mode):
    g = from_edges([], n_vertices=1)
    result = _run(name, mode, g)
    assert result.n_edges == 0
    assert result.n_components == 1


@pytest.mark.parametrize("name,mode", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_isolated_vertices_beside_component(name, mode):
    # Vertices 3 and 4 are isolated; MSF = the triangle's two lightest edges.
    from repro.mst.kruskal import kruskal

    g = from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)], n_vertices=5)
    result = _run(name, mode, g)
    assert result.edge_set() == kruskal(g).edge_set()
    assert result.n_components == 3
    assert result.total_weight == pytest.approx(3.0)
