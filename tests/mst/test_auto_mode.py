"""mode="auto" cost-model dispatch: correctness, safety, persistence.

Three properties pin the adaptive selector down:

* **universality** — ``get_algorithm(name, mode="auto")`` works for
  *every* registered algorithm (loop-only ones resolve to their only
  mode) and returns the exact Kruskal-oracle MSF on every adversarial
  graph family;
* **safety** — :func:`repro.mst.autotune.choose_mode` never returns a
  mode the registry marks regression-prone, on any graph shape;
* **persistence** — a calibration file overrides the shipped crossovers
  and malformed entries are ignored, never fatal.
"""

from __future__ import annotations

import json

import pytest

from repro.checking.families import family_names, generate_case
from repro.mst.autotune import (
    DEFAULT_CROSSOVERS,
    Crossover,
    autotune_path,
    choose_mode,
    invalidate_cache,
    load_crossovers,
)
from repro.mst.kruskal import kruskal
from repro.mst.registry import (
    PARALLEL_ALGORITHMS,
    algorithm_info,
    get_algorithm,
    list_algorithm_info,
)
from repro.runtime.simulated import SimulatedBackend

# A spread of (n_vertices, n_edges) shapes from degenerate to dense.
SHAPES = [
    (0, 0), (1, 0), (2, 1), (10, 9), (100, 99), (100, 5000),
    (1_000, 2_000), (1_000, 100_000), (33_000, 100_000),
    (1_000_000, 3_000_000), (10_000, 10_000_000),
]


def _run(name: str, mode: str | None, g):
    algo = get_algorithm(name, mode=mode)
    backend = SimulatedBackend(4) if name in PARALLEL_ALGORITHMS else None
    return algo(g, backend=backend) if backend else algo(g)


def test_auto_is_accepted_by_every_algorithm(fig1_graph):
    oracle = kruskal(fig1_graph).edge_set()
    for info in list_algorithm_info():
        if info.name == "sharded":
            continue  # exercised by tests/shard (needs shard kwargs)
        assert _run(info.name, "auto", fig1_graph).edge_set() == oracle, info.name


@pytest.mark.parametrize("family", family_names())
def test_auto_matches_oracle_on_every_family(family):
    """Auto-mode solves == Kruskal oracle across the adversarial families."""
    for seed in (0, 1):
        g = generate_case(family, seed=seed, size=12).graph
        oracle = kruskal(g).edge_set()
        for name in ("prim", "boruvka", "llp-prim", "llp-boruvka"):
            res = _run(name, "auto", g)
            assert res.edge_set() == oracle, (family, seed, name)


def test_choose_mode_never_picks_regression_prone():
    for info in list_algorithm_info():
        for n, m in SHAPES:
            mode = choose_mode(info.name, n, m)
            assert mode in info.modes or mode == "loop"
            assert mode not in info.regression_prone, (info.name, n, m)


def test_llp_prim_auto_resolves_to_loop_even_when_dense():
    """The frontier cascade is regression-prone: dense shapes stay loop."""
    assert "vectorized" in algorithm_info("llp-prim").regression_prone
    assert choose_mode("llp-prim", 1_000, 100_000) == "loop"


def test_choose_mode_thresholds_for_prim():
    cross = DEFAULT_CROSSOVERS["prim"]
    # Too few edges -> loop, regardless of density.
    assert choose_mode("prim", 4, cross.min_edges - 1) == "loop"
    # Dense and big enough -> vectorized (avg degree 2m/n >= crossover).
    n = 1_000
    m = int(n * cross.min_avg_degree)  # avg degree 2x the crossover
    assert choose_mode("prim", n, m) == "vectorized"
    # Big but sparse -> loop.
    assert choose_mode("prim", 100_000, 150_000) == "loop"


def test_choose_mode_loop_only_algorithms():
    assert choose_mode("kruskal", 1_000_000, 10_000_000) == "loop"
    assert choose_mode("ghs", 1_000, 100_000) == "loop"


def test_calibration_file_overrides_defaults(tmp_path, monkeypatch):
    path = tmp_path / "autotune.json"
    monkeypatch.setenv("REPRO_AUTOTUNE_PATH", str(path))
    invalidate_cache()
    assert autotune_path() == path
    try:
        # No file yet: shipped defaults.
        assert load_crossovers() == DEFAULT_CROSSOVERS
        # Persisted calibration wins after a cache drop.
        path.write_text(json.dumps({
            "boruvka": {"min_edges": 7, "min_avg_degree": 3.5},
            "no-such-algorithm": {"min_edges": 1, "min_avg_degree": 0.0},
            "prim": "garbage",
            "_meta": {"machine": "test"},
        }))
        invalidate_cache()
        table = load_crossovers()
        assert table["boruvka"] == Crossover(min_edges=7, min_avg_degree=3.5)
        # Malformed / unknown entries are ignored, defaults retained.
        assert table["prim"] == DEFAULT_CROSSOVERS["prim"]
        assert "no-such-algorithm" not in table
        # choose_mode sees the override: 8 edges now clears boruvka's bar
        # (avg degree 2*8/4 = 4.0 >= 3.5).
        assert choose_mode("boruvka", 4, 8) == "vectorized"
        assert choose_mode("boruvka", 100, 8) == "loop"  # degree below bar
    finally:
        invalidate_cache()


def test_unreachable_threshold_never_selects_vectorized(tmp_path, monkeypatch):
    """calibrate() writes 1<<62 when vectorized never wins; auto honors it."""
    path = tmp_path / "autotune.json"
    monkeypatch.setenv("REPRO_AUTOTUNE_PATH", str(path))
    path.write_text(json.dumps(
        {"boruvka": {"min_edges": 1 << 62, "min_avg_degree": 0.0}}
    ))
    invalidate_cache()
    try:
        for n, m in SHAPES:
            assert choose_mode("boruvka", n, m) == "loop"
    finally:
        invalidate_cache()
