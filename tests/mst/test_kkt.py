"""Karger-Klein-Tarjan randomized MSF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, rmat_graph, road_network
from repro.mst.kkt import kkt
from repro.mst.kruskal import kruskal
from repro.mst.verify import verify_minimum

from tests.conftest import mst_edge_oracle


def test_matches_oracle_on_all_morphologies(any_graph):
    result = kkt(any_graph)
    assert result.edge_set() == mst_edge_oracle(any_graph)
    verify_minimum(any_graph, result)


@pytest.mark.parametrize("seed", range(6))
def test_randomization_never_changes_output(seed):
    g = road_network(10, 11, seed=1)
    oracle = mst_edge_oracle(g)
    assert kkt(g, seed=seed).edge_set() == oracle


def test_deterministic_under_same_seed():
    g = gnm_random_graph(60, 240, seed=2)
    a, b = kkt(g, seed=5), kkt(g, seed=5)
    assert a.edge_set() == b.edge_set()
    assert a.stats == b.stats


def test_recursion_actually_happens():
    g = gnm_random_graph(300, 2500, seed=3)
    result = kkt(g)
    assert result.stats["boruvka_steps"] >= 2
    assert result.stats["sampled_edges"] > 0
    assert result.edge_set() == mst_edge_oracle(g)


def test_fheavy_edges_are_discarded_on_dense_graphs():
    g = gnm_random_graph(120, 3000, seed=4)
    result = kkt(g, seed=1)
    assert result.stats["fheavy_discarded"] > 0
    assert result.edge_set() == mst_edge_oracle(g)


def test_empty_and_trivial():
    assert kkt(from_edges([], n_vertices=0)).n_edges == 0
    assert kkt(from_edges([], n_vertices=4)).n_edges == 0
    r = kkt(from_edges([(0, 1, 2.0)]))
    assert r.n_edges == 1


def test_disconnected_forest():
    g = from_edges([(0, 1, 1.0), (2, 3, 2.0), (3, 4, 0.5)], n_vertices=6)
    r = kkt(g)
    assert r.n_edges == 3
    assert r.n_components == 3


def test_scalefree_graph():
    g = rmat_graph(9, 8, seed=5)
    assert kkt(g, seed=2).edge_set() == mst_edge_oracle(g)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_graphs_random_seeds(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    m = int(rng.integers(0, min(n * (n - 1) // 2, 80)))
    g = gnm_random_graph(n, m, seed=seed)
    result = kkt(g, seed=seed)
    assert result.edge_set() == mst_edge_oracle(g)
