"""Exhaustive sweep: every graph on <= 4 vertices, all eleven algorithms.

Enumerates all 64 edge subsets of K4 (plus every K5 subset at one seed,
sampled) with randomized distinct weights and checks that each algorithm
returns exactly the Kruskal forest.  Small graphs are where boundary bugs
live (empty forests, single edges, two-edge cycles, isolated vertices).
"""

import itertools

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.mst.registry import available_algorithms, get_algorithm
from repro.mst.verify import verify_spanning_forest
from repro.runtime.simulated import SimulatedBackend

K4_EDGES = list(itertools.combinations(range(4), 2))  # 6 possible edges
ALGOS = available_algorithms()


def _graph_for(subset, seed):
    rng = np.random.default_rng(seed)
    triples = [(u, v, float(w)) for (u, v), w in zip(subset, rng.random(len(subset)))]
    return from_edges(triples, n_vertices=4)


@pytest.mark.parametrize("mask", range(64))
def test_all_k4_subsets_all_algorithms(mask):
    subset = [e for i, e in enumerate(K4_EDGES) if mask & (1 << i)]
    g = _graph_for(subset, seed=mask)
    reference = None
    for name in ALGOS:
        backend = SimulatedBackend(2)
        result = get_algorithm(name)(g, backend=backend)
        verify_spanning_forest(g, result)
        if reference is None:
            reference = result.edge_set()
        assert result.edge_set() == reference, f"{name} differs on mask {mask}"


def test_k5_subset_sample():
    k5_edges = list(itertools.combinations(range(5), 2))  # 10 edges
    rng = np.random.default_rng(99)
    for mask in rng.integers(0, 1 << 10, size=40):
        subset = [e for i, e in enumerate(k5_edges) if int(mask) & (1 << i)]
        triples = [
            (u, v, float(w)) for (u, v), w in zip(subset, rng.random(len(subset)))
        ]
        g = from_edges(triples, n_vertices=5)
        reference = None
        for name in ALGOS:
            result = get_algorithm(name)(g, backend=SimulatedBackend(3))
            if reference is None:
                reference = result.edge_set()
            assert result.edge_set() == reference, f"{name} differs on mask {mask}"
