"""Parallel MST algorithms across all backends."""

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, rmat_graph, road_network
from repro.mst.llp_boruvka import llp_boruvka
from repro.mst.llp_prim_parallel import llp_prim_parallel
from repro.mst.parallel_boruvka import parallel_boruvka
from repro.runtime.sequential import SequentialBackend
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threads import ThreadBackend

from tests.conftest import FIG1_MST_WEIGHTS, mst_edge_oracle

PARALLEL = [
    ("llp_prim_parallel", lambda g, b: llp_prim_parallel(g, backend=b)),
    ("parallel_boruvka", parallel_boruvka),
    ("llp_boruvka", llp_boruvka),
]
IDS = [p[0] for p in PARALLEL]


@pytest.mark.parametrize("name,algo", PARALLEL, ids=IDS)
class TestParallelContract:
    def test_fig1(self, name, algo, fig1_graph):
        result = algo(fig1_graph, SequentialBackend())
        weights = {fig1_graph.edge_weight(int(e)) for e in result.edge_ids}
        assert weights == FIG1_MST_WEIGHTS

    def test_matches_oracle_on_all_morphologies(self, name, algo, any_graph):
        result = algo(any_graph, SimulatedBackend(4))
        assert result.edge_set() == mst_edge_oracle(any_graph)

    def test_worker_count_does_not_change_output(self, name, algo):
        g = road_network(8, 9, seed=11)
        oracle = mst_edge_oracle(g)
        for p in (1, 3, 8):
            assert algo(g, SimulatedBackend(p)).edge_set() == oracle

    def test_thread_backend_output(self, name, algo):
        g = rmat_graph(7, 5, seed=12)
        oracle = mst_edge_oracle(g)
        with ThreadBackend(4) as tb:
            assert algo(g, tb).edge_set() == oracle

    def test_thread_backend_repeated_runs_consistent(self, name, algo):
        """Schedule nondeterminism must never leak into the result."""
        g = gnm_random_graph(40, 120, seed=13)
        oracle = mst_edge_oracle(g)
        for _ in range(3):
            with ThreadBackend(3) as tb:
                assert algo(g, tb).edge_set() == oracle

    def test_empty_and_trivial(self, name, algo):
        assert algo(from_edges([], n_vertices=0), SequentialBackend()).n_edges == 0
        r = algo(from_edges([], n_vertices=3), SequentialBackend())
        assert r.n_edges == 0
        assert r.n_components == 3

    def test_disconnected_msf(self, name, algo):
        g = from_edges([(0, 1, 1.0), (2, 3, 2.0), (3, 4, 0.5)], n_vertices=6)
        r = algo(g, SimulatedBackend(2))
        assert r.n_edges == 3
        assert r.n_components == 3

    def test_trace_is_produced(self, name, algo):
        g = road_network(6, 6, seed=14)
        b = SimulatedBackend(4)
        algo(g, b)
        assert b.trace.total_work > 0
        assert b.modelled_time() > 0


def test_llp_prim_parallel_msf_false_raises():
    g = from_edges([(0, 1, 1.0)], n_vertices=3)
    with pytest.raises(DisconnectedGraphError):
        llp_prim_parallel(g, backend=SequentialBackend(), msf=False)


def test_llp_prim_parallel_pipelined_heap_work():
    g = road_network(8, 8, seed=15)
    b = SimulatedBackend(4)
    llp_prim_parallel(g, backend=b)
    assert b.trace.pipelined_units > 0  # heap runs on the coordinator stream
    async_rounds = [r for r in b.trace.rounds if not r.barrier]
    assert async_rounds  # bag regions are asynchronous


def test_llp_prim_parallel_matches_sequential_llp_prim():
    from repro.mst.llp_prim import llp_prim

    g = road_network(9, 9, seed=16)
    seq = llp_prim(g)
    par = llp_prim_parallel(g, backend=SequentialBackend())
    assert par.edge_set() == seq.edge_set()
    assert par.stats["mwe_fixes"] == seq.stats["mwe_fixes"]


def test_parallel_boruvka_round_count_logarithmic():
    g = road_network(10, 10, seed=17)
    r = parallel_boruvka(g, SequentialBackend())
    assert r.stats["rounds"] <= 12


def test_parallel_boruvka_all_rounds_are_barriers():
    g = road_network(6, 7, seed=18)
    b = SimulatedBackend(4)
    parallel_boruvka(g, b)
    assert all(rec.barrier for rec in b.trace.rounds)


def test_llp_boruvka_levels_and_jumps():
    g = road_network(10, 10, seed=19)
    r = llp_boruvka(g, SimulatedBackend(4))
    assert 1 <= r.stats["levels"] <= 12
    assert r.stats["jump_rounds"] >= 1


def test_llp_boruvka_compact_vs_multiedge_identical_forest(any_graph):
    a = llp_boruvka(any_graph, compact=True)
    b = llp_boruvka(any_graph, compact=False)
    assert a.edge_set() == b.edge_set()


def test_llp_boruvka_uses_async_jump_regions():
    g = road_network(8, 8, seed=20)
    b = SimulatedBackend(4)
    llp_boruvka(g, b)
    kinds = {rec.barrier for rec in b.trace.rounds}
    assert kinds == {True, False}  # barrier phases + async pointer jumping


def test_llp_boruvka_work_less_than_parallel_boruvka():
    """The measured mechanism behind Figs 3-4: no union-find, no atomics."""
    g = road_network(12, 12, seed=21)
    b1, b2 = SimulatedBackend(8), SimulatedBackend(8)
    llp_boruvka(g, b1)
    parallel_boruvka(g, b2)
    assert b1.trace.total_work < b2.trace.total_work


def test_parallel_filter_kruskal_contract(any_graph):
    from repro.mst.parallel_filter_kruskal import parallel_filter_kruskal

    for backend in (SequentialBackend(), SimulatedBackend(4)):
        result = parallel_filter_kruskal(any_graph, backend)
        assert result.edge_set() == mst_edge_oracle(any_graph)


def test_parallel_filter_kruskal_on_threads():
    from repro.mst.parallel_filter_kruskal import parallel_filter_kruskal

    g = gnm_random_graph(80, 500, seed=41)
    oracle = mst_edge_oracle(g)
    for _ in range(3):
        with ThreadBackend(4) as tb:
            assert parallel_filter_kruskal(g, tb).edge_set() == oracle


def test_parallel_filter_kruskal_filters_in_rounds():
    from repro.mst.parallel_filter_kruskal import parallel_filter_kruskal

    g = gnm_random_graph(150, 4000, seed=42)
    b = SimulatedBackend(8)
    result = parallel_filter_kruskal(g, b)
    assert result.stats["filter_rounds"] >= 1
    assert result.stats["filtered_out"] > 100
    # early termination: once n-1 edges are chosen from the light
    # recursion, the heavy 3/4 of the edge mass is never even filtered
    assert result.stats["partitions"] <= 6
    assert b.trace.n_rounds >= 2
    assert result.edge_set() == mst_edge_oracle(g)
