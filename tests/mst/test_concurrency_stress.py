"""Concurrency stress: the parallel algorithms under real-thread hammering.

Every race-prone path gets exercised repeatedly under genuine
interleavings: CAS vertex claims and packed fetch-min relaxations
(LLP-Prim), concurrent union-find hooks (parallel Boruvka), asynchronous
pointer jumping through a mutating array (LLP-Boruvka).  The invariant is
always the same: the output equals the unique MSF, run after run.
"""

import numpy as np
import pytest

from repro.graphs.generators import (
    barabasi_albert_graph,
    gnm_random_graph,
    rmat_graph,
    road_network,
)
from repro.mst.llp_boruvka import llp_boruvka
from repro.mst.llp_prim_parallel import llp_prim_parallel
from repro.mst.parallel_boruvka import parallel_boruvka
from repro.runtime.threads import ThreadBackend

from tests.conftest import mst_edge_oracle

GRAPHS = [
    ("road", lambda: road_network(9, 9, seed=31)),
    ("rmat", lambda: rmat_graph(8, 6, seed=32)),
    ("ba", lambda: barabasi_albert_graph(120, 3, seed=33)),
    ("gnm-disconnected", lambda: gnm_random_graph(80, 60, seed=34)),
]
ALGOS = [
    ("llp-prim", lambda g, b: llp_prim_parallel(g, backend=b)),
    ("boruvka", parallel_boruvka),
    ("llp-boruvka", llp_boruvka),
]


@pytest.mark.parametrize("gname,make", GRAPHS, ids=[g[0] for g in GRAPHS])
@pytest.mark.parametrize("aname,algo", ALGOS, ids=[a[0] for a in ALGOS])
def test_repeated_threaded_runs_always_exact(gname, make, aname, algo):
    g = make()
    oracle = mst_edge_oracle(g)
    for workers in (2, 5):
        for _ in range(3):
            with ThreadBackend(workers) as tb:
                result = algo(g, tb)
            assert result.edge_set() == oracle, (
                f"{aname} diverged on {gname} at {workers} workers"
            )


def test_shared_backend_across_sequential_calls():
    """One thread pool reused for several algorithm runs stays coherent."""
    g = road_network(7, 7, seed=35)
    oracle = mst_edge_oracle(g)
    with ThreadBackend(3) as tb:
        for algo in (parallel_boruvka, llp_boruvka):
            assert algo(g, tb).edge_set() == oracle
        assert llp_prim_parallel(g, backend=tb).edge_set() == oracle
        # the shared trace accumulated all three runs
        assert tb.trace.n_rounds > 10
