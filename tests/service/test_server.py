"""Asyncio front-end: coalescing, LRU cache, backpressure, degradation."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError, ServiceOverloadError, ServiceTimeoutError
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.service.artifacts import ArtifactStore
from repro.service.core import MSTService
from repro.service.server import AsyncMSTService


def _run(coro):
    """Drive one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def _service(tmp_path, n=80, m=180, seed=3):
    svc = MSTService(ArtifactStore(tmp_path))
    g = gnm_random_graph(n, m, seed=seed)
    svc.load_graph(g)
    return svc, g


def test_concurrent_queries_coalesce_into_batches(tmp_path):
    svc, g = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_batch=64, max_delay_s=0.01) as srv:
            pairs = [(i % 80, (i * 7) % 80) for i in range(100)]
            return await asyncio.gather(
                *(srv.query("bottleneck", u, v) for u, v in pairs)
            ), pairs

    results, pairs = _run(main())
    engine = svc.ensure_ready()
    expect = engine.bottleneck_many([u for u, _ in pairs], [v for _, v in pairs])
    assert np.allclose(results, expect)
    hist = svc.metrics.summary()["batch_histogram"]
    assert max(int(k) for k in hist) > 1  # at least one multi-request batch


def test_repeat_query_hits_lru_cache(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            a = await srv.query("connected", 0, 1)
            b = await srv.query("connected", 0, 1)
            return a, b

    a, b = _run(main())
    assert a == b
    s = svc.metrics.summary()["cache"]
    assert s["hits"] == 1 and s["misses"] == 1  # second call never queued


def test_lru_cache_evicts_oldest(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, cache_size=2) as srv:
            await srv.query("component", 0)
            await srv.query("component", 1)
            await srv.query("component", 2)  # evicts the (component, 0) entry
            await srv.query("component", 0)
            return svc.metrics.summary()["cache"]

    s = _run(main())
    assert s["hits"] == 0 and s["misses"] == 4


def test_backpressure_bounds_queue(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_pending=4, max_delay_s=0.001)
        # Not started: puts would block forever, so query() refuses instead.
        with pytest.raises(ServiceError, match="not started"):
            await srv.query("connected", 0, 1)
        async with srv:
            assert srv.pending <= 4
            out = await asyncio.gather(
                *(srv.query("component", i % 80) for i in range(200))
            )
            assert len(out) == 200
        return True

    assert _run(main())


def test_unknown_kind_and_per_request_errors(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            with pytest.raises(ServiceError, match="unknown query kind"):
                await srv.query("nonsense", 0, 1)
            # out-of-range vertex fails its own request but not the worker
            with pytest.raises(Exception):
                await srv.query("connected", 0, 10**9)
            return await srv.query("connected", 0, 0)

    assert _run(main()) is True


def test_graceful_degradation_recomputes_after_invalidate(tmp_path):
    svc, g = _service(tmp_path)
    expect = kruskal(g).total_weight

    async def main():
        async with AsyncMSTService(svc) as srv:
            svc.invalidate()  # drops the engine; worker must rebuild inline
            return await srv.query("weight")

    assert _run(main()) == pytest.approx(expect)


def test_stop_flushes_pending_requests(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_delay_s=0.05)
        await srv.start()
        futs = [asyncio.ensure_future(srv.query("component", i)) for i in range(10)]
        await asyncio.sleep(0)  # let the puts land
        await srv.stop()
        return await asyncio.gather(*futs)

    out = _run(main())
    assert len(out) == 10 and all(isinstance(x, int) for x in out)


def test_serve_latency_metrics_recorded(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            for _ in range(5):
                await srv.query("bottleneck", 1, 2)

    _run(main())
    pct = svc.metrics.latency_percentiles("serve:bottleneck")
    assert pct and pct["p99"] >= pct["p50"] >= 0.0
    assert svc.metrics.summary()["queries"]["serve:bottleneck"]["count"] == 5


def test_stop_drains_requests_enqueued_behind_sentinel(tmp_path):
    """Shutdown regression: a request can race onto the queue *behind* the
    stop sentinel; stop() must answer it, not abandon its future."""
    from repro.service.server import _STOP

    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_batch=4, max_delay_s=0.001)
        await srv.start()
        loop = asyncio.get_running_loop()
        futures = []
        # Stage the exact shutdown race without yielding to the worker:
        # requests, then the sentinel, then more requests behind it.
        for i in range(3):
            fut = loop.create_future()
            futures.append(fut)
            srv._queue.put_nowait((("component", i, None, None), fut, 0.0))
        srv._queue.put_nowait(_STOP)
        for i in range(3, 9):
            fut = loop.create_future()
            futures.append(fut)
            srv._queue.put_nowait((("component", i, None, None), fut, 0.0))
        await asyncio.wait_for(srv._worker, timeout=10)
        return await asyncio.wait_for(asyncio.gather(*futures), timeout=10)

    out = _run(main())
    assert len(out) == 9 and all(isinstance(x, int) for x in out)


# ----------------------------------------------------------------------
# Open-loop submission, deadlines, and saturation accounting
# ----------------------------------------------------------------------
def test_query_nowait_sheds_load_when_the_queue_is_full(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_pending=2, max_delay_s=0.05,
                                   cache_size=1) as srv:
            futures, rejected = [], 0
            for i in range(50):  # no yields: the worker can't drain between puts
                try:
                    futures.append(srv.query_nowait("component", i % 80))
                except ServiceOverloadError:
                    rejected += 1
            answered = await asyncio.gather(*futures)
            return rejected, answered

    rejected, answered = _run(main())
    assert rejected > 0 and len(answered) == 50 - rejected
    assert all(isinstance(x, int) for x in answered)
    assert svc.metrics.rejected == rejected
    assert svc.metrics.summary()["queue"]["rejected"] == rejected


def test_query_nowait_serves_cache_hits_without_queueing(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_pending=1) as srv:
            await srv.query("connected", 0, 1)  # populate the cache
            fut = srv.query_nowait("connected", 0, 1)
            assert fut.done()  # resolved inline, never enqueued
            return await fut

    assert _run(main()) in (True, False)
    assert svc.metrics.cache_hits == 1


def test_duplicate_hot_keys_coalesce_to_consistent_answers(tmp_path):
    svc, g = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_batch=128, max_delay_s=0.01) as srv:
            futs = [srv.query_nowait("bottleneck", 3, 9) for _ in range(60)]
            return await asyncio.gather(*futs)

    out = _run(main())
    expect = svc.ensure_ready().bottleneck_many([3], [9])[0]
    assert all(x == expect for x in out)
    # Every answer beyond the per-batch executions came from the cache.
    s = svc.metrics.summary()["cache"]
    assert s["hits"] + svc.metrics.summary()["queries"].get(
        "serve:bottleneck", {}
    ).get("count", 0) == 60


def test_expired_deadline_times_out_at_dequeue(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, cache_size=1) as srv:
            futs = [srv.query_nowait("component", i, timeout_s=1e-9)
                    for i in range(5)]
            return await asyncio.gather(*futs, return_exceptions=True)

    out = _run(main())
    assert all(isinstance(x, ServiceTimeoutError) for x in out)
    assert svc.metrics.timeouts == 5
    assert svc.metrics.summary()["queue"]["timeouts"] == 5
    assert "timeouts=5" in svc.metrics.render()


def test_generous_deadline_answers_normally(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            return await srv.query("connected", 0, 1, timeout_s=30.0)

    assert _run(main()) in (True, False)
    assert svc.metrics.timeouts == 0


def test_nonpositive_timeout_rejected(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            with pytest.raises(ServiceError, match="timeout_s"):
                await srv.query("connected", 0, 1, timeout_s=0.0)
            with pytest.raises(ServiceError, match="timeout_s"):
                srv.query_nowait("connected", 0, 1, timeout_s=-1.0)
        return True

    assert _run(main())


def test_flush_remaining_never_drops_or_double_completes(tmp_path):
    """stop() must answer every queued future exactly once — expired ones
    with ServiceTimeoutError, live ones with a result."""
    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_batch=4, max_delay_s=0.05)
        await srv.start()
        live = [srv.query_nowait("component", i) for i in range(6)]
        dead = [srv.query_nowait("component", 40 + i, timeout_s=1e-9)
                for i in range(6)]
        # No yield between puts and stop: everything flushes at shutdown.
        await srv.stop()
        return (
            await asyncio.gather(*live),
            await asyncio.gather(*dead, return_exceptions=True),
        )

    answered, timed_out = _run(main())
    assert len(answered) == 6 and all(isinstance(x, int) for x in answered)
    assert all(isinstance(x, ServiceTimeoutError) for x in timed_out)
    assert svc.metrics.timeouts == 6


def test_queue_depth_gauge_tracks_the_drain_loop(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_batch=8, max_delay_s=0.001,
                                   cache_size=1) as srv:
            futs = [srv.query_nowait("component", i % 80) for i in range(64)]
            await asyncio.gather(*futs)

    _run(main())
    assert svc.metrics.queue_samples > 0
    assert svc.metrics.queue_depth_max >= 0
    q = svc.metrics.summary()["queue"]
    assert q["samples"] == svc.metrics.queue_samples
    assert q["max_depth"] == svc.metrics.queue_depth_max
