"""Asyncio front-end: coalescing, LRU cache, backpressure, degradation."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.service.artifacts import ArtifactStore
from repro.service.core import MSTService
from repro.service.server import AsyncMSTService


def _run(coro):
    """Drive one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def _service(tmp_path, n=80, m=180, seed=3):
    svc = MSTService(ArtifactStore(tmp_path))
    g = gnm_random_graph(n, m, seed=seed)
    svc.load_graph(g)
    return svc, g


def test_concurrent_queries_coalesce_into_batches(tmp_path):
    svc, g = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, max_batch=64, max_delay_s=0.01) as srv:
            pairs = [(i % 80, (i * 7) % 80) for i in range(100)]
            return await asyncio.gather(
                *(srv.query("bottleneck", u, v) for u, v in pairs)
            ), pairs

    results, pairs = _run(main())
    engine = svc.ensure_ready()
    expect = engine.bottleneck_many([u for u, _ in pairs], [v for _, v in pairs])
    assert np.allclose(results, expect)
    hist = svc.metrics.summary()["batch_histogram"]
    assert max(int(k) for k in hist) > 1  # at least one multi-request batch


def test_repeat_query_hits_lru_cache(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            a = await srv.query("connected", 0, 1)
            b = await srv.query("connected", 0, 1)
            return a, b

    a, b = _run(main())
    assert a == b
    s = svc.metrics.summary()["cache"]
    assert s["hits"] == 1 and s["misses"] == 1  # second call never queued


def test_lru_cache_evicts_oldest(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc, cache_size=2) as srv:
            await srv.query("component", 0)
            await srv.query("component", 1)
            await srv.query("component", 2)  # evicts the (component, 0) entry
            await srv.query("component", 0)
            return svc.metrics.summary()["cache"]

    s = _run(main())
    assert s["hits"] == 0 and s["misses"] == 4


def test_backpressure_bounds_queue(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_pending=4, max_delay_s=0.001)
        # Not started: puts would block forever, so query() refuses instead.
        with pytest.raises(ServiceError, match="not started"):
            await srv.query("connected", 0, 1)
        async with srv:
            assert srv.pending <= 4
            out = await asyncio.gather(
                *(srv.query("component", i % 80) for i in range(200))
            )
            assert len(out) == 200
        return True

    assert _run(main())


def test_unknown_kind_and_per_request_errors(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            with pytest.raises(ServiceError, match="unknown query kind"):
                await srv.query("nonsense", 0, 1)
            # out-of-range vertex fails its own request but not the worker
            with pytest.raises(Exception):
                await srv.query("connected", 0, 10**9)
            return await srv.query("connected", 0, 0)

    assert _run(main()) is True


def test_graceful_degradation_recomputes_after_invalidate(tmp_path):
    svc, g = _service(tmp_path)
    expect = kruskal(g).total_weight

    async def main():
        async with AsyncMSTService(svc) as srv:
            svc.invalidate()  # drops the engine; worker must rebuild inline
            return await srv.query("weight")

    assert _run(main()) == pytest.approx(expect)


def test_stop_flushes_pending_requests(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_delay_s=0.05)
        await srv.start()
        futs = [asyncio.ensure_future(srv.query("component", i)) for i in range(10)]
        await asyncio.sleep(0)  # let the puts land
        await srv.stop()
        return await asyncio.gather(*futs)

    out = _run(main())
    assert len(out) == 10 and all(isinstance(x, int) for x in out)


def test_serve_latency_metrics_recorded(tmp_path):
    svc, _ = _service(tmp_path)

    async def main():
        async with AsyncMSTService(svc) as srv:
            for _ in range(5):
                await srv.query("bottleneck", 1, 2)

    _run(main())
    pct = svc.metrics.latency_percentiles("serve:bottleneck")
    assert pct and pct["p99"] >= pct["p50"] >= 0.0
    assert svc.metrics.summary()["queries"]["serve:bottleneck"]["count"] == 5


def test_stop_drains_requests_enqueued_behind_sentinel(tmp_path):
    """Shutdown regression: a request can race onto the queue *behind* the
    stop sentinel; stop() must answer it, not abandon its future."""
    from repro.service.server import _STOP

    svc, _ = _service(tmp_path)

    async def main():
        srv = AsyncMSTService(svc, max_batch=4, max_delay_s=0.001)
        await srv.start()
        loop = asyncio.get_running_loop()
        futures = []
        # Stage the exact shutdown race without yielding to the worker:
        # requests, then the sentinel, then more requests behind it.
        for i in range(3):
            fut = loop.create_future()
            futures.append(fut)
            srv._queue.put_nowait((("component", i, None, None), fut, 0.0))
        srv._queue.put_nowait(_STOP)
        for i in range(3, 9):
            fut = loop.create_future()
            futures.append(fut)
            srv._queue.put_nowait((("component", i, None, None), fut, 0.0))
        await asyncio.wait_for(srv._worker, timeout=10)
        return await asyncio.wait_for(asyncio.gather(*futures), timeout=10)

    out = _run(main())
    assert len(out) == 9 and all(isinstance(x, int) for x in out)
