"""Batched query engine vs brute-force recomputation."""

import numpy as np
import pytest

from repro.errors import GraphError, ServiceError
from repro.graphs.builder import from_edges
from repro.graphs.components import components_union_find
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.runtime.simulated import SimulatedBackend
from repro.service.artifacts import build_artifact
from repro.service.engine import QUERY_KINDS, QueryEngine


def _brute_bottleneck(g, msf_edge_ids):
    """Dict-BFS minimax path weight over the MSF (the slow reference)."""
    adj = {v: [] for v in range(g.n_vertices)}
    for e in msf_edge_ids:
        u, v = g.edge_endpoints(int(e))
        w = g.edge_weight(int(e))
        adj[u].append((v, w))
        adj[v].append((u, w))

    def query(a, b):
        if a == b:
            return 0.0
        best = {a: 0.0}
        stack = [a]
        while stack:
            x = stack.pop()
            for y, w in adj[x]:
                cand = max(best[x], w)
                if y not in best or cand < best[y]:
                    best[y] = cand
                    stack.append(y)
        return best.get(b, np.inf)

    return query


@pytest.fixture(scope="module", params=[0, 1, 2])
def engine_case(request):
    """Random graphs, two of them disconnected (m << n log n)."""
    seed = request.param
    n = 120 + 40 * seed
    m = [300, 150, 90][seed]  # seed 1, 2 leave isolated pieces
    g = gnm_random_graph(n, m, seed=seed)
    return g, QueryEngine(build_artifact(g, "kruskal"))


def test_connected_matches_union_find(engine_case):
    g, engine = engine_case
    comp = components_union_find(g)
    rng = np.random.default_rng(5)
    us = rng.integers(0, g.n_vertices, 400)
    vs = rng.integers(0, g.n_vertices, 400)
    assert np.array_equal(engine.connected_many(us, vs), comp[us] == comp[vs])


def test_component_id_and_size_match_union_find(engine_case):
    g, engine = engine_case
    comp = components_union_find(g)
    sizes = {label: int((comp == label).sum()) for label in np.unique(comp)}
    vs = np.arange(g.n_vertices)
    got_ids = engine.component_id_many(vs)
    got_sizes = engine.component_size_many(vs)
    assert np.array_equal(got_ids, comp)  # both label by least vertex id
    for v in range(g.n_vertices):
        assert got_sizes[v] == sizes[comp[v]]


def test_bottleneck_matches_brute_force(engine_case):
    g, engine = engine_case
    brute = _brute_bottleneck(g, kruskal(g).edge_ids)
    rng = np.random.default_rng(6)
    us = rng.integers(0, g.n_vertices, 150)
    vs = rng.integers(0, g.n_vertices, 150)
    got = engine.bottleneck_many(us, vs)
    for i in range(us.size):
        assert got[i] == pytest.approx(brute(int(us[i]), int(vs[i])))


def test_replacement_matches_recompute(engine_case):
    """The cycle-replacement oracle agrees with literally re-running Kruskal."""
    g, engine = engine_case
    base = kruskal(g)
    rng = np.random.default_rng(7)
    us = rng.integers(0, g.n_vertices, 60)
    vs = rng.integers(0, g.n_vertices, 60)
    ws = np.round(rng.uniform(0.0, 1.5, 60), 6)
    got = engine.replacement_many(us, vs, ws)
    for i in range(us.size):
        u, v, w = int(us[i]), int(vs[i]), float(ws[i])
        if u == v:
            assert not got[i]
            continue
        edges = [(u, v, w)] + [
            (int(a), int(b), float(c))
            for a, b, c in zip(g.edge_u, g.edge_v, g.edge_w)
        ]
        new = kruskal(from_edges(edges, n_vertices=g.n_vertices))
        # the candidate was inserted first, so on exact weight ties the
        # incumbent (later id) loses in this recompute; the service
        # breaks ties the other way — avoid generating exact ties instead
        changed = new.total_weight < base.total_weight - 1e-12 or (
            new.n_components < base.n_components
        )
        assert bool(got[i]) == changed, (u, v, w)


def test_bottleneck_endpoint_conventions(engine_case):
    _, engine = engine_case
    out = engine.bottleneck_many([0, 0], [0, 0])
    assert out.tolist() == [0.0, 0.0]


def test_total_weight_matches_kruskal(engine_case):
    g, engine = engine_case
    assert engine.total_weight() == pytest.approx(kruskal(g).total_weight)


def test_engine_charges_backend_trace():
    g = gnm_random_graph(60, 140, seed=9)
    backend = SimulatedBackend(4)
    engine = QueryEngine(build_artifact(g, "kruskal"), backend=backend)
    before = backend.trace.total_work
    engine.bottleneck_many(np.zeros(100, dtype=np.int64),
                           np.full(100, 5, dtype=np.int64))
    engine.connected_many([0, 1], [2, 3])
    assert backend.trace.total_work > before
    assert backend.trace.n_rounds >= 2


def test_execute_dispatch_and_unknown_kind():
    g = from_edges([(0, 1, 1.0), (1, 2, 2.0)])
    engine = QueryEngine(build_artifact(g, "kruskal"))
    assert set(QUERY_KINDS) >= {"connected", "bottleneck", "replacement"}
    assert engine.execute("connected", [0], [2]).tolist() == [True]
    assert engine.execute("weight", [0], [0], [0.0])[0] == pytest.approx(3.0)
    with pytest.raises(ServiceError, match="unknown query kind"):
        engine.execute("nope", [0], [0])


def test_engine_rejects_out_of_range():
    g = from_edges([(0, 1, 1.0)])
    engine = QueryEngine(build_artifact(g, "kruskal"))
    with pytest.raises(GraphError):
        engine.connected_many([0], [9])
    with pytest.raises(GraphError):
        engine.component_id_many([-1])
    with pytest.raises(GraphError):
        engine.replacement_many([0], [1], [1.0, 2.0])


def test_empty_graph_engine():
    g = from_edges([], n_vertices=0)
    engine = QueryEngine(build_artifact(g, "kruskal"))
    assert engine.total_weight() == 0.0
    assert engine.connected_many([], []).size == 0
    assert engine.bottleneck_many([], []).size == 0


def test_warm_index_equals_fresh_build(tmp_path):
    """Answers from a reloaded prebuilt index equal a from-scratch build."""
    from repro.service.artifacts import ArtifactStore

    g = gnm_random_graph(90, 180, seed=11)
    store = ArtifactStore(tmp_path)
    cold, _ = store.get_or_compute(g)
    warm = store.load(store.path_for(cold.fingerprint))
    rng = np.random.default_rng(12)
    us = rng.integers(0, 90, 200)
    vs = rng.integers(0, 90, 200)
    a = QueryEngine(cold).bottleneck_many(us, vs)
    b = QueryEngine(warm).bottleneck_many(us, vs)
    assert np.array_equal(a, b)
