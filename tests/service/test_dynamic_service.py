"""Mutations through the service equal from-scratch recomputation.

Satellite requirement: on ≥20 random graphs (including disconnected
ones), every insert/delete applied through :class:`MSTService` must
leave the served forest identical to running Kruskal on the mutated
graph from scratch.
"""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.service.artifacts import ArtifactStore
from repro.service.core import MSTService

# 24 cases: (n, m, seed); the sparse ones (m < n - 1) are disconnected.
CASES = [(20 + 3 * s, m, s) for s in range(12) for m in (12 + s, 60 + 4 * s)]


def _assert_matches_recompute(svc):
    """Served forest == Kruskal on the service's current graph snapshot."""
    fresh = kruskal(svc._graph)
    art = svc.artifact
    assert art.total_weight == pytest.approx(fresh.total_weight)
    assert art.n_components == fresh.n_components
    assert art.n_forest_edges == fresh.n_edges
    # connectivity answers agree everywhere
    n = art.n_vertices
    us = np.repeat(np.arange(n), 1)
    vs = np.roll(us, 1)
    engine = svc.ensure_ready()
    from repro.graphs.components import components_union_find

    comp = components_union_find(svc._graph)
    assert np.array_equal(engine.connected_many(us, vs), comp[us] == comp[vs])


@pytest.mark.parametrize("n,m,seed", CASES)
def test_random_mutation_sequence_matches_recompute(tmp_path, n, m, seed):
    g = gnm_random_graph(n, m, seed=seed)
    svc = MSTService(ArtifactStore(tmp_path))
    svc.load_graph(g)
    rng = np.random.default_rng(1000 + seed)
    for step in range(8):
        if rng.random() < 0.5 and svc._graph.n_edges > 0:
            eid = int(rng.integers(0, svc._graph.n_edges))
            u, v = svc._graph.edge_endpoints(eid)
            w = svc._graph.edge_weight(eid)
            svc.delete_edge(int(u), int(v), float(w))
        else:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            svc.insert_edge(u, v, float(np.round(rng.uniform(0.01, 2.0), 6)))
        _assert_matches_recompute(svc)


def test_insert_bridges_disconnected_graph(tmp_path):
    # two separate triangles; an inserted bridge must join them
    from repro.graphs.builder import from_edges

    edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0),
             (3, 4, 1.0), (4, 5, 2.0), (3, 5, 3.0)]
    svc = MSTService(ArtifactStore(tmp_path))
    svc.load_graph(from_edges(edges))
    assert svc.artifact.n_components == 2
    assert not svc.connected(0, 5)
    svc.insert_edge(2, 3, 0.25)
    assert svc.artifact.n_components == 1
    assert svc.connected(0, 5)
    assert svc.total_weight() == pytest.approx(1 + 2 + 1 + 2 + 0.25)
    _assert_matches_recompute(svc)


def test_delete_disconnects_and_promotes_replacement(tmp_path):
    from repro.graphs.builder import from_edges

    # square with one diagonal: deleting an MSF edge promotes the diagonal
    edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 5.0), (0, 2, 2.0)]
    svc = MSTService(ArtifactStore(tmp_path))
    svc.load_graph(from_edges(edges))
    assert svc.total_weight() == pytest.approx(3.0)
    svc.delete_edge(1, 2)
    _assert_matches_recompute(svc)
    assert svc.total_weight() == pytest.approx(1.0 + 1.0 + 2.0)
    # deleting the last path between 3 and the rest splits the graph
    svc.delete_edge(2, 3)
    svc.delete_edge(3, 0)
    assert not svc.connected(0, 3)
    _assert_matches_recompute(svc)


def test_delete_missing_edge_raises(tmp_path):
    from repro.graphs.builder import from_edges

    svc = MSTService(ArtifactStore(tmp_path))
    svc.load_graph(from_edges([(0, 1, 1.0)]))
    with pytest.raises(ServiceError, match="no live edge"):
        svc.delete_edge(0, 1, 9.0)  # weight mismatch
    svc.delete_edge(0, 1)
    with pytest.raises(ServiceError, match="no live edge"):
        svc.delete_edge(0, 1)  # already gone


def test_mutations_require_loaded_graph(tmp_path):
    svc = MSTService(ArtifactStore(tmp_path))
    with pytest.raises(ServiceError):
        svc.insert_edge(0, 1, 1.0)
    with pytest.raises(ServiceError):
        svc.delete_edge(0, 1)


def test_mutated_artifact_is_cached_for_next_load(tmp_path):
    """After a mutation, loading the mutated graph elsewhere is a warm hit."""
    g = gnm_random_graph(30, 60, seed=5)
    store = ArtifactStore(tmp_path)
    svc = MSTService(store)
    svc.load_graph(g)
    svc.insert_edge(0, 17, 0.123)
    snapshot = svc._graph
    other = MSTService(ArtifactStore(tmp_path))
    other.load_graph(snapshot)
    assert other.metrics.artifact_hits >= 1
    assert other.total_weight() == pytest.approx(svc.total_weight())


def test_offline_artifact_rejects_mutations(tmp_path):
    g = gnm_random_graph(20, 40, seed=8)
    svc = MSTService(ArtifactStore(tmp_path / "a"))
    svc.load_graph(g)
    path = tmp_path / "dump.json"
    svc.save_artifact_json(path)
    offline = MSTService(ArtifactStore(tmp_path / "b"))
    offline.load_artifact(path)
    assert offline.total_weight() == pytest.approx(svc.total_weight())
    with pytest.raises(ServiceError):
        offline.insert_edge(0, 1, 0.5)
