"""MST query service tests."""
