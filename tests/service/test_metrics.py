"""ServiceMetrics: percentile caching, empty-reservoir guards, aggregates."""

from __future__ import annotations

import pytest

from repro.service.metrics import ServiceMetrics


class TestPercentiles:
    def test_basic_percentiles(self):
        m = ServiceMetrics()
        for i in range(1, 101):
            m.record_query("connected", i / 1000.0)
        pct = m.latency_percentiles("connected")
        assert set(pct) == {"p50", "p90", "p95", "p99"}
        assert pct["p50"] == pytest.approx(0.0505, abs=1e-4)
        assert pct["p50"] <= pct["p90"] <= pct["p95"] <= pct["p99"]

    def test_unknown_kind_returns_empty(self):
        assert ServiceMetrics().latency_percentiles("never-recorded") == {}

    def test_empty_reservoir_returns_empty_not_raises(self):
        """Regression: an empty deque must not reach np.percentile.

        ``_latency`` is a defaultdict, so merely *touching* a kind can
        materialise an empty reservoir; percentiles over it must degrade
        to ``{}`` instead of raising numpy's empty-percentile error.
        """
        m = ServiceMetrics()
        m._latency["touched"]  # noqa: B018 - deliberately materialise empty deque
        assert m.latency_percentiles("touched") == {}
        assert "touched" not in m.summary()["queries"]  # count never recorded

    def test_repeated_reads_reuse_cached_percentiles(self):
        """Regression: summary()/render() must not re-sort the reservoir
        per kind per call when no new sample arrived in between."""
        m = ServiceMetrics()
        for i in range(50):
            m.record_query("bottleneck", i / 100.0)
        first = m.latency_percentiles("bottleneck")
        cached_entry = m._pct_cache["bottleneck"]
        second = m.latency_percentiles("bottleneck")
        assert second == first
        assert m._pct_cache["bottleneck"] is cached_entry, (
            "no new sample -> the cached computation must be reused"
        )

    def test_cache_invalidated_by_new_sample(self):
        m = ServiceMetrics()
        m.record_query("weight", 0.010)
        assert m.latency_percentiles("weight")["p50"] == pytest.approx(0.010)
        m.record_query("weight", 0.030)
        assert m.latency_percentiles("weight")["p50"] == pytest.approx(0.020)

    def test_cached_result_is_a_copy(self):
        m = ServiceMetrics()
        m.record_query("connected", 0.001)
        out = m.latency_percentiles("connected")
        out["p50"] = -1.0
        assert m.latency_percentiles("connected")["p50"] >= 0.0

    def test_reservoir_bounds_memory(self):
        m = ServiceMetrics(reservoir=4)
        for i in range(100):
            m.record_query("connected", float(i))
        assert len(m._latency["connected"]) == 4
        # Percentiles reflect only the sliding window (96..99).
        assert m.latency_percentiles("connected")["p50"] == pytest.approx(97.5)

    def test_invalid_reservoir_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics(reservoir=0)


class TestAggregates:
    def test_summary_includes_counts_and_percentiles(self):
        m = ServiceMetrics()
        m.record_query("connected", 0.002)
        m.record_batch(3)
        m.record_cache(True)
        m.record_cache(False)
        m.record_artifact(False)
        s = m.summary()
        assert s["queries"]["connected"]["count"] == 1
        assert s["queries"]["connected"]["p50"] == pytest.approx(0.002)
        assert s["batch_histogram"] == {"4": 1}
        assert s["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}
        assert s["artifacts"] == {"hits": 0, "misses": 1}

    def test_summary_stable_across_repeated_calls(self):
        m = ServiceMetrics()
        for kind in ("a", "b", "c"):
            for i in range(10):
                m.record_query(kind, i / 1000.0)
        assert m.summary() == m.summary()

    def test_render_mentions_every_kind(self):
        m = ServiceMetrics()
        m.record_query("connected", 0.001)
        m.record_query("bottleneck", 0.002)
        text = m.render()
        assert "connected" in text and "bottleneck" in text


class TestSaturationCounters:
    def test_queue_depth_gauge_tracks_last_and_max(self):
        m = ServiceMetrics()
        for depth in (3, 7, 2):
            m.record_queue_depth(depth)
        assert m.queue_depth == 2 and m.queue_depth_max == 7
        assert m.queue_samples == 3
        q = m.summary()["queue"]
        assert q == {"depth": 2, "max_depth": 7, "samples": 3,
                     "rejected": 0, "timeouts": 0}

    def test_timeout_and_rejected_counters_surface_everywhere(self):
        m = ServiceMetrics()
        m.record_timeout()
        m.record_rejected()
        m.record_rejected()
        q = m.summary()["queue"]
        assert q["timeouts"] == 1 and q["rejected"] == 2
        assert "rejected=2" in m.render() and "timeouts=1" in m.render()
        line = m.summary_line()
        assert "rejected=2" in line and "timeouts=1" in line

    def test_summary_line_is_one_line(self):
        m = ServiceMetrics()
        m.record_query("serve:connected", 0.001)
        line = m.summary_line()
        assert "\n" not in line and "served=1" in line
