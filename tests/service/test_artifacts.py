"""Artifact store: hash stability, disk round-trips, invalidation, corruption."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.service.artifacts import (
    ArtifactStore,
    artifact_from_result,
    build_artifact,
    graph_fingerprint,
    load_json_artifact,
    load_npz_artifact,
    save_json_artifact,
)

EDGES = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (3, 4, 0.5)]


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_rebuilds():
    a = graph_fingerprint(from_edges(EDGES), "kruskal")
    b = graph_fingerprint(from_edges(list(EDGES)), "kruskal")
    assert a == b and len(a) == 64


def test_fingerprint_changes_with_graph_weights_and_algorithm():
    g = from_edges(EDGES)
    base = graph_fingerprint(g, "kruskal")
    heavier = from_edges([(0, 1, 1.5)] + EDGES[1:])
    extra = from_edges(EDGES + [(2, 3, 4.0)])
    assert graph_fingerprint(heavier, "kruskal") != base
    assert graph_fingerprint(extra, "kruskal") != base
    assert graph_fingerprint(g, "boruvka") != base
    assert graph_fingerprint(g, "kruskal", "vectorized") != base


def test_fingerprint_stable_across_store_instances(tmp_path):
    g = gnm_random_graph(60, 120, seed=4)
    s1 = ArtifactStore(tmp_path)
    art1, hit1 = s1.get_or_compute(g)
    s2 = ArtifactStore(tmp_path)
    art2, hit2 = s2.get_or_compute(g)
    assert (not hit1) and hit2
    assert art1.fingerprint == art2.fingerprint
    assert np.array_equal(art1.msf_edge_ids, art2.msf_edge_ids)


# ----------------------------------------------------------------------
# Persistence round-trips
# ----------------------------------------------------------------------
def test_npz_round_trip_preserves_everything(tmp_path):
    g = gnm_random_graph(80, 200, seed=7)
    store = ArtifactStore(tmp_path / "store")
    art, _ = store.get_or_compute(g, "kruskal")
    loaded = store.load(store.path_for(art.fingerprint), art.fingerprint)
    assert loaded.fingerprint == art.fingerprint
    assert loaded.algorithm == "kruskal"
    assert loaded.n_vertices == art.n_vertices
    assert loaded.n_components == art.n_components
    assert loaded.total_weight == pytest.approx(art.total_weight)
    assert np.array_equal(loaded.msf_u, art.msf_u)
    assert np.array_equal(loaded.msf_w, art.msf_w)
    assert loaded.index is not None  # prebuilt index survives the trip
    for key in ("depth", "comp", "up", "mx"):
        assert np.array_equal(loaded.index[key], art.index[key])


def test_cache_hit_after_reload_from_disk(tmp_path, monkeypatch):
    g = gnm_random_graph(50, 100, seed=1)
    store = ArtifactStore(tmp_path)
    store.get_or_compute(g)
    # A fresh store over the same directory must serve from disk without
    # ever invoking an MST algorithm.
    import repro.service.artifacts as artifacts_mod

    def boom(*a, **kw):  # pragma: no cover - would mean a cache miss
        raise AssertionError("cache miss: recomputed on a warm store")

    monkeypatch.setattr(artifacts_mod, "build_artifact", boom)
    warm = ArtifactStore(tmp_path)
    art, hit = warm.get_or_compute(g)
    assert hit and warm.hits == 1 and warm.misses == 0
    assert art.total_weight == pytest.approx(kruskal(g).total_weight)


def test_invalidation_on_any_input_change(tmp_path):
    store = ArtifactStore(tmp_path)
    g = from_edges(EDGES)
    store.get_or_compute(g, "kruskal")
    # different weights / topology / algorithm each miss the cache
    for other, algo in [
        (from_edges([(0, 1, 1.25)] + EDGES[1:]), "kruskal"),
        (from_edges(EDGES + [(2, 4, 9.0)]), "kruskal"),
        (g, "boruvka"),
    ]:
        _, hit = store.get_or_compute(other, algo)
        assert not hit


def test_explicit_invalidate_drops_file(tmp_path):
    store = ArtifactStore(tmp_path)
    g = from_edges(EDGES)
    art, _ = store.get_or_compute(g)
    assert art.fingerprint in store
    assert store.invalidate(art.fingerprint)
    assert art.fingerprint not in store
    assert not store.invalidate(art.fingerprint)
    _, hit = store.get_or_compute(g)
    assert not hit


# ----------------------------------------------------------------------
# Corruption and version handling
# ----------------------------------------------------------------------
def test_corrupted_npz_raises_clean_service_error(tmp_path):
    store = ArtifactStore(tmp_path)
    art, _ = store.get_or_compute(from_edges(EDGES))
    path = store.path_for(art.fingerprint)
    path.write_bytes(b"this is not an npz file at all")
    with pytest.raises(ServiceError, match="corrupted artifact"):
        store.load(path)


def test_truncated_npz_raises_clean_service_error(tmp_path):
    store = ArtifactStore(tmp_path)
    art, _ = store.get_or_compute(gnm_random_graph(40, 80, seed=2))
    path = store.path_for(art.fingerprint)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(ServiceError):
        store.load(path)


def test_fingerprint_mismatch_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    art, _ = store.get_or_compute(from_edges(EDGES))
    with pytest.raises(ServiceError, match="fingerprint mismatch"):
        store.load(store.path_for(art.fingerprint), expect_fingerprint="0" * 64)


def test_corrupted_cache_degrades_to_recompute(tmp_path):
    store = ArtifactStore(tmp_path)
    g = from_edges(EDGES)
    art, _ = store.get_or_compute(g)
    store.path_for(art.fingerprint).write_bytes(b"garbage")
    again, hit = store.get_or_compute(g)  # silently replaced, never raises
    assert not hit
    assert store.corrupt_replaced == 1
    assert again.total_weight == pytest.approx(art.total_weight)
    # the overwritten file is healthy again
    _, hit = store.get_or_compute(g)
    assert hit


def test_version_mismatch_is_service_error(tmp_path, monkeypatch):
    import repro.service.artifacts as artifacts_mod

    store = ArtifactStore(tmp_path)
    art, _ = store.get_or_compute(from_edges(EDGES))
    monkeypatch.setattr(artifacts_mod, "_FORMAT_VERSION", 999)
    with pytest.raises(ServiceError, match="version"):
        store.load(store.path_for(art.fingerprint))


# ----------------------------------------------------------------------
# Portable JSON artifacts
# ----------------------------------------------------------------------
def test_json_round_trip(tmp_path):
    g = gnm_random_graph(40, 90, seed=3)
    art = build_artifact(g, "kruskal")
    path = tmp_path / "msf.json"
    save_json_artifact(art, path)
    loaded = load_json_artifact(path)
    assert loaded.fingerprint == art.fingerprint
    assert loaded.n_components == art.n_components
    assert np.array_equal(loaded.msf_u, art.msf_u)
    assert loaded.total_weight == pytest.approx(art.total_weight)
    # JSON drops the index; the oracle is rebuilt on demand
    assert loaded.index is None
    assert loaded.oracle().path_max(0, 0) == -1


def test_json_corruption_raises_service_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ServiceError):
        load_json_artifact(path)
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ServiceError):
        load_json_artifact(path)
    path.write_text('{"format": "repro-msf", "version": 99}')
    with pytest.raises(ServiceError, match="version"):
        load_json_artifact(path)


def test_artifact_local_rank_layout():
    g = from_edges(EDGES)
    art = artifact_from_result(g, kruskal(g), "kruskal")
    # stored forest edges are sorted by weight, so position == local rank
    assert list(art.msf_w) == sorted(art.msf_w)
    assert art.n_forest_edges == 3
    assert art.n_components == 2


def test_npz_offline_load_without_store(tmp_path):
    store = ArtifactStore(tmp_path)
    art, _ = store.get_or_compute(from_edges(EDGES))
    loaded = load_npz_artifact(store.path_for(art.fingerprint))
    assert loaded.fingerprint == art.fingerprint


def test_int64_fingerprint_distinguishes_beyond_2_53():
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    base = 1 << 53

    def make(delta):
        return CSRGraph.from_edgelist(EdgeList.from_arrays(
            2,
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([base + delta], dtype=np.int64),
        ))

    assert float(base) == float(base + 1)  # the float64 collision guarded
    assert graph_fingerprint(make(0), "kruskal") != graph_fingerprint(
        make(1), "kruskal"
    )
    # Same weights, same address: the int path is itself stable.
    assert graph_fingerprint(make(0), "kruskal") == graph_fingerprint(
        make(0), "kruskal"
    )


def test_float_fingerprint_layout_unchanged():
    """Existing float-weight stores must stay warm across this fix.

    The int64 fidelity change added a dtype tag only on the integer
    branch, so float fingerprints hash byte-for-byte as before; this pin
    catches any accidental change to the float layout.
    """
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    g = from_edges(EDGES)
    assert graph_fingerprint(g, "kruskal") == graph_fingerprint(
        from_edges(EDGES), "kruskal"
    )
    # A float graph with integral values hashes differently from the same
    # values stored as int64: distinct dtypes are distinct graphs, so the
    # tagged int branch can never collide with a float store entry.
    m = g.n_edges
    u, v = np.asarray(g.edge_u[:m]), np.asarray(g.edge_v[:m])
    w = np.asarray(g.edge_w[:m])
    as_int = CSRGraph.from_edgelist(
        EdgeList.from_arrays(g.n_vertices, u, v, w.astype(np.int64))
    )
    assert graph_fingerprint(as_int, "kruskal") != graph_fingerprint(
        g, "kruskal"
    )
