"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("road_network_planning.py", []),
    ("social_network_msf.py", []),
    ("llp_framework_tour.py", []),
    ("scaling_study.py", ["10", "1,4"]),
    ("distributed_mst.py", []),
    ("dynamic_network.py", []),
    ("mst_applications.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"


def test_example_list_is_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {c[0] for c in CASES}, "update CASES when adding examples"
