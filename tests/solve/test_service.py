"""ProblemService: typed queries, artifact reuse, and the async front-end."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import gnm_random_graph
from repro.service.server import AsyncMSTService
from repro.solve.artifacts import save_problem_artifact
from repro.solve.service import PROBLEM_QUERY_KINDS, ProblemService
from repro.solve.sssp import sssp_oracle


def _graph(n, edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


@pytest.fixture()
def g():
    return gnm_random_graph(60, 150, seed=8)


def test_sssp_queries_match_oracle(g):
    svc = ProblemService(problem="sssp", mode="vectorized", source=0)
    svc.load_graph(g)
    ora = sssp_oracle(g, source=0)
    vs = [0, 5, 17, 59]
    assert np.array_equal(svc.dist(vs), ora.dist[vs])
    assert np.array_equal(svc.parent(vs), ora.parent[vs])
    assert np.array_equal(svc.reached(vs), np.isfinite(ora.dist[vs]))
    # Scalar in, scalar out.
    assert svc.dist(5) == float(ora.dist[5])
    assert isinstance(svc.parent(5), int)


def test_cc_queries(g):
    svc = ProblemService(problem="cc")
    svc.load_graph(g)
    labels = svc.label(list(range(g.n_vertices)))
    assert svc.same_component(0, 0) is True
    pairs_u, pairs_v = [0, 1], [1, 2]
    same = svc.same_component(pairs_u, pairs_v)
    assert np.array_equal(same, labels[pairs_u] == labels[pairs_v])
    sizes = svc.component_size([0])
    assert sizes[0] == int((labels == labels[0]).sum())


def test_query_kinds_per_problem():
    assert ProblemService(problem="sssp").query_kinds == PROBLEM_QUERY_KINDS["sssp"]
    assert ProblemService(problem="cc").query_kinds == PROBLEM_QUERY_KINDS["cc"]


def test_wrong_kind_for_problem_is_clean_error(g):
    svc = ProblemService(problem="sssp")
    svc.load_graph(g)
    with pytest.raises(ServiceError, match="unknown query kind"):
        svc.ensure_ready().execute("label", [0], [0], None)


def test_unknown_param_rejected_eagerly():
    with pytest.raises(ServiceError, match="takes no parameter"):
        ProblemService(problem="cc", source=3)


def test_vertex_out_of_range(g):
    svc = ProblemService(problem="cc")
    svc.load_graph(g)
    with pytest.raises(ServiceError, match="out of range"):
        svc.label([g.n_vertices])


def test_store_reuse_and_metrics(g, tmp_path):
    svc = ProblemService(tmp_path / "store", problem="cc")
    svc.load_graph(g)
    svc.label([0])
    again = ProblemService(tmp_path / "store", problem="cc")
    again.load_graph(g)  # must be a cache hit, not a re-solve
    assert again.store.stats()["hits"] == 1
    assert svc.metrics.summary()["queries"]["label"]["count"] == 1


def test_load_artifact_offline(g, tmp_path):
    svc = ProblemService(problem="sssp", mode="loop", source=0)
    artifact = svc.load_graph(g)
    path = save_problem_artifact(artifact, tmp_path / "a.npz")

    offline = ProblemService(problem="sssp")
    loaded = offline.load_artifact(path)
    assert loaded.fingerprint == artifact.fingerprint
    assert offline.dist(7) == svc.dist(7)

    wrong = ProblemService(problem="cc")
    with pytest.raises(ServiceError, match="service hosts"):
        wrong.load_artifact(path)


def test_queries_before_load_fail_cleanly():
    svc = ProblemService(problem="cc")
    with pytest.raises(ServiceError, match="no graph or artifact loaded"):
        svc.label([0])


def test_invalidate_rebuilds_from_graph(g):
    svc = ProblemService(problem="cc")
    svc.load_graph(g)
    before = svc.label(0)
    svc.invalidate()
    assert svc.label(0) == before


def test_async_front_end_serves_problem_service(g):
    # The coalescing tier admits kinds via service.query_kinds, so the
    # problem service slots in where MSTService does.
    svc = ProblemService(problem="cc")
    svc.load_graph(g)
    ora_labels = svc.label(list(range(g.n_vertices)))

    async def main():
        async with AsyncMSTService(svc, max_batch=16, max_delay_s=0.005) as srv:
            return await asyncio.gather(
                *(srv.query("label", v) for v in range(10)),
                srv.query("same", 0, 1),
            )

    *labels, same = asyncio.run(main())
    assert labels == [int(x) for x in ora_labels[:10]]
    assert same == bool(ora_labels[0] == ora_labels[1])


def test_async_front_end_rejects_foreign_kind(g):
    svc = ProblemService(problem="sssp")
    svc.load_graph(g)

    async def main():
        async with AsyncMSTService(svc) as srv:
            with pytest.raises(ServiceError):
                await srv.query("label", 0)

    asyncio.run(main())


def test_same_component_on_disconnected_pair():
    g = _graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
    svc = ProblemService(problem="cc")
    svc.load_graph(g)
    assert svc.same_component(0, 1) is True
    assert svc.same_component(1, 2) is False
    assert np.array_equal(svc.component_size([0, 2]), np.array([2, 2]))
