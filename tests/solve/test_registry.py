"""The problem registry: discovery, mode dispatch, and span anchoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.graphs.generators import gnm_random_graph, path_graph
from repro.obs.trace import Tracer, use_tracer
from repro.solve.registry import (
    PROBLEM_MODES,
    _effective_mode,
    available_problems,
    get_oracle,
    get_problem,
    list_problem_info,
    problem_info,
)


def test_available_problems_sorted_and_nonempty():
    names = available_problems()
    assert names == sorted(names)
    assert {"sssp", "cc"} <= set(names)


def test_list_problem_info_matches_available():
    assert [i.name for i in list_problem_info()] == available_problems()


@pytest.mark.parametrize("name", ["sssp", "cc"])
def test_problem_info_schema(name):
    info = problem_info(name)
    assert info.name == name
    assert info.oracle
    assert info.arrays
    assert set(info.modes) == set(PROBLEM_MODES)
    assert info.has_vectorized


def test_unknown_problem_raises_with_listing():
    with pytest.raises(BenchmarkError, match="available: cc, sssp"):
        problem_info("bottleneck")
    with pytest.raises(BenchmarkError):
        get_problem("nope")


def test_unknown_mode_raises():
    with pytest.raises(BenchmarkError, match="no 'warp' mode"):
        get_problem("sssp", "warp")


def test_result_schema_matches_registry():
    g = path_graph(6)
    for info in list_problem_info():
        params = {"source": 0} if "source" in info.params else {}
        result = get_problem(info.name, "loop")(g, **params)
        assert sorted(result.arrays()) == sorted(info.arrays)
        assert sorted(result.scalars()) == sorted(info.scalars)


def test_effective_mode_auto_threshold():
    info = problem_info("cc")
    small = path_graph(4)
    big = gnm_random_graph(3000, info.auto_min_edges, seed=0)
    assert _effective_mode(info, None, small) == "loop"
    assert _effective_mode(info, "vectorized", small) == "vectorized"
    assert _effective_mode(info, "auto", small) == "loop"
    assert _effective_mode(info, "auto", big) == "vectorized"


@pytest.mark.parametrize("name", ["sssp", "cc"])
def test_all_modes_byte_identical(name):
    g = gnm_random_graph(300, 900, seed=5)
    results = {m: get_problem(name, m)(g).arrays() for m in PROBLEM_MODES}
    ref = results["loop"]
    for mode in ("vectorized", "auto"):
        for key, arr in ref.items():
            assert results[mode][key].dtype == arr.dtype
            assert np.array_equal(results[mode][key], arr), (name, mode, key)


@pytest.mark.parametrize("name", ["sssp", "cc"])
def test_matches_oracle(name):
    g = gnm_random_graph(200, 500, seed=2)
    got = get_problem(name, "vectorized")(g).arrays()
    ref = get_oracle(name)(g).arrays()
    for key, arr in ref.items():
        assert np.array_equal(got[key], arr)


def test_solve_runs_under_named_span():
    g = gnm_random_graph(50, 120, seed=1)
    tracer = Tracer()
    with use_tracer(tracer):
        get_problem("sssp", "vectorized")(g, source=3)
    names = [s.name for s in tracer.spans]
    assert "solve:sssp" in names
    anchor = next(s for s in tracer.spans if s.name == "solve:sssp")
    assert anchor.attrs["mode"] == "vectorized"
    assert anchor.attrs["n_edges"] == g.n_edges
    assert "rounds" in anchor.attrs  # solver stats attached at exit
