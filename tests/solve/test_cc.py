"""Connected components: canonical labels across modes and shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import (
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)
from repro.solve.cc import cc_oracle, solve_cc


def _graph(n, edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.ones(len(edges), dtype=np.float64)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_connected_graph_single_label(mode):
    for g in (path_graph(9), cycle_graph(8), star_graph(10)):
        r = solve_cc(g, mode=mode)
        assert r.n_components == 1
        assert np.array_equal(r.labels, np.zeros(g.n_vertices, dtype=np.int64))


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_labels_are_component_minimum(mode):
    # Components {0,3,5}, {1,4}, {2}: each labeled by its min vertex id.
    g = _graph(6, [(3, 5, 1.0), (0, 3, 2.0), (1, 4, 3.0)])
    r = solve_cc(g, mode=mode)
    assert r.labels.tolist() == [0, 1, 2, 0, 1, 0]
    assert r.n_components == 3


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_edgeless_graph_all_singletons(mode):
    g = _graph(5, [])
    r = solve_cc(g, mode=mode)
    assert np.array_equal(r.labels, np.arange(5))
    assert r.n_components == 5


def test_empty_graph():
    g = CSRGraph.from_edgelist(EdgeList.from_arrays(
        0, np.empty(0, np.int64), np.empty(0, np.int64),
        np.empty(0, np.float64), dedup=False,
    ))
    for mode in ("loop", "vectorized"):
        r = solve_cc(g, mode=mode)
        assert r.labels.size == 0 and r.n_components == 0


def test_rejects_unknown_mode():
    with pytest.raises(AlgorithmError):
        solve_cc(path_graph(3), mode="gpu")


@pytest.mark.parametrize(
    "n,m,seed",
    [(50, 20, 0), (200, 80, 1), (500, 2000, 2), (1000, 900, 3)],
)
def test_modes_and_oracle_byte_identical(n, m, seed):
    g = gnm_random_graph(n, m, seed=seed)
    loop = solve_cc(g, mode="loop").labels
    vec = solve_cc(g, mode="vectorized").labels
    ora = cc_oracle(g).labels
    assert loop.dtype == vec.dtype == np.int64
    assert np.array_equal(loop, vec)
    assert np.array_equal(loop, ora)


def test_long_label_chain_converges():
    # Descending-id chain attachments maximise hooking chain depth — the
    # pointer-jump stress shape for the boundary-filtered rounds.
    n = 257
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]
    g = _graph(n, edges)
    r = solve_cc(g, mode="vectorized")
    assert np.array_equal(r.labels, np.zeros(n, dtype=np.int64))
    assert r.stats["rounds"] <= n


def test_vectorized_stats_present():
    g = gnm_random_graph(120, 300, seed=4)
    r = solve_cc(g, mode="vectorized")
    assert r.stats["rounds"] >= 1
    assert r.stats["jump_sweeps"] >= 1
    assert "edge_visits" in solve_cc(g, mode="loop").stats
