"""SSSP: contracts, edge cases, and loop/vectorized/oracle agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmError, GraphError, WeightError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import (
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)
from repro.solve.sssp import canonical_parents, solve_sssp, sssp_oracle


def _graph(n, edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_path_distances(mode):
    g = path_graph(5)
    r = solve_sssp(g, mode=mode)
    # Path weights are whatever the generator assigned; prefix sums match.
    expect = np.zeros(5)
    d = 0.0
    for v in range(1, 5):
        pos = np.flatnonzero((g.edge_u == v - 1) & (g.edge_v == v))
        d += float(g.edge_w[pos[0]])
        expect[v] = d
    assert np.array_equal(r.dist, expect)
    assert r.parent[0] == -1
    assert np.array_equal(r.parent[1:], np.arange(4))
    assert r.n_reached == 5


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_unreachable_vertices(mode):
    g = _graph(4, [(0, 1, 2.0)])  # vertices 2, 3 isolated
    r = solve_sssp(g, mode=mode)
    assert np.isinf(r.dist[2]) and np.isinf(r.dist[3])
    assert r.parent[2] == -1 and r.parent_edge[3] == -1
    assert r.n_reached == 2


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_nonzero_source(mode):
    g = star_graph(6)
    r = solve_sssp(g, source=3, mode=mode)
    assert r.source == 3
    assert r.dist[3] == 0.0
    assert r.parent[3] == -1
    # Every leaf routes through the hub (vertex 0).
    assert r.parent[0] == 3


def test_rejects_empty_graph_and_bad_source():
    g = path_graph(3)
    with pytest.raises(GraphError):
        solve_sssp(CSRGraph.from_edgelist(EdgeList.from_arrays(
            0, np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64), dedup=False,
        )))
    with pytest.raises(GraphError):
        solve_sssp(g, source=3)
    with pytest.raises(GraphError):
        solve_sssp(g, source=-1)


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_rejects_negative_weights(mode):
    g = _graph(3, [(0, 1, 1.0), (1, 2, -0.5)])
    with pytest.raises(WeightError):
        solve_sssp(g, mode=mode)


def test_rejects_unknown_mode():
    with pytest.raises(AlgorithmError):
        solve_sssp(path_graph(3), mode="simd")


@pytest.mark.parametrize("n,m,seed", [(60, 150, 0), (300, 1200, 1), (500, 600, 2)])
def test_modes_and_oracle_byte_identical(n, m, seed):
    g = gnm_random_graph(n, m, seed=seed)
    loop = solve_sssp(g, mode="loop")
    vec = solve_sssp(g, mode="vectorized")
    ora = sssp_oracle(g)
    for key in ("dist", "parent", "parent_edge"):
        a = loop.arrays()[key]
        assert np.array_equal(a, vec.arrays()[key]), key
        assert np.array_equal(a, ora.arrays()[key]), key


def test_zero_weight_edges_and_ties():
    # Two equal-cost routes to vertex 3; the canonical parent must be the
    # minimum-rank tight in-edge regardless of relaxation order.
    g = _graph(4, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
    loop = solve_sssp(g, mode="loop")
    vec = solve_sssp(g, mode="vectorized")
    assert np.array_equal(loop.parent, vec.parent)
    assert loop.dist[3] == 2.0


def test_huge_weights_absorb_to_inf_cleanly():
    big = float(np.finfo(np.float64).max)
    g = _graph(3, [(0, 1, big), (1, 2, big)])
    for mode in ("loop", "vectorized"):
        r = solve_sssp(g, mode=mode)
        assert r.dist[1] == big
        assert np.isinf(r.dist[2])  # overflow absorbs; vertex still "reached"
        # Canonical parents only follow *finite* tight edges.
        assert r.parent[2] == -1


def test_canonical_parents_is_pure_function_of_dist():
    g = gnm_random_graph(80, 200, seed=7)
    dist = solve_sssp(g, mode="loop").dist
    p1, e1 = canonical_parents(g, dist, 0)
    p2, e2 = canonical_parents(g, dist.copy(), 0)
    assert np.array_equal(p1, p2) and np.array_equal(e1, e2)


def test_dense_round_switch_engages_on_expander():
    # A near-complete graph forces the frontier past the 1/3 half-edge
    # threshold, exercising _relax_all_edges; results must not change.
    g = gnm_random_graph(40, 700, seed=3)
    vec = solve_sssp(g, mode="vectorized")
    ora = sssp_oracle(g)
    assert np.array_equal(vec.dist, ora.dist)
    assert np.array_equal(vec.parent, ora.parent)


def test_single_vertex_graph():
    g = CSRGraph.from_edgelist(EdgeList.from_arrays(
        1, np.empty(0, np.int64), np.empty(0, np.int64),
        np.empty(0, np.float64), dedup=False,
    ))
    for mode in ("loop", "vectorized"):
        r = solve_sssp(g, mode=mode)
        assert r.dist[0] == 0.0 and r.parent[0] == -1 and r.n_reached == 1


@pytest.mark.parametrize("mode", ["loop", "vectorized"])
def test_cycle_takes_cheaper_direction(mode):
    g = cycle_graph(7)
    r = solve_sssp(g, mode=mode)
    o = sssp_oracle(g)
    assert np.array_equal(r.dist, o.dist)
    assert np.array_equal(r.parent, o.parent)
