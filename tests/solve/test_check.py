"""The problem differential harness: matrix sweep, validators, shrinking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checking.problems import (
    PROBLEM_CHECK_MODES,
    ProblemMismatch,
    check_problem_one,
    run_problem_matrix,
    shrink_problem_mismatch,
    to_problem_pytest_repro,
    validate_problem_result,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import gnm_random_graph, path_graph
from repro.solve.cc import CCResult, solve_cc
from repro.solve.registry import get_problem
from repro.solve.sssp import solve_sssp


def _graph(n, edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


def test_matrix_sweep_is_clean():
    report = run_problem_matrix(seed=0, count=40, max_size=14)
    assert report.ok, [str(m) for m in report.mismatches]
    assert report.cases_run == 40
    # Every case exercises both problems; sssp families split between
    # solves and rejection checks, so the floor is problems * modes-ish.
    assert report.checks_run >= 40 * len(PROBLEM_CHECK_MODES)


def test_matrix_respects_problem_and_mode_filters():
    report = run_problem_matrix(seed=1, count=10, problems=["cc"], modes=["loop"])
    assert report.ok
    assert report.checks_run == 10  # one cell per case


def test_check_problem_one_agreement():
    g = gnm_random_graph(30, 80, seed=3)
    for problem in ("sssp", "cc"):
        for mode in PROBLEM_CHECK_MODES:
            assert check_problem_one(g, problem, mode) is None


def test_validator_catches_broken_cc_labels():
    g = path_graph(4)
    r = solve_cc(g, mode="loop")
    bad = CCResult(
        problem="cc", n_vertices=4, stats={},
        labels=np.array([0, 1, 0, 0], dtype=np.int64),  # edge joins 2 labels
    )
    assert validate_problem_result(g, "cc", bad) is not None
    assert validate_problem_result(g, "cc", r) is None


def test_validator_catches_untight_sssp_parent():
    g = path_graph(4)
    r = solve_sssp(g, mode="loop")
    dist = r.dist.copy()
    dist[3] += 1.0  # parent edge no longer tight
    bad = type(r)(
        problem="sssp", n_vertices=4, stats={}, source=0,
        dist=dist, parent=r.parent, parent_edge=r.parent_edge,
    )
    assert "tight" in (validate_problem_result(g, "sssp", bad) or "")


def test_missing_rejection_detected_on_negative_weights():
    # Sanity of the harness itself: a graph the solver must reject.
    g = _graph(3, [(0, 1, -1.0), (1, 2, 1.0)])
    mm = check_problem_one(g, "sssp", "loop")
    assert mm is not None and mm.kind == "exception"


def test_mismatch_label_and_str():
    g = path_graph(3)
    mm = ProblemMismatch("case-x", "sssp", "loop", "oracle-divergence", "d", g)
    assert mm.label == "sssp/loop"
    assert "sssp/loop on case-x" in str(mm)


def test_shrink_returns_missing_rejection_unshrunk():
    g = _graph(3, [(0, 1, -1.0), (1, 2, 1.0)])
    mm = ProblemMismatch(
        "case-y", "sssp", "loop", "missing-rejection", "neg", g,
        {"source": 0},
    )
    result = shrink_problem_mismatch(mm)
    assert result.predicate_calls == 0
    assert result.graph is g


def test_shrink_minimizes_a_planted_divergence(monkeypatch):
    # Plant a fake "solver" that claims every graph is one component —
    # structurally valid, but oracle-divergent whenever the graph is
    # actually disconnected — then check ddmin drives the graph down
    # while the mismatch survives.
    import repro.checking.problems as chk

    real_get = chk.get_problem

    def fake_get(name, mode=None):
        if name != "cc":
            return real_get(name, mode)

        def run(g, backend=None, **params):
            return CCResult(
                problem="cc", n_vertices=g.n_vertices, stats={},
                labels=np.zeros(g.n_vertices, dtype=np.int64),
            )

        return run

    monkeypatch.setattr(chk, "get_problem", fake_get)
    g = gnm_random_graph(20, 10, seed=5)  # sparse => disconnected
    mm = check_problem_one(g, "cc", "loop")
    assert mm is not None and mm.kind == "oracle-divergence"
    shrunk = shrink_problem_mismatch(mm, max_calls=400)
    assert shrunk.mismatch.kind == mm.kind
    assert shrunk.graph.n_vertices <= g.n_vertices
    assert shrunk.predicate_calls > 0


def test_pytest_repro_renders_and_runs():
    g = _graph(3, [(0, 2, 1.5), (1, 2, 2.5)])
    mm = ProblemMismatch(
        "case-z", "cc", "vectorized", "oracle-divergence", "labels", g, {},
    )
    result = shrink_problem_mismatch(mm)  # predicate fails -> returns original
    code = to_problem_pytest_repro(result, test_name="test_repro_case")
    assert "def test_repro_case()" in code
    assert "check_problem_one" in code
    # The rendered repro must be executable python; cc actually agrees on
    # this graph, so running it should pass its own assertion.
    ns: dict = {}
    exec(code, ns)
    ns["test_repro_case"]()


def test_auto_mode_checked_in_matrix():
    report = run_problem_matrix(seed=2, count=5, modes=["auto"])
    assert report.ok
    assert report.checks_run >= 5 * 2  # both problems per case


def test_registry_solver_feeds_harness():
    g = gnm_random_graph(25, 60, seed=9)
    run = get_problem("cc", "auto")
    assert np.array_equal(
        run(g).labels, solve_cc(g, mode="loop").labels
    )
