"""Problem artifacts: fingerprinting, round-trips, and corruption handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.generators import gnm_random_graph
from repro.solve.artifacts import (
    ProblemArtifactStore,
    load_problem_artifact,
    problem_artifact_from_result,
    problem_fingerprint,
    save_problem_artifact,
)
from repro.solve.registry import get_problem


@pytest.fixture()
def g():
    return gnm_random_graph(40, 100, seed=6)


def test_fingerprint_separates_problem_mode_and_params(g):
    base = problem_fingerprint(g, "sssp", "loop", {"source": 0})
    assert problem_fingerprint(g, "sssp", "loop", {"source": 0}) == base
    assert problem_fingerprint(g, "cc", "loop", {"source": 0}) != base
    assert problem_fingerprint(g, "sssp", "vectorized", {"source": 0}) != base
    assert problem_fingerprint(g, "sssp", "loop", {"source": 1}) != base


def test_fingerprint_tracks_graph_content(g):
    other = gnm_random_graph(40, 100, seed=7)
    assert problem_fingerprint(g, "cc") != problem_fingerprint(other, "cc")


def test_round_trip_preserves_everything(g, tmp_path):
    result = get_problem("sssp", "vectorized")(g, source=2)
    artifact = problem_artifact_from_result(
        g, result, "sssp", "vectorized", {"source": 2}
    )
    path = save_problem_artifact(artifact, tmp_path / "a.npz")
    loaded = load_problem_artifact(path)
    assert loaded.fingerprint == artifact.fingerprint
    assert loaded.problem == "sssp" and loaded.mode == "vectorized"
    assert loaded.params == {"source": 2}
    assert loaded.scalars == {k: v for k, v in artifact.scalars.items()}
    for name, arr in artifact.arrays.items():
        assert loaded.arrays[name].dtype == arr.dtype
        assert np.array_equal(loaded.arrays[name], arr)


def test_store_get_or_compute_hit_miss(g, tmp_path):
    store = ProblemArtifactStore(tmp_path / "store")
    a1, hit1 = store.get_or_compute(g, "cc", "vectorized")
    a2, hit2 = store.get_or_compute(g, "cc", "vectorized")
    assert (hit1, hit2) == (False, True)
    assert a1.fingerprint == a2.fingerprint
    assert a1.fingerprint in store
    assert store.stats() == {"hits": 1, "misses": 1, "corrupt_replaced": 0}


def test_store_params_are_separate_artifacts(g, tmp_path):
    store = ProblemArtifactStore(tmp_path / "store")
    a0, _ = store.get_or_compute(g, "sssp", "loop", source=0)
    a1, _ = store.get_or_compute(g, "sssp", "loop", source=1)
    assert a0.fingerprint != a1.fingerprint
    assert not np.array_equal(a0.arrays["dist"], a1.arrays["dist"])


def test_corrupted_file_is_recomputed_not_raised(g, tmp_path):
    store = ProblemArtifactStore(tmp_path / "store")
    artifact, _ = store.get_or_compute(g, "cc")
    store.path_for(artifact.fingerprint).write_bytes(b"\x00garbage")
    again, hit = store.get_or_compute(g, "cc")
    assert not hit
    assert store.corrupt_replaced == 1
    assert np.array_equal(again.arrays["labels"], artifact.arrays["labels"])
    # ... and the rewritten file loads cleanly afterwards.
    _, hit = store.get_or_compute(g, "cc")
    assert hit


def test_load_rejects_truncated_file(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"PK\x03\x04 not a real zip")
    with pytest.raises(ServiceError, match="corrupted artifact"):
        load_problem_artifact(path)


def test_load_rejects_fingerprint_mismatch(g, tmp_path):
    result = get_problem("cc", "loop")(g)
    artifact = problem_artifact_from_result(g, result, "cc", "loop")
    path = save_problem_artifact(artifact, tmp_path / "a.npz")
    with pytest.raises(ServiceError, match="fingerprint mismatch"):
        load_problem_artifact(path, expect_fingerprint="0" * 64)


def test_load_rejects_wrong_schema(g, tmp_path):
    # An artifact claiming to be SSSP but carrying CC's arrays must not load.
    result = get_problem("cc", "loop")(g)
    artifact = problem_artifact_from_result(g, result, "cc", "loop")
    bad = type(artifact)(
        fingerprint=artifact.fingerprint,
        problem="sssp",
        mode=None,
        n_vertices=artifact.n_vertices,
        arrays=artifact.arrays,
        scalars={},
        params={},
    )
    path = save_problem_artifact(bad, tmp_path / "bad.npz")
    with pytest.raises(ServiceError, match="array schema"):
        load_problem_artifact(path)


def test_invalidate_drops_the_file(g, tmp_path):
    store = ProblemArtifactStore(tmp_path / "store")
    artifact, _ = store.get_or_compute(g, "cc")
    assert store.invalidate(artifact.fingerprint)
    assert artifact.fingerprint not in store
    assert not store.invalidate(artifact.fingerprint)


def test_isolated_vertices_round_trip(tmp_path):
    g = CSRGraph.from_edgelist(EdgeList.from_arrays(
        3, np.empty(0, np.int64), np.empty(0, np.int64),
        np.empty(0, np.float64), dedup=False,
    ))
    store = ProblemArtifactStore(tmp_path / "store")
    artifact, _ = store.get_or_compute(g, "cc")
    assert np.array_equal(artifact.arrays["labels"], np.arange(3))
