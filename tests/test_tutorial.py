"""Execute every python code block of docs/tutorial.md.

The tutorial's snippets all carry their own assertions; running them in
one shared namespace (they build on each other) keeps the document from
rotting as the API evolves.
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).parent.parent / "docs" / "tutorial.md"


def _code_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute():
    blocks = _code_blocks(TUTORIAL.read_text(encoding="utf-8"))
    assert len(blocks) >= 6, "tutorial lost its code blocks"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"tutorial block {i} failed: {exc}\n{block}") from exc


def test_tutorial_snippets_contain_assertions():
    blocks = _code_blocks(TUTORIAL.read_text(encoding="utf-8"))
    assert sum("assert" in b for b in blocks) >= 5
