"""EdgeList construction, canonicalisation, and transformations."""

import numpy as np
import pytest

from repro.errors import GraphError, WeightError
from repro.graphs.edgelist import EdgeList


def test_from_pairs_canonicalises_orientation():
    e = EdgeList.from_pairs(4, [(3, 1, 2.0), (0, 2, 1.0)])
    assert e.n_edges == 2
    assert (e.u < e.v).all()
    assert set(zip(e.u.tolist(), e.v.tolist())) == {(1, 3), (0, 2)}


def test_self_loops_dropped():
    e = EdgeList.from_pairs(3, [(1, 1, 5.0), (0, 1, 1.0), (2, 2, 9.0)])
    assert e.n_edges == 1


def test_dedup_keeps_minimum_weight_parallel_edge():
    e = EdgeList.from_pairs(2, [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.0)])
    assert e.n_edges == 1
    assert e.w[0] == 2.0


def test_dedup_disabled_keeps_multiplicity():
    e = EdgeList.from_arrays(
        2, np.array([0, 1]), np.array([1, 0]), np.array([5.0, 2.0]), dedup=False
    )
    assert e.n_edges == 2


def test_empty_edgelist():
    e = EdgeList.empty(7)
    assert e.n_vertices == 7
    assert e.n_edges == 0
    assert e.total_weight == 0.0
    assert list(e) == []


def test_vertex_out_of_range_rejected():
    with pytest.raises(GraphError):
        EdgeList.from_pairs(2, [(0, 5, 1.0)])
    with pytest.raises(GraphError):
        EdgeList.from_arrays(2, np.array([-1]), np.array([1]), np.array([1.0]))


def test_nonfinite_weight_rejected():
    with pytest.raises(WeightError):
        EdgeList.from_pairs(2, [(0, 1, float("nan"))])
    with pytest.raises(WeightError):
        EdgeList.from_pairs(2, [(0, 1, float("inf"))])


def test_mismatched_array_lengths_rejected():
    with pytest.raises(GraphError):
        EdgeList.from_arrays(3, np.array([0]), np.array([1, 2]), np.array([1.0]))


def test_negative_vertex_count_rejected():
    with pytest.raises(GraphError):
        EdgeList.empty(-1)


def test_arrays_are_read_only():
    e = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 2.0)])
    with pytest.raises(ValueError):
        e.u[0] = 5
    with pytest.raises(ValueError):
        e.w[0] = 5.0


def test_total_weight_and_len_and_iter():
    e = EdgeList.from_pairs(3, [(0, 1, 1.5), (1, 2, 2.5)])
    assert e.total_weight == pytest.approx(4.0)
    assert len(e) == 2
    assert sorted(w for _, _, w in e) == [1.5, 2.5]


def test_with_weights_preserves_topology():
    e = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 2.0)])
    e2 = e.with_weights(np.array([9.0, 8.0]))
    assert (e2.u == e.u).all() and (e2.v == e.v).all()
    assert e2.w.tolist() == [9.0, 8.0]


def test_with_weights_shape_mismatch_rejected():
    e = EdgeList.from_pairs(3, [(0, 1, 1.0)])
    with pytest.raises(GraphError):
        e.with_weights(np.array([1.0, 2.0]))


def test_subset_mask():
    e = EdgeList.from_pairs(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    sub = e.subset(np.array([True, False, True]))
    assert sub.n_edges == 2
    assert sub.n_vertices == 4
    assert sorted(sub.w.tolist()) == [1.0, 3.0]


def test_has_unique_weights():
    assert EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 2.0)]).has_unique_weights()
    dup = EdgeList.from_pairs(4, [(0, 1, 1.0), (2, 3, 1.0)])
    assert not dup.has_unique_weights()
    assert EdgeList.empty(3).has_unique_weights()
