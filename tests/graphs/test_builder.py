"""GraphBuilder incremental construction."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.builder import (
    GraphBuilder,
    complete_graph_edges,
    from_edges,
    pair_rank_weights,
)


def test_add_edges_grows_vertex_set():
    b = GraphBuilder()
    b.add_edge(0, 5, 1.0)
    assert b.n_vertices == 6
    b.add_edge(9, 2, 2.0)
    assert b.n_vertices == 10


def test_add_vertex_returns_new_id():
    b = GraphBuilder(2)
    assert b.add_vertex() == 2
    assert b.add_vertex() == 3
    assert b.n_vertices == 4


def test_ensure_vertices_only_grows():
    b = GraphBuilder(5)
    b.ensure_vertices(3)
    assert b.n_vertices == 5
    b.ensure_vertices(9)
    assert b.n_vertices == 9


def test_negative_inputs_rejected():
    with pytest.raises(GraphError):
        GraphBuilder(-1)
    with pytest.raises(GraphError):
        GraphBuilder().add_edge(-1, 0, 1.0)


def test_to_csr_dedups_by_default():
    b = GraphBuilder().add_edges([(0, 1, 3.0), (1, 0, 1.0)])
    assert b.n_staged_edges == 2
    g = b.to_csr()
    assert g.n_edges == 1
    assert g.edge_w[0] == 1.0


def test_chaining_api():
    g = GraphBuilder().add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).to_csr()
    assert g.n_vertices == 3
    assert g.n_edges == 2


def test_from_edges_with_explicit_vertex_count():
    g = from_edges([(0, 1, 1.0)], n_vertices=10)
    assert g.n_vertices == 10


def test_complete_graph_edges_structure():
    e = complete_graph_edges(5)
    assert e.n_vertices == 5
    assert e.n_edges == 10
    assert e.has_unique_weights()


def test_complete_graph_custom_weights():
    e = complete_graph_edges(4, weight_fn=lambda u, v: 10.0 * u + v)
    w = dict(((int(a), int(b)), float(x)) for a, b, x in zip(e.u, e.v, e.w))
    assert w[(0, 3)] == 3.0
    assert w[(2, 3)] == 23.0


def test_complete_graph_negative_n_rejected():
    with pytest.raises(GraphError):
        complete_graph_edges(-2)


def test_complete_graph_default_weights_are_int64_pair_ranks():
    e = complete_graph_edges(6)
    assert e.w.dtype == np.int64
    assert np.array_equal(e.w, e.u * 6 + e.v)


def test_pair_rank_weights_exact_past_float53():
    """Regression: float64 pair ranks collide once ``u * n + v > 2**53``.

    The shrunken repro: two adjacent pair ranks straddling a float64
    representation gap.  The old ``float64`` arithmetic mapped both to
    the same value, silently breaking the unique-weight invariant; the
    int64 path keeps them distinct.
    """
    n = 100_000_000  # n**2 ~ 1e16 > 2**53
    iu = np.array([90_071_992, 90_071_992], dtype=np.int64)
    # Ranks 2**53 and 2**53 + 1: the latter is the first integer float64
    # cannot represent, so it rounds onto the former.
    iv = np.array([54_740_992, 54_740_993], dtype=np.int64)
    exact = pair_rank_weights(iu, iv, n)
    assert exact[0] != exact[1]  # distinct pairs, distinct ranks
    assert exact.dtype == np.int64
    # Demonstrate the collision the fix removes: the same arithmetic in
    # float64 cannot tell the two pairs apart.
    collided = iu.astype(np.float64) * n + iv.astype(np.float64)
    assert collided[0] == collided[1]
    assert np.array_equal(exact, iu * np.int64(n) + iv)
