"""Graph generators: determinism, morphology, and structural invariants."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    random_weighted_tree,
    rmat_graph,
    road_network,
    star_graph,
    torus_graph,
)
from repro.graphs.traversal import is_connected
from repro.graphs.validation import validate_csr


@pytest.mark.parametrize(
    "make",
    [
        lambda s: rmat_graph(7, 6, seed=s),
        lambda s: road_network(9, 8, seed=s),
        lambda s: gnm_random_graph(40, 70, seed=s),
        lambda s: random_geometric_graph(50, 0.25, seed=s),
        lambda s: random_weighted_tree(30, seed=s),
        lambda s: random_connected_graph(30, 15, seed=s),
        lambda s: grid_graph(5, 6, seed=s),
        lambda s: torus_graph(4, 5, seed=s),
        lambda s: path_graph(12, seed=s),
        lambda s: cycle_graph(9, seed=s),
        lambda s: star_graph(11, seed=s),
        lambda s: binary_tree_graph(4, seed=s),
        lambda s: caterpillar_graph(6, 3, seed=s),
    ],
    ids=[
        "rmat", "road", "gnm", "geometric", "tree", "connected",
        "grid", "torus", "path", "cycle", "star", "btree", "caterpillar",
    ],
)
class TestAllGenerators:
    def test_structurally_valid(self, make):
        validate_csr(make(0))

    def test_deterministic_under_seed(self, make):
        a, b = make(42), make(42)
        assert a.n_vertices == b.n_vertices
        assert (a.edge_u == b.edge_u).all()
        assert (a.edge_v == b.edge_v).all()
        assert (a.edge_w == b.edge_w).all()

    def test_seed_changes_output(self, make):
        a, b = make(1), make(2)
        same = (
            a.n_edges == b.n_edges
            and (a.edge_u == b.edge_u).all()
            and (a.edge_v == b.edge_v).all()
            and (a.edge_w == b.edge_w).all()
        )
        assert not same

    def test_unique_weights(self, make):
        g = make(3)
        assert np.unique(g.edge_w).size == g.n_edges


# ---------------------------------------------------------------------
# Family-specific structure
# ---------------------------------------------------------------------
def test_rmat_size_and_skew():
    g = rmat_graph(10, 8, seed=5)
    assert g.n_vertices == 1024
    # dedup removes some of the 8192 draws, but most survive
    assert 4000 < g.n_edges <= 8192
    deg = g.degrees
    assert float(np.percentile(deg, 99)) > 4 * deg.mean()  # heavy tail


def test_rmat_scale_zero_and_validation():
    g = rmat_graph(0, 4, seed=1)
    assert g.n_vertices == 1
    assert g.n_edges == 0
    with pytest.raises(GraphError):
        rmat_graph(-1, 4)
    with pytest.raises(GraphError):
        rmat_graph(4, 0)
    with pytest.raises(GraphError):
        rmat_graph(4, 4, a=0.9, b=0.9, c=0.9)


def test_road_is_connected_and_sparse():
    g = road_network(15, 12, seed=7)
    assert is_connected(g)
    avg_deg = 2 * g.n_edges / g.n_vertices
    assert 2.0 < avg_deg < 4.5


def test_road_rejects_bad_params():
    with pytest.raises(GraphError):
        road_network(0, 5)
    with pytest.raises(GraphError):
        road_network(5, 5, drop_fraction=1.0)


def test_gnm_exact_edge_count():
    g = gnm_random_graph(30, 100, seed=3)
    assert g.n_vertices == 30
    assert g.n_edges == 100


def test_gnm_bounds():
    with pytest.raises(GraphError):
        gnm_random_graph(4, 7)  # max is 6
    g = gnm_random_graph(4, 6, seed=0)
    assert g.n_edges == 6  # complete
    assert gnm_random_graph(5, 0).n_edges == 0


def test_geometric_edges_within_radius():
    radius = 0.3
    g = random_geometric_graph(60, radius, seed=4)
    assert (g.edge_w < radius).all()


def test_geometric_connect_bridges_components():
    g = random_geometric_graph(80, 0.08, seed=5, connect=True)
    assert is_connected(g)


def test_tree_generators_have_tree_edge_count():
    assert random_weighted_tree(25, seed=1).n_edges == 24
    assert binary_tree_graph(3).n_edges == 14  # 15 vertices
    assert path_graph(9).n_edges == 8
    assert star_graph(9).n_edges == 8


def test_random_connected_graph_connected():
    g = random_connected_graph(40, 20, seed=6)
    assert is_connected(g)
    assert g.n_edges >= 39


def test_grid_structure():
    g = grid_graph(3, 4)
    assert g.n_vertices == 12
    assert g.n_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
    assert g.degrees.max() == 4
    assert g.degrees.min() == 2


def test_torus_is_regular():
    g = torus_graph(4, 5)
    assert (g.degrees == 4).all()
    with pytest.raises(GraphError):
        torus_graph(2, 5)


def test_cycle_requires_three():
    with pytest.raises(GraphError):
        cycle_graph(2)


def test_caterpillar_structure():
    g = caterpillar_graph(4, 2)
    assert g.n_vertices == 12
    assert g.n_edges == 3 + 8
    assert is_connected(g)


def test_complete_graph_with_and_without_seed():
    g1 = complete_graph(6)
    g2 = complete_graph(6, seed=1)
    assert g1.n_edges == g2.n_edges == 15
    assert not np.array_equal(g1.edge_w, g2.edge_w)


def test_barabasi_albert_structure():
    from repro.graphs.generators import barabasi_albert_graph
    from repro.graphs.properties import classify_morphology

    g = barabasi_albert_graph(400, 3, seed=2)
    validate_csr(g)
    assert is_connected(g)
    assert g.n_edges == 3 + 3 * (400 - 4)  # star seed + m per new vertex
    assert classify_morphology(g) == "scalefree"


def test_barabasi_albert_deterministic_and_validated():
    from repro.graphs.generators import barabasi_albert_graph

    a = barabasi_albert_graph(100, 2, seed=5)
    b = barabasi_albert_graph(100, 2, seed=5)
    assert (a.edge_w == b.edge_w).all()
    with pytest.raises(GraphError):
        barabasi_albert_graph(3, 0)
    with pytest.raises(GraphError):
        barabasi_albert_graph(2, 2)


def test_barabasi_albert_mst_agreement():
    from repro.graphs.generators import barabasi_albert_graph
    from repro.mst import llp_boruvka, llp_prim, verify_minimum

    g = barabasi_albert_graph(150, 3, seed=7)
    a = llp_prim(g)
    b = llp_boruvka(g)
    assert a.edge_set() == b.edge_set()
    verify_minimum(g, a)
