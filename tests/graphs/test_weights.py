"""Weight ranking and uniqueness utilities (with property-based checks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WeightError
from repro.graphs.weights import (
    ensure_unique_weights,
    perturbation_scale,
    weight_order_ranks,
)

finite_weights = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=60,
)


def test_ranks_simple():
    ranks = weight_order_ranks(np.array([5.0, 1.0, 3.0]))
    assert ranks.tolist() == [2, 0, 1]


def test_ranks_ties_broken_by_index():
    ranks = weight_order_ranks(np.array([2.0, 2.0, 1.0]))
    assert ranks.tolist() == [1, 2, 0]


def test_ranks_reject_nonfinite():
    with pytest.raises(WeightError):
        weight_order_ranks(np.array([1.0, float("inf")]))


@given(finite_weights)
@settings(max_examples=60)
def test_ranks_are_permutation_consistent_with_order(ws):
    w = np.asarray(ws)
    ranks = weight_order_ranks(w)
    assert sorted(ranks.tolist()) == list(range(len(ws)))
    # rank order must agree with (weight, index) lexicographic order
    order = sorted(range(len(ws)), key=lambda i: (w[i], i))
    for pos, i in enumerate(order):
        assert ranks[i] == pos


@given(finite_weights)
@settings(max_examples=60)
def test_unique_weights_distinct_and_order_preserving(ws):
    w = np.asarray(ws)
    out = ensure_unique_weights(w)
    assert np.unique(out).size == out.size
    # Originally strictly-ordered pairs keep their order.
    for i in range(len(ws)):
        for j in range(len(ws)):
            if w[i] < w[j]:
                assert out[i] < out[j]


def test_unique_weights_equal_values_ordered_by_index():
    out = ensure_unique_weights(np.array([3.0, 3.0, 3.0]))
    assert out[0] < out[1] < out[2]


def test_perturbation_scale_below_half_gap():
    w = np.array([0.0, 1.0, 1.5])
    assert perturbation_scale(w) <= 0.5 / 2


def test_perturbation_scale_degenerate():
    assert perturbation_scale(np.array([2.0])) == 1.0
    assert perturbation_scale(np.array([2.0, 2.0])) > 0


def test_unique_weights_empty():
    assert ensure_unique_weights(np.array([])).size == 0
