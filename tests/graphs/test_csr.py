"""CSRGraph structure, accessors, and cached tables."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList

from tests.conftest import FIG1_EDGES


def test_half_edge_counts(fig1_graph):
    g = fig1_graph
    assert g.n_vertices == 5
    assert g.n_edges == 7
    assert g.indices.size == 14
    assert int(g.degrees.sum()) == 14


def test_neighbors_sorted_and_symmetric(fig1_graph):
    g = fig1_graph
    for v in range(g.n_vertices):
        nb = g.neighbors(v)
        assert (np.diff(nb) >= 0).all()
        for u in nb:
            assert v in g.neighbors(int(u))


def test_neighbor_weights_parallel_to_neighbors(fig1_graph):
    g = fig1_graph
    # a=0's neighbors: b(5.0), c(4.0)
    nb = g.neighbors(0).tolist()
    w = g.neighbor_weights(0).tolist()
    assert dict(zip(nb, w)) == {1: 5.0, 2: 4.0}


def test_edge_endpoints_and_weight(fig1_graph):
    g = fig1_graph
    for e in range(g.n_edges):
        u, v = g.edge_endpoints(e)
        assert u < v
        assert g.edge_weight(e) in {2.0, 3.0, 4.0, 5.0, 7.0, 9.0, 11.0}


def test_other_endpoint(fig1_graph):
    g = fig1_graph
    u, v = g.edge_endpoints(0)
    assert g.other_endpoint(0, u) == v
    assert g.other_endpoint(0, v) == u
    with pytest.raises(GraphError):
        outside = ({0, 1, 2, 3, 4} - {u, v}).pop()
        g.other_endpoint(0, outside)


def test_ranks_are_weight_order_permutation(fig1_graph):
    g = fig1_graph
    assert sorted(g.ranks.tolist()) == list(range(7))
    by_rank = g.edge_w[g.edge_by_rank]
    assert (np.diff(by_rank) > 0).all()  # distinct weights: strictly increasing


def test_min_rank_per_vertex_matches_bruteforce(fig1_graph):
    g = fig1_graph
    for v in range(g.n_vertices):
        expected = int(g.neighbor_ranks(v).min())
        assert g.min_rank_per_vertex[v] == expected


def test_min_edge_per_vertex_fig1(fig1_graph):
    g = fig1_graph
    # a's min edge is a-c (4); b's is b-c (3); d's and e's are d-e (2).
    w_of = lambda v: g.edge_weight(int(g.min_edge_per_vertex[v]))
    assert w_of(0) == 4.0
    assert w_of(1) == 3.0
    assert w_of(2) == 3.0
    assert w_of(3) == 2.0
    assert w_of(4) == 2.0


def test_isolated_vertex_has_no_min_edge():
    g = from_edges([(0, 1, 1.0)], n_vertices=3)
    assert g.min_edge_per_vertex[2] == -1
    assert g.degree(2) == 0


def test_half_edge_sources(fig1_graph):
    g = fig1_graph
    src = g.half_edge_sources
    for v in range(g.n_vertices):
        lo, hi = g.indptr[v], g.indptr[v + 1]
        assert (src[lo:hi] == v).all()


def test_py_adjacency_matches_numpy_view(fig1_graph):
    g = fig1_graph
    nbrs, ranks, eids = g.py_adjacency
    for v in range(g.n_vertices):
        assert nbrs[v] == g.neighbors(v).tolist()
        assert ranks[v] == g.neighbor_ranks(v).tolist()
        assert eids[v] == g.neighbor_edge_ids(v).tolist()


def test_roundtrip_to_edgelist(fig1_graph):
    g = fig1_graph
    e = g.to_edgelist()
    g2 = CSRGraph.from_edgelist(e)
    assert (g2.indptr == g.indptr).all()
    assert (g2.indices == g.indices).all()
    assert (g2.weights == g.weights).all()


def test_empty_graph():
    g = CSRGraph.from_edgelist(EdgeList.empty(0))
    assert g.n_vertices == 0
    assert g.n_edges == 0
    assert g.total_weight == 0.0


def test_vertices_without_edges():
    g = CSRGraph.from_edgelist(EdgeList.empty(4))
    assert g.n_vertices == 4
    assert all(g.degree(v) == 0 for v in range(4))


def test_iter_edges(fig1_graph):
    triples = list(fig1_graph.iter_edges())
    assert len(triples) == 7
    assert {w for _, _, w in triples} == {2.0, 3.0, 4.0, 5.0, 7.0, 9.0, 11.0}


def test_total_weight(fig1_graph):
    assert fig1_graph.total_weight == pytest.approx(sum(w for _, _, w in FIG1_EDGES))
