"""BFS/DFS traversal primitives."""

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.graphs.traversal import bfs_levels, bfs_order, bfs_tree, dfs_order, is_connected


def test_bfs_levels_on_path():
    g = path_graph(6)
    levels = bfs_levels(g, 0)
    assert levels.tolist() == [0, 1, 2, 3, 4, 5]


def test_bfs_levels_from_middle():
    g = path_graph(5)
    assert bfs_levels(g, 2).tolist() == [2, 1, 0, 1, 2]


def test_bfs_levels_unreachable_marked_minus_one():
    g = from_edges([(0, 1, 1.0)], n_vertices=4)
    levels = bfs_levels(g, 0)
    assert levels[0] == 0 and levels[1] == 1
    assert levels[2] == -1 and levels[3] == -1


def test_bfs_levels_star():
    g = star_graph(9)
    levels = bfs_levels(g, 0)
    assert levels[0] == 0
    assert (levels[1:] == 1).all()


def test_bfs_order_level_monotone():
    g = grid_graph(4, 5)
    order = bfs_order(g, 0)
    levels = bfs_levels(g, 0)
    assert (np.diff(levels[order]) >= 0).all()
    assert order.size == g.n_vertices


def test_bfs_tree_parents_consistent():
    g = grid_graph(3, 4)
    parent = bfs_tree(g, 0)
    levels = bfs_levels(g, 0)
    assert parent[0] == -1
    for v in range(1, g.n_vertices):
        p = int(parent[v])
        assert p >= 0
        assert levels[v] == levels[p] + 1
        assert v in g.neighbors(p)


def test_dfs_preorder_visits_all():
    g = grid_graph(3, 3)
    order = dfs_order(g, 0)
    assert sorted(order) == list(range(9))
    assert order[0] == 0


def test_dfs_prefers_smallest_neighbor():
    g = star_graph(5)
    assert dfs_order(g, 0)[:2] == [0, 1]


def test_is_connected():
    assert is_connected(path_graph(5))
    assert not is_connected(from_edges([(0, 1, 1.0)], n_vertices=3))
    assert is_connected(from_edges([], n_vertices=0))
    assert not is_connected(from_edges([], n_vertices=2))
    assert is_connected(from_edges([], n_vertices=1))
