"""Connected-component labelling: three implementations must agree."""

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.graphs.components import (
    components_bfs,
    components_label_propagation,
    components_union_find,
    count_components,
)
from repro.graphs.generators import gnm_random_graph, grid_graph

ALL_IMPLS = [components_bfs, components_union_find, components_label_propagation]


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_single_component(impl):
    g = grid_graph(4, 4)
    cid = impl(g)
    assert (cid == 0).all()


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_two_components_least_vertex_labels(impl):
    g = from_edges([(0, 1, 1.0), (2, 3, 2.0)], n_vertices=5)
    cid = impl(g)
    assert cid.tolist() == [0, 0, 2, 2, 4]


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_no_edges(impl):
    g = from_edges([], n_vertices=4)
    assert impl(g).tolist() == [0, 1, 2, 3]


def test_implementations_agree_on_random_graphs():
    for seed in range(6):
        # sparse: expect several components
        g = gnm_random_graph(50, 30, seed=seed)
        ref = components_union_find(g)
        assert (components_bfs(g) == ref).all()
        assert (components_label_propagation(g) == ref).all()


def test_count_components():
    assert count_components(from_edges([], n_vertices=5)) == 5
    assert count_components(grid_graph(3, 3)) == 1
    assert count_components(from_edges([(0, 1, 1.0), (2, 3, 1.5)], n_vertices=4)) == 2
    assert count_components(from_edges([], n_vertices=0)) == 0


def test_label_propagation_round_limit():
    g = grid_graph(2, 8)
    cid = components_label_propagation(g, max_rounds=100)
    assert (cid == 0).all()
