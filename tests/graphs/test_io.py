"""Graph file formats: round-trips and malformed-input rejection."""

import io

import numpy as np
import pytest

from repro.errors import GraphIOError
from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, road_network
from repro.graphs.io import (
    load_npz,
    read_dimacs,
    read_edge_tsv,
    read_matrix_market,
    save_npz,
    write_dimacs,
    write_edge_tsv,
    write_matrix_market,
)
from repro.graphs.validation import validate_csr


def _same_graph(a, b):
    assert a.n_vertices == b.n_vertices
    assert a.n_edges == b.n_edges
    assert (a.edge_u == b.edge_u).all()
    assert (a.edge_v == b.edge_v).all()
    assert np.allclose(a.edge_w, b.edge_w)


@pytest.fixture
def sample():
    return gnm_random_graph(25, 60, seed=9)


# ---------------------------------------------------------------- DIMACS
def test_dimacs_roundtrip(sample, tmp_path):
    path = tmp_path / "g.gr"
    write_dimacs(sample, path, comment="test graph")
    g2 = read_dimacs(path)
    validate_csr(g2)
    _same_graph(sample, g2)


def test_dimacs_parses_usa_road_style():
    text = """c USA-road-d style file
c with comments
p sp 4 6
a 1 2 10
a 2 1 10
a 2 3 5
a 3 2 5
a 3 4 2.5
a 4 3 2.5
"""
    g = read_dimacs(io.StringIO(text))
    assert g.n_vertices == 4
    assert g.n_edges == 3
    assert sorted(g.edge_w.tolist()) == [2.5, 5.0, 10.0]


def test_dimacs_missing_problem_line():
    with pytest.raises(GraphIOError):
        read_dimacs(io.StringIO("a 1 2 3\n"))


def test_dimacs_arc_count_mismatch():
    with pytest.raises(GraphIOError):
        read_dimacs(io.StringIO("p sp 2 5\na 1 2 1\n"))


def test_dimacs_vertex_out_of_range():
    with pytest.raises(GraphIOError):
        read_dimacs(io.StringIO("p sp 2 1\na 1 9 1\n"))


def test_dimacs_unknown_record():
    with pytest.raises(GraphIOError):
        read_dimacs(io.StringIO("p sp 2 1\nx 1 2 1\n"))


# ---------------------------------------------------------- MatrixMarket
def test_matrix_market_roundtrip(sample, tmp_path):
    path = tmp_path / "g.mtx"
    write_matrix_market(sample, path)
    g2 = read_matrix_market(path)
    validate_csr(g2)
    _same_graph(sample, g2)


def test_matrix_market_pattern_field():
    text = """%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 2
"""
    g = read_matrix_market(io.StringIO(text))
    assert g.n_edges == 2
    assert (g.edge_w == 1.0).all()


def test_matrix_market_rejects_general_symmetry():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1.0\n"
    with pytest.raises(GraphIOError):
        read_matrix_market(io.StringIO(text))


def test_matrix_market_rejects_nonsquare():
    text = "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 2 1.0\n"
    with pytest.raises(GraphIOError):
        read_matrix_market(io.StringIO(text))


def test_matrix_market_rejects_bad_header():
    with pytest.raises(GraphIOError):
        read_matrix_market(io.StringIO("not a header\n"))


def test_matrix_market_skips_self_loops():
    text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3.0\n2 1 1.0\n"
    g = read_matrix_market(io.StringIO(text))
    assert g.n_edges == 1


# ------------------------------------------------------------------ TSV
def test_tsv_roundtrip(sample, tmp_path):
    path = tmp_path / "g.tsv"
    write_edge_tsv(sample, path)
    g2 = read_edge_tsv(path)
    validate_csr(g2)
    # vertex count inferred from max id; isolated trailing vertices may drop
    assert g2.n_edges == sample.n_edges
    assert np.allclose(np.sort(g2.edge_w), np.sort(sample.edge_w))


def test_tsv_default_weight_and_comments():
    g = read_edge_tsv(io.StringIO("# comment\n0 1\n1 2 2.5\n"))
    assert g.n_edges == 2
    assert sorted(g.edge_w.tolist()) == [1.0, 2.5]


def test_tsv_explicit_vertex_count():
    g = read_edge_tsv(io.StringIO("0\t1\t1.0\n"), n_vertices=10)
    assert g.n_vertices == 10
    with pytest.raises(GraphIOError):
        read_edge_tsv(io.StringIO("0\t5\t1.0\n"), n_vertices=3)


def test_tsv_malformed_line():
    with pytest.raises(GraphIOError):
        read_edge_tsv(io.StringIO("0 1 2 3 4\n"))
    with pytest.raises(GraphIOError):
        read_edge_tsv(io.StringIO("a b\n"))
    with pytest.raises(GraphIOError):
        read_edge_tsv(io.StringIO("-1 2\n"))


# ------------------------------------------------------------------ NPZ
def test_npz_roundtrip(tmp_path):
    g = road_network(8, 9, seed=3)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    g2 = load_npz(path)
    validate_csr(g2)
    _same_graph(g, g2)


def test_npz_preserves_isolated_vertices(tmp_path):
    g = from_edges([(0, 1, 1.0)], n_vertices=5)
    path = tmp_path / "iso.npz"
    save_npz(g, path)
    assert load_npz(path).n_vertices == 5


def test_npz_missing_field(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, foo=np.arange(3))
    with pytest.raises(GraphIOError):
        load_npz(path)


# -------------------------------------------------- property-based round-trips
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def small_graphs(draw):
    n = draw(st.integers(1, 12))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(0, min(max_m, 20)))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < m:
        a, b = rng.integers(0, n, size=2)
        if a != b:
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    triples = [(u, v, float(w)) for (u, v), w in zip(sorted(pairs), rng.random(m))]
    return from_edges(triples, n_vertices=n)


@given(g=small_graphs())
@settings(max_examples=25, deadline=None)
def test_dimacs_roundtrip_property(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.gr"
    write_dimacs(g, path)
    _same_graph(g, read_dimacs(path))


@given(g=small_graphs())
@settings(max_examples=25, deadline=None)
def test_matrix_market_roundtrip_property(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.mtx"
    write_matrix_market(g, path)
    _same_graph(g, read_matrix_market(path))


@given(g=small_graphs())
@settings(max_examples=25, deadline=None)
def test_npz_roundtrip_property(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.npz"
    save_npz(g, path)
    _same_graph(g, load_npz(path))
