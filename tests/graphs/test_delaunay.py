"""Delaunay generator: planarity bounds and the Euclidean-MST oracle."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators.delaunay import delaunay_edgelist, delaunay_graph
from repro.graphs.traversal import is_connected
from repro.graphs.validation import validate_csr
from repro.mst.kruskal import kruskal


def test_structurally_valid_and_connected():
    g = delaunay_graph(120, seed=1)
    validate_csr(g)
    assert is_connected(g)


def test_planarity_edge_bound():
    # planar: m <= 3n - 6
    g = delaunay_graph(200, seed=2)
    assert g.n_edges <= 3 * g.n_vertices - 6


def test_deterministic_and_seed_sensitive():
    a = delaunay_graph(60, seed=7)
    b = delaunay_graph(60, seed=7)
    c = delaunay_graph(60, seed=8)
    assert (a.edge_w == b.edge_w).all()
    assert a.n_edges != c.n_edges or not (a.edge_w == c.edge_w).all()


def test_congestion_changes_weights_not_topology():
    a = delaunay_graph(50, seed=3)
    b = delaunay_graph(50, seed=3, congestion_sigma=0.4)
    assert (a.edge_u == b.edge_u).all() and (a.edge_v == b.edge_v).all()
    assert not np.allclose(a.edge_w, b.edge_w)


def test_explicit_points():
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    g = delaunay_graph(0, points=pts)
    assert g.n_vertices == 4
    assert 5 <= g.n_edges <= 6  # unit square: 4 sides + 1-2 diagonals


def test_mst_is_euclidean_mst():
    """The MST of a Delaunay triangulation equals the Euclidean MST."""
    from scipy.spatial.distance import pdist, squareform
    import networkx as nx

    rng = np.random.default_rng(4)
    pts = rng.random((40, 2))
    g = delaunay_graph(0, points=pts)
    mst = kruskal(g)
    ours = {
        (int(g.edge_u[e]), int(g.edge_v[e])) for e in mst.edge_ids
    }

    # Euclidean MST over the complete graph.
    d = squareform(pdist(pts))
    G = nx.Graph()
    for i in range(40):
        for j in range(i + 1, 40):
            G.add_edge(i, j, weight=d[i, j])
    ref = {
        (min(a, b), max(a, b))
        for a, b in nx.minimum_spanning_tree(G).edges()
    }
    assert ours == ref


def test_too_few_points_rejected():
    with pytest.raises(GraphError):
        delaunay_graph(2, seed=1)
    with pytest.raises(GraphError):
        delaunay_edgelist(0, points=np.zeros((3, 3)))
