"""Chunked CSR build: byte-identical to the one-shot lexsort build.

The chunked counting-sort construction exists purely to bound peak
memory; it must never change a single array element.  The checking
families cover every adversarial shape the repo knows (parallel edges,
duplicate weights, empty graphs, isolated vertices, huge int64 weights),
so identity across all of them at several chunk sizes is the strongest
equivalence statement the test tier can make.
"""

import zlib

import numpy as np
import pytest

from repro.checking.families import FAMILIES
from repro.graphs.csr import CSRGraph
from repro.graphs.validation import validate_csr


def _family_edgelist(family, size=24, seed=3):
    rng = np.random.default_rng((zlib.crc32(family.encode()), seed))
    return FAMILIES[family](rng, size)


def _assert_identical(a: CSRGraph, b: CSRGraph):
    assert a.n_vertices == b.n_vertices
    assert a.n_edges == b.n_edges
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.edge_ids, b.edge_ids)
    assert np.array_equal(a.weights, b.weights)
    assert np.array_equal(a.edge_u, b.edge_u)
    assert np.array_equal(a.edge_v, b.edge_v)
    assert np.array_equal(a.edge_w, b.edge_w)
    assert np.array_equal(a.ranks, b.ranks)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_chunked_build_identical_to_direct(family):
    el = _family_edgelist(family)
    direct = CSRGraph.from_edgelist(el)
    for chunk_edges in (1, 7, 1 << 20):
        chunked = CSRGraph.from_edgelist(el, chunk_edges=chunk_edges)
        _assert_identical(direct, chunked)
        validate_csr(chunked)


@pytest.mark.parametrize("family", ["parallel-edges", "random-duplicates"])
def test_memmap_build_identical_to_direct(family, tmp_path):
    el = _family_edgelist(family, size=40)
    direct = CSRGraph.from_edgelist(el)
    mapped = CSRGraph.from_edgelist(el, chunk_edges=11, memmap_dir=tmp_path)
    _assert_identical(direct, mapped)
    validate_csr(mapped)
    # Anonymous memmaps: nothing left behind on disk.
    assert list(tmp_path.iterdir()) == []


def test_memmap_arrays_are_readonly(tmp_path):
    el = _family_edgelist("random-duplicates", size=30)
    g = CSRGraph.from_edgelist(el, chunk_edges=8, memmap_dir=tmp_path)
    with pytest.raises((ValueError, RuntimeError)):
        g.indices[0] = 99


def test_chunked_build_on_multigraph_keeps_all_half_edges():
    el = _family_edgelist("parallel-edges", size=40)
    direct = CSRGraph.from_edgelist(el)
    chunked = CSRGraph.from_edgelist(el, chunk_edges=3)
    assert chunked.indices.size == 2 * el.n_edges
    _assert_identical(direct, chunked)
