"""Subgraph extraction utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph, grid_graph
from repro.graphs.subgraph import edge_subgraph, induced_subgraph, largest_component
from repro.graphs.traversal import is_connected
from repro.graphs.validation import validate_csr


def test_induced_subgraph_basic(fig1_graph):
    sub = induced_subgraph(fig1_graph, np.array([0, 1, 2]))  # a, b, c
    validate_csr(sub.graph)
    assert sub.graph.n_vertices == 3
    assert sub.graph.n_edges == 3  # a-b, a-c, b-c
    assert sorted(sub.graph.edge_w.tolist()) == [3.0, 4.0, 5.0]
    # mapping round-trips
    for v in range(3):
        assert sub.original_vertex(v) in (0, 1, 2)
    orig = sub.original_edges(np.arange(3))
    assert {fig1_graph.edge_weight(int(e)) for e in orig} == {3.0, 4.0, 5.0}


def test_induced_subgraph_excludes_crossing_edges(fig1_graph):
    sub = induced_subgraph(fig1_graph, np.array([3, 4]))  # d, e
    assert sub.graph.n_edges == 1
    assert sub.graph.edge_w[0] == 2.0


def test_induced_subgraph_out_of_range(fig1_graph):
    with pytest.raises(GraphError):
        induced_subgraph(fig1_graph, np.array([99]))


def test_induced_empty_selection(fig1_graph):
    sub = induced_subgraph(fig1_graph, np.array([], dtype=np.int64))
    assert sub.graph.n_vertices == 0


def test_edge_subgraph(fig1_graph):
    # pick the two lightest edges
    ids = np.argsort(fig1_graph.edge_w)[:2]
    sub = edge_subgraph(fig1_graph, ids)
    validate_csr(sub.graph)
    assert sub.graph.n_edges == 2
    assert sorted(sub.graph.edge_w.tolist()) == [2.0, 3.0]
    assert (np.sort(sub.original_edges(np.arange(2))) == np.sort(ids)).all()


def test_edge_subgraph_out_of_range(fig1_graph):
    with pytest.raises(GraphError):
        edge_subgraph(fig1_graph, np.array([fig1_graph.n_edges]))


def test_largest_component():
    g = from_edges(
        [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 3.0)], n_vertices=6
    )
    sub = largest_component(g)
    assert sub.graph.n_vertices == 3
    assert is_connected(sub.graph)
    assert set(sub.vertex_map.tolist()) == {0, 1, 2}


def test_largest_component_of_connected_graph_is_identity_sized():
    g = grid_graph(4, 4, seed=1)
    sub = largest_component(g)
    assert sub.graph.n_vertices == g.n_vertices
    assert sub.graph.n_edges == g.n_edges


def test_largest_component_empty_graph():
    g = from_edges([], n_vertices=0)
    assert largest_component(g).graph.n_vertices == 0


def test_mst_of_subgraph_maps_back():
    from repro.mst.kruskal import kruskal

    g = gnm_random_graph(40, 60, seed=5)
    sub = largest_component(g)
    mst_sub = kruskal(sub.graph)
    original_ids = sub.original_edges(mst_sub.edge_ids)
    # the mapped-back edges are a subset of the full MSF
    full = kruskal(g).edge_set()
    assert set(int(e) for e in original_ids) <= full
