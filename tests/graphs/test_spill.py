"""Spillable array growth: doubling appends and anonymous memmap migration."""

import numpy as np
import pytest

from repro.graphs.spill import (
    ArrayAccumulator,
    anonymous_memmap,
    DEFAULT_SPILL_THRESHOLD_BYTES,
)


def test_anonymous_memmap_is_writable_and_leaves_no_file(tmp_path):
    arr = anonymous_memmap(100, np.int64, spill_dir=tmp_path)
    arr[:] = np.arange(100)
    assert isinstance(arr, np.memmap)
    assert arr[42] == 42
    # The backing file is unlinked at creation: nothing remains on disk
    # to clean up even while the mapping is alive.
    assert list(tmp_path.iterdir()) == []


def test_anonymous_memmap_tuple_shape():
    arr = anonymous_memmap((3, 4), np.float64)
    arr[:] = 1.5
    assert arr.shape == (3, 4)
    assert arr.sum() == pytest.approx(18.0)


def test_accumulator_matches_concatenate():
    rng = np.random.default_rng(7)
    acc = ArrayAccumulator(np.int64, initial_capacity=4)
    batches = [rng.integers(0, 1000, size=k) for k in (0, 1, 3, 17, 100, 5)]
    for b in batches:
        acc.extend(b)
    expected = np.concatenate(batches)
    assert len(acc) == expected.size
    assert np.array_equal(acc.result(), expected)
    assert not acc.spilled


def test_accumulator_spills_past_threshold(tmp_path):
    acc = ArrayAccumulator(
        np.int64, spill=True, spill_dir=tmp_path,
        spill_threshold_bytes=1024, initial_capacity=4,
    )
    acc.extend(np.arange(10))
    assert not acc.spilled
    acc.extend(np.arange(10, 500))
    assert acc.spilled  # 500 * 8 bytes > the 1 KiB threshold
    assert isinstance(acc.result(), np.memmap)
    assert np.array_equal(acc.result(), np.arange(500))
    # Anonymous spill: the directory stays empty.
    assert list(tmp_path.iterdir()) == []


def test_accumulator_stays_on_disk_once_spilled(tmp_path):
    acc = ArrayAccumulator(
        np.float64, spill_dir=tmp_path, spill_threshold_bytes=64,
        initial_capacity=2,
    )
    acc.extend(np.linspace(0.0, 1.0, 50))
    assert acc.spilled
    acc.extend([2.0])
    assert acc.spilled
    assert acc.result()[-1] == 2.0


def test_accumulator_without_spill_never_uses_memmap():
    acc = ArrayAccumulator(np.int64, initial_capacity=1)
    acc.extend(np.arange(10_000))
    assert not acc.spilled
    assert not isinstance(acc.result(), np.memmap)


def test_default_threshold_is_large_enough_for_test_graphs():
    assert DEFAULT_SPILL_THRESHOLD_BYTES >= 64 << 20
