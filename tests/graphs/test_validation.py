"""Structural validation of edge lists and CSR graphs."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.graphs.validation import validate_csr, validate_edgelist


def test_valid_graphs_pass(any_graph):
    validate_csr(any_graph)
    validate_edgelist(any_graph.to_edgelist())


def test_empty_passes():
    validate_edgelist(EdgeList.empty(3))
    validate_csr(CSRGraph.from_edgelist(EdgeList.empty(3)))


def _raw_edgelist(n, u, v, w):
    """Bypass canonicalisation to build a deliberately broken edge list."""
    return EdgeList(
        n,
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
    )


def test_noncanonical_orientation_rejected():
    bad = _raw_edgelist(3, [2], [1], [1.0])
    with pytest.raises(ValidationError):
        validate_edgelist(bad)


def test_self_loop_rejected():
    bad = _raw_edgelist(3, [1], [1], [1.0])
    with pytest.raises(ValidationError):
        validate_edgelist(bad)


def test_duplicate_edge_rejected():
    bad = _raw_edgelist(3, [0, 0], [1, 1], [1.0, 2.0])
    with pytest.raises(ValidationError):
        validate_edgelist(bad)


def test_nan_weight_rejected():
    bad = _raw_edgelist(3, [0], [1], [float("nan")])
    with pytest.raises(ValidationError):
        validate_edgelist(bad)


def test_out_of_range_vertex_rejected():
    bad = _raw_edgelist(2, [0], [5], [1.0])
    with pytest.raises(ValidationError):
        validate_edgelist(bad)


def test_tampered_csr_indptr_rejected(fig1_graph):
    g = from_edges([(0, 1, 1.0), (1, 2, 2.0)])
    broken = g.indptr.copy()
    broken[1] = 99
    g2 = object.__new__(type(g))
    for slot in ("n_vertices", "n_edges", "indices", "weights", "edge_ids",
                 "edge_u", "edge_v", "edge_w", "ranks", "half_ranks"):
        setattr(g2, slot, getattr(g, slot))
    g2.indptr = broken
    g2.__dict__ = {}
    with pytest.raises(ValidationError):
        validate_csr(g2)
