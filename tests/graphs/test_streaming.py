"""Streaming readers: chunk alignment, golden files, and the strict gate.

The chunked fast path must be byte-for-byte equivalent to the original
per-line readers on every input shape that exercises a boundary: arcs
split across chunk reads, comment-only files, CRLF line endings, and
irregular chunks that fall back to the per-line parser mid-file.
"""

import io
import warnings

import numpy as np
import pytest

from repro.errors import GraphIOError
from repro.graphs.generators import gnm_random_graph
from repro.graphs.io import read_dimacs, read_edge_tsv, write_dimacs, write_edge_tsv
from repro.graphs.io.streaming import (
    all_lines_start_with,
    iter_line_chunks,
    parse_number_table,
)
from repro.graphs.validation import validate_csr


def _reader(data: bytes):
    fh = io.BytesIO(data)
    return fh.read


# ------------------------------------------------------------ primitives
def test_iter_line_chunks_reassembles_split_lines():
    data = b"alpha\nbeta\ngamma\ndelta"
    for chunk_bytes in (1, 2, 3, 5, 7, 100):
        chunks = list(iter_line_chunks(_reader(data), chunk_bytes))
        assert b"".join(chunks) == data
        # Every chunk but the last ends at a line boundary.
        for c in chunks[:-1]:
            assert c.endswith(b"\n")


def test_iter_line_chunks_handles_missing_trailing_newline():
    chunks = list(iter_line_chunks(_reader(b"only-line-no-newline"), 4))
    assert chunks == [b"only-line-no-newline"]


def test_iter_line_chunks_empty_input():
    assert list(iter_line_chunks(_reader(b""), 8)) == []


def test_all_lines_start_with():
    assert all_lines_start_with(b"a 1 2 3\na 4 5 6\n", b"a")
    assert all_lines_start_with(b"a 1 2 3", b"a")  # no trailing newline
    assert not all_lines_start_with(b"a 1\nc comment\n", b"a")
    assert not all_lines_start_with(b"c x\na 1\n", b"a")
    # Blank lines must defeat the fast path (they need per-line handling).
    assert not all_lines_start_with(b"a 1\n\na 2\n", b"a")


def test_parse_number_table_shapes():
    out = parse_number_table(b"1 2 3\n4 5 6\n")
    assert out.shape == (2, 3)
    assert np.array_equal(out, [[1, 2, 3], [4, 5, 6]])
    assert parse_number_table(b"  \n").size == 0
    with pytest.raises(ValueError):
        parse_number_table(b"1 2 3\n4 5\n")  # ragged rows


# ------------------------------------------------------------ DIMACS
def _dimacs_bytes(g) -> bytes:
    buf = io.StringIO()
    write_dimacs(g, buf)
    return buf.getvalue().encode()


def test_dimacs_identical_across_chunk_sizes(tmp_path):
    """Arcs split mid-line across chunk reads must parse identically."""
    g = gnm_random_graph(40, 120, seed=11)
    data = _dimacs_bytes(g)
    baseline = read_dimacs(io.BytesIO(data))
    for chunk_bytes in (1, 3, 17, 64, 4096):
        g2 = read_dimacs(io.BytesIO(data), chunk_bytes=chunk_bytes)
        validate_csr(g2)
        assert g2.n_vertices == baseline.n_vertices
        assert np.array_equal(g2.edge_u, baseline.edge_u)
        assert np.array_equal(g2.edge_v, baseline.edge_v)
        assert np.array_equal(g2.edge_w, baseline.edge_w)


def test_dimacs_crlf_line_endings():
    text = "c crlf file\r\np sp 3 2\r\na 1 2 1.5\r\na 2 3 2.5\r\n"
    g = read_dimacs(io.BytesIO(text.encode()))
    assert g.n_vertices == 3
    assert g.n_edges == 2
    assert sorted(g.edge_w.tolist()) == [1.5, 2.5]


def test_dimacs_comment_only_file_rejected():
    text = "c nothing but comments\nc really\n"
    with pytest.raises(GraphIOError, match="problem line"):
        read_dimacs(io.StringIO(text))


def test_dimacs_comments_interleaved_with_arcs():
    """Comments mid-arc-block force per-chunk fallback without data loss."""
    text = "p sp 4 3\na 1 2 1\nc interruption\na 2 3 2\nc more\na 3 4 3\n"
    for chunk_bytes in (1, 8, 4096):
        g = read_dimacs(io.BytesIO(text.encode()), chunk_bytes=chunk_bytes)
        assert g.n_edges == 3
        assert sorted(g.edge_w.tolist()) == [1.0, 2.0, 3.0]


def test_dimacs_nan_weight_survives_fast_path():
    """'nan' contains the arc marker byte; it must reach the slow parser.

    The chunked fast path strips ``a`` bytes before tokenizing, which
    would corrupt ``nan`` to ``nn`` — the parser must instead fall back
    and parse the token properly, so the only error is the graph layer's
    own finite-weight check, never a silent misparse.
    """
    from repro.errors import WeightError

    text = "p sp 2 1\na 1 2 nan\n"
    with pytest.raises(WeightError, match="finite"):
        read_dimacs(io.StringIO(text))


def test_dimacs_strict_mismatch_reports_observed_count():
    text = "p sp 4 6\na 1 2 10\na 2 3 5\n"
    with pytest.raises(GraphIOError, match="declares 6 arcs, file has 2"):
        read_dimacs(io.StringIO(text))


def test_dimacs_tolerant_mode_warns_and_parses():
    text = "p sp 4 6\na 1 2 10\na 2 3 5\n"
    with pytest.warns(UserWarning, match="declares 6 arcs, file has 2"):
        g = read_dimacs(io.StringIO(text), strict=False)
    assert g.n_vertices == 4
    assert g.n_edges == 2


def test_dimacs_strict_match_is_silent():
    text = "p sp 3 2\na 1 2 1\na 2 3 2\n"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        g = read_dimacs(io.StringIO(text))
    assert g.n_edges == 2


def test_dimacs_error_line_numbers_survive_chunking():
    text = "p sp 3 2\na 1 2 1\na 9 9 9\n"
    with pytest.raises(GraphIOError, match="line 3"):
        read_dimacs(io.BytesIO(text.encode()), chunk_bytes=4)


def test_dimacs_spill_path_roundtrip(tmp_path):
    g = gnm_random_graph(30, 90, seed=5)
    path = tmp_path / "g.gr"
    write_dimacs(g, path)
    g2 = read_dimacs(path, spill=True, spill_dir=tmp_path, memmap_dir=tmp_path)
    assert np.array_equal(g2.edge_u, g.edge_u)
    assert np.array_equal(g2.edge_w, g.edge_w)
    # Anonymous spill files are unlinked immediately: only g.gr remains.
    assert [p.name for p in tmp_path.iterdir()] == ["g.gr"]


# ------------------------------------------------------------ edge TSV
def test_tsv_identical_across_chunk_sizes():
    g = gnm_random_graph(30, 80, seed=2)
    buf = io.StringIO()
    write_edge_tsv(g, buf)
    data = buf.getvalue().encode()
    baseline = read_edge_tsv(io.BytesIO(data))
    for chunk_bytes in (1, 5, 33, 4096):
        g2 = read_edge_tsv(io.BytesIO(data), chunk_bytes=chunk_bytes)
        assert np.array_equal(g2.edge_u, baseline.edge_u)
        assert np.array_equal(g2.edge_v, baseline.edge_v)
        assert np.array_equal(g2.edge_w, baseline.edge_w)


def test_tsv_comment_mid_stream_and_default_weight():
    text = "0\t1\t2.0\n# interruption\n1\t2\n"
    for chunk_bytes in (1, 7, 4096):
        g = read_edge_tsv(io.BytesIO(text.encode()), chunk_bytes=chunk_bytes)
        assert g.n_edges == 2
        assert sorted(g.edge_w.tolist()) == [1.0, 2.0]


def test_tsv_error_line_numbers_survive_chunking():
    text = "0\t1\t2.0\n0\tbroken\tx\n"
    with pytest.raises(GraphIOError, match="line 2"):
        read_edge_tsv(io.BytesIO(text.encode()), chunk_bytes=3)
