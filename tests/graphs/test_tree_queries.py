"""Forest path-max oracle (binary lifting) against a brute-force walker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.tree_queries import DISCONNECTED, ForestPathMax


def _brute_force(n, fu, fv, frank):
    """Dict-based DFS path-max for cross-checking."""
    adj = {v: [] for v in range(n)}
    for a, b, r in zip(fu, fv, frank):
        adj[a].append((b, r))
        adj[b].append((a, r))

    def query(u, v):
        if u == v:
            return -1
        stack = [(u, -1, -1)]
        seen = {u}
        while stack:
            x, mx, _ = stack.pop()
            for y, r in adj[x]:
                if y in seen:
                    continue
                seen.add(y)
                best = max(mx, r)
                if y == v:
                    return best
                stack.append((y, best, 0))
        return DISCONNECTED

    return query


def test_single_path():
    # path 0-1-2-3 with ranks 5, 2, 9
    o = ForestPathMax(4, [0, 1, 2], [1, 2, 3], [5, 2, 9])
    assert o.path_max(0, 3) == 9
    assert o.path_max(0, 2) == 5
    assert o.path_max(1, 2) == 2
    assert o.path_max(2, 0) == 5  # symmetric
    assert o.path_max(1, 1) == -1


def test_disconnected_components():
    o = ForestPathMax(5, [0, 3], [1, 4], [7, 8])
    assert o.path_max(0, 1) == 7
    assert o.path_max(0, 3) == DISCONNECTED
    assert not o.connected(1, 4)
    assert o.connected(3, 4)


def test_star_queries():
    n = 9
    o = ForestPathMax(n, [0] * (n - 1), list(range(1, n)), list(range(10, 18)))
    for a in range(1, n):
        for b in range(1, n):
            if a != b:
                assert o.path_max(a, b) == max(a + 9, b + 9)


def test_rejects_cycle():
    with pytest.raises(GraphError):
        ForestPathMax(3, [0, 1, 2], [1, 2, 0], [1, 2, 3])


def test_rejects_too_many_edges():
    with pytest.raises(GraphError):
        ForestPathMax(2, [0, 0], [1, 1], [1, 2])


def test_rejects_out_of_range_query():
    o = ForestPathMax(2, [0], [1], [3])
    with pytest.raises(GraphError):
        o.path_max(0, 5)


def test_empty_forest():
    o = ForestPathMax(3, [], [], [])
    assert o.path_max(0, 0) == -1
    assert o.path_max(0, 2) == DISCONNECTED


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_matches_brute_force_on_random_forests(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    # random forest: each vertex > 0 attaches to an earlier one with prob 0.8
    fu, fv, frank = [], [], []
    rank = 0
    for v in range(1, n):
        if rng.random() < 0.8:
            fu.append(int(rng.integers(0, v)))
            fv.append(v)
            frank.append(rank)
            rank += 1
    o = ForestPathMax(n, fu, fv, frank)
    brute = _brute_force(n, fu, fv, frank)
    qs = rng.integers(0, n, size=(30, 2))
    for u, v in qs:
        assert o.path_max(int(u), int(v)) == brute(int(u), int(v))


def test_path_max_many():
    o = ForestPathMax(4, [0, 1, 2], [1, 2, 3], [5, 2, 9])
    out = o.path_max_many([0, 1, 0], [3, 2, 0])
    assert out.tolist() == [9, 2, -1]


def test_deep_chain_lifting():
    n = 300
    o = ForestPathMax(n, list(range(n - 1)), list(range(1, n)), list(range(n - 1)))
    assert o.path_max(0, n - 1) == n - 2
    assert o.path_max(10, 20) == 19
    assert o.path_max(250, 100) == 249
