"""Forest path-max oracle (binary lifting) against a brute-force walker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.tree_queries import DISCONNECTED, ForestPathMax


def _brute_force(n, fu, fv, frank):
    """Dict-based DFS path-max for cross-checking."""
    adj = {v: [] for v in range(n)}
    for a, b, r in zip(fu, fv, frank):
        adj[a].append((b, r))
        adj[b].append((a, r))

    def query(u, v):
        if u == v:
            return -1
        stack = [(u, -1, -1)]
        seen = {u}
        while stack:
            x, mx, _ = stack.pop()
            for y, r in adj[x]:
                if y in seen:
                    continue
                seen.add(y)
                best = max(mx, r)
                if y == v:
                    return best
                stack.append((y, best, 0))
        return DISCONNECTED

    return query


def test_single_path():
    # path 0-1-2-3 with ranks 5, 2, 9
    o = ForestPathMax(4, [0, 1, 2], [1, 2, 3], [5, 2, 9])
    assert o.path_max(0, 3) == 9
    assert o.path_max(0, 2) == 5
    assert o.path_max(1, 2) == 2
    assert o.path_max(2, 0) == 5  # symmetric
    assert o.path_max(1, 1) == -1


def test_disconnected_components():
    o = ForestPathMax(5, [0, 3], [1, 4], [7, 8])
    assert o.path_max(0, 1) == 7
    assert o.path_max(0, 3) == DISCONNECTED
    assert not o.connected(1, 4)
    assert o.connected(3, 4)


def test_star_queries():
    n = 9
    o = ForestPathMax(n, [0] * (n - 1), list(range(1, n)), list(range(10, 18)))
    for a in range(1, n):
        for b in range(1, n):
            if a != b:
                assert o.path_max(a, b) == max(a + 9, b + 9)


def test_rejects_cycle():
    with pytest.raises(GraphError):
        ForestPathMax(3, [0, 1, 2], [1, 2, 0], [1, 2, 3])


def test_rejects_too_many_edges():
    with pytest.raises(GraphError):
        ForestPathMax(2, [0, 0], [1, 1], [1, 2])


def test_rejects_out_of_range_query():
    o = ForestPathMax(2, [0], [1], [3])
    with pytest.raises(GraphError):
        o.path_max(0, 5)


def test_empty_forest():
    o = ForestPathMax(3, [], [], [])
    assert o.path_max(0, 0) == -1
    assert o.path_max(0, 2) == DISCONNECTED


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_matches_brute_force_on_random_forests(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    # random forest: each vertex > 0 attaches to an earlier one with prob 0.8
    fu, fv, frank = [], [], []
    rank = 0
    for v in range(1, n):
        if rng.random() < 0.8:
            fu.append(int(rng.integers(0, v)))
            fv.append(v)
            frank.append(rank)
            rank += 1
    o = ForestPathMax(n, fu, fv, frank)
    brute = _brute_force(n, fu, fv, frank)
    qs = rng.integers(0, n, size=(30, 2))
    for u, v in qs:
        assert o.path_max(int(u), int(v)) == brute(int(u), int(v))


def test_path_max_many():
    o = ForestPathMax(4, [0, 1, 2], [1, 2, 3], [5, 2, 9])
    out = o.path_max_many([0, 1, 0], [3, 2, 0])
    assert out.tolist() == [9, 2, -1]


def test_query_many_mixed_batch():
    o = ForestPathMax(6, [0, 1, 2, 4], [1, 2, 3, 5], [5, 2, 9, 1])
    out = o.query_many([0, 3, 0, 4, 5], [3, 0, 4, 5, 5])
    assert out.tolist() == [9, 9, DISCONNECTED, 1, -1]
    assert o.connected_many([0, 0, 4], [3, 4, 5]).tolist() == [True, False, True]


def test_query_many_empty_batch():
    o = ForestPathMax(3, [0], [1], [4])
    assert o.query_many([], []).size == 0
    assert o.connected_many([], []).size == 0


def test_query_many_rejects_bad_input():
    o = ForestPathMax(3, [0], [1], [4])
    with pytest.raises(GraphError):
        o.query_many([0, 1], [2])
    with pytest.raises(GraphError):
        o.query_many([0], [7])
    with pytest.raises(GraphError):
        o.connected_many([-1], [0])


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_query_many_matches_scalar_on_random_forests(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 60))
    fu, fv, frank = [], [], []
    rank = 0
    for v in range(1, n):
        if rng.random() < 0.75:
            fu.append(int(rng.integers(0, v)))
            fv.append(v)
            frank.append(rank)
            rank += 1
    o = ForestPathMax(n, fu, fv, frank)
    qu = rng.integers(0, n, size=80)
    qv = rng.integers(0, n, size=80)
    batched = o.query_many(qu, qv)
    for i in range(qu.size):
        assert batched[i] == o.path_max(int(qu[i]), int(qv[i]))


def test_from_index_round_trip():
    o = ForestPathMax(5, [0, 1, 3], [1, 2, 4], [3, 1, 8])
    idx = o.index_arrays()
    o2 = ForestPathMax.from_index(5, **idx)
    qu = [0, 2, 3, 0]
    qv = [2, 0, 4, 3]
    assert o2.query_many(qu, qv).tolist() == o.query_many(qu, qv).tolist()


def test_from_index_rejects_malformed():
    o = ForestPathMax(4, [0, 1], [1, 2], [1, 2])
    idx = o.index_arrays()
    with pytest.raises(GraphError):
        ForestPathMax.from_index(3, **idx)
    with pytest.raises(GraphError):
        ForestPathMax.from_index(
            4, idx["depth"], idx["comp"], idx["up"][:, :2], idx["mx"]
        )


def test_deep_chain_lifting():
    n = 300
    o = ForestPathMax(n, list(range(n - 1)), list(range(1, n)), list(range(n - 1)))
    assert o.path_max(0, n - 1) == n - 2
    assert o.path_max(10, 20) == 19
    assert o.path_max(250, 100) == 249
