"""Graph morphology statistics."""

import pytest

from repro.graphs.builder import from_edges
from repro.graphs.generators import path_graph, rmat_graph, road_network, star_graph
from repro.graphs.properties import (
    approximate_diameter,
    classify_morphology,
    graph_stats,
)


def test_diameter_exact_on_path():
    assert approximate_diameter(path_graph(10)) == 9


def test_diameter_star():
    assert approximate_diameter(star_graph(8)) == 2


def test_diameter_handles_isolated_start():
    # vertex 0 is isolated; the probe must not report 0
    g = from_edges([(1, 2, 1.0), (2, 3, 2.0)], n_vertices=4)
    assert approximate_diameter(g) == 2


def test_diameter_empty_graph():
    assert approximate_diameter(from_edges([], n_vertices=0)) == 0
    assert approximate_diameter(from_edges([], n_vertices=3)) == 0


def test_road_classified_as_road():
    g = road_network(20, 20, seed=1)
    assert classify_morphology(g) == "road"


def test_rmat_classified_as_scalefree():
    g = rmat_graph(10, 16, seed=1)
    assert classify_morphology(g) == "scalefree"


def test_graph_stats_fields():
    g = road_network(10, 10, seed=2)
    st = graph_stats(g)
    assert st.n_vertices == 100
    assert st.n_edges == g.n_edges
    assert st.avg_degree == pytest.approx(2 * g.n_edges / 100)
    assert st.n_components >= 1
    assert st.approx_diameter > 5
    row = st.as_row()
    assert row["type"] == "road"
    assert row["vertices"] == 100


def test_graph_stats_empty():
    st = graph_stats(from_edges([], n_vertices=0))
    assert st.morphology == "empty"
    assert st.n_vertices == 0
