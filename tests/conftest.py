"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    rmat_graph,
    road_network,
    star_graph,
)

# ----------------------------------------------------------------------
# The paper's running example (Fig 1): 5 vertices a..e, MST = {2, 3, 4, 7}.
# Vertices: a=0, b=1, c=2, d=3, e=4.
# ----------------------------------------------------------------------
FIG1_EDGES = [
    (0, 2, 4.0),   # a-c
    (1, 2, 3.0),   # b-c
    (0, 1, 5.0),   # a-b  (not in MST)
    (1, 3, 7.0),   # b-d
    (2, 3, 9.0),   # c-d  (not in MST)
    (3, 4, 2.0),   # d-e
    (2, 4, 11.0),  # c-e  (not in MST)
]
FIG1_MST_WEIGHTS = {2.0, 3.0, 4.0, 7.0}


@pytest.fixture(autouse=True)
def _isolated_autotune(tmp_path, monkeypatch):
    """Pin mode="auto" to the shipped crossover defaults.

    A developer machine may have a persisted calibration file
    (~/.cache/repro/autotune.json); pointing the env var at a
    nonexistent path keeps every test's auto-mode dispatch
    deterministic.  Tests that exercise persistence overwrite the
    variable themselves.
    """
    from repro.mst import autotune

    monkeypatch.setenv("REPRO_AUTOTUNE_PATH", str(tmp_path / "no-autotune.json"))
    autotune.invalidate_cache()
    yield
    autotune.invalidate_cache()


@pytest.fixture
def fig1_graph() -> CSRGraph:
    """The worked example graph of the paper's Fig 1."""
    return from_edges(FIG1_EDGES)


@pytest.fixture(
    params=[
        "fig1",
        "path",
        "cycle",
        "star",
        "grid",
        "road",
        "rmat",
        "gnm",
        "connected",
    ]
)
def any_graph(request) -> CSRGraph:
    """A spread of graph morphologies for algorithm-agnostic tests."""
    return {
        "fig1": lambda: from_edges(FIG1_EDGES),
        "path": lambda: path_graph(17, seed=1),
        "cycle": lambda: cycle_graph(12, seed=2),
        "star": lambda: star_graph(15, seed=3),
        "grid": lambda: grid_graph(6, 7, seed=4),
        "road": lambda: road_network(9, 11, seed=5),
        "rmat": lambda: rmat_graph(7, 6, seed=6),
        "gnm": lambda: gnm_random_graph(40, 90, seed=7),
        "connected": lambda: random_connected_graph(35, 25, seed=8),
    }[request.param]()


def mst_weight_oracle(g: CSRGraph) -> float:
    """Reference MSF weight via networkx."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w):
        G.add_edge(int(u), int(v), weight=float(w))
    forest = nx.minimum_spanning_edges(G, data=True)
    return sum(d["weight"] for _, _, d in forest)


def mst_edge_oracle(g: CSRGraph) -> frozenset[int]:
    """Reference MSF edge-id set via Kruskal (unique with distinct ranks)."""
    from repro.mst.kruskal import kruskal

    return kruskal(g).edge_set()
