"""Coordinator contract: process workers, retries, timeouts, fallback."""

import os

import numpy as np
import pytest

from repro.checking.families import generate_case
from repro.errors import BenchmarkError
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.shard import ShardFault, leaked_segments, sharded_mst


def _graph():
    return gnm_random_graph(150, 600, seed=3)


def test_process_executor_matches_oracle():
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(g, n_shards=4, executor="process")
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["executor"] == "process"
    assert result.stats["retries"] == 0
    assert leaked_segments() == []


def test_worker_crash_is_retried_transparently():
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=4, executor="process",
        fault=ShardFault(shard=1, kind="exit", attempts=1),
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["retries"] == 1
    assert result.stats["fallback_shards"] == 0
    assert leaked_segments() == []


def test_persistent_crash_falls_back_in_process():
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=4, executor="process", max_retries=1,
        fault=ShardFault(shard=2, kind="exit", attempts=10),
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["fallback_shards"] == 1
    assert leaked_segments() == []


def test_hung_worker_reaped_at_timeout():
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=2, executor="process", timeout_s=1.5,
        fault=ShardFault(shard=0, kind="hang", attempts=1),
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["retries"] >= 1
    assert leaked_segments() == []


def test_auto_executor_stays_serial_on_small_graphs():
    g = generate_case("few-distinct-weights", seed=0, size=12).graph
    result = sharded_mst(g, n_shards=4)
    assert result.stats["executor"] == "serial"


def test_auto_executor_promotes_large_graphs():
    g = _graph()
    result = sharded_mst(g, n_shards=2, min_process_edges=100)
    # "auto" only promotes when the host can actually run workers in
    # parallel; on a single core it stays serial (processes are pure
    # overhead there).  An explicit request is always honored.
    expected = "process" if (os.cpu_count() or 1) > 1 else "serial"
    assert result.stats["executor"] == expected
    forced = sharded_mst(g, n_shards=2, executor="process", min_process_edges=100)
    assert forced.stats["executor"] == "process"
    assert np.array_equal(result.edge_ids, kruskal(g).edge_ids)
    assert np.array_equal(forced.edge_ids, kruskal(g).edge_ids)


def test_stats_record_partition_knobs():
    g = _graph()
    result = sharded_mst(g, n_shards=3, partition="block", seed=5)
    assert result.stats["shards"] == 3
    assert result.stats["partition"] == "block"
    assert result.stats["balance_ratio"] >= 1.0


def test_rejects_bad_knobs():
    g = generate_case("complete-small", seed=0, size=6).graph
    with pytest.raises(BenchmarkError):
        sharded_mst(g, executor="gpu")
    with pytest.raises(BenchmarkError):
        sharded_mst(g, partition="zigzag")
    with pytest.raises(BenchmarkError):
        sharded_mst(g, n_shards=0)
    with pytest.raises(BenchmarkError):
        sharded_mst(g, algorithm="sharded")


def test_registry_entry_runs_serially_on_small_graphs(fig1_graph):
    from repro.mst.registry import get_algorithm
    from repro.mst.verify import verify_minimum

    result = get_algorithm("sharded")(fig1_graph)
    verify_minimum(fig1_graph, result)
    assert result.stats["executor"] == "serial"


def test_deterministic_across_runs():
    g = _graph()
    a = sharded_mst(g, n_shards=4, partition="hash", seed=9)
    b = sharded_mst(g, n_shards=4, partition="hash", seed=9)
    assert np.array_equal(a.edge_ids, b.edge_ids)


def test_single_shard_dispatches_directly():
    """n_shards=1 is the whole graph: no partition, no arena, no merge."""
    g = gnm_random_graph(200, 800, seed=4)
    result = sharded_mst(g, n_shards=1, executor="process")
    assert result.stats["executor"] == "direct"
    assert result.stats["shards"] == 1
    assert result.stats["filter_rounds"] == 0
    assert result.stats["merge_seconds"] == 0.0
    assert np.array_equal(result.edge_ids, kruskal(g).edge_ids)
    assert leaked_segments() == []


def test_filter_rounds_knob_changes_work_not_result():
    g = gnm_random_graph(300, 1_500, seed=6)
    oracle = kruskal(g).edge_ids
    candidates = []
    for rounds in (0, 1, 2, 4):
        res = sharded_mst(g, n_shards=3, filter_rounds=rounds)
        assert np.array_equal(res.edge_ids, oracle), rounds
        assert res.stats["filter_rounds"] == rounds
        assert res.stats["filter_chosen"] + res.stats["candidate_edges"] >= len(oracle)
        candidates.append(res.stats["candidate_edges"])
    # More contraction -> monotonically fewer merge candidates, and the
    # filtered runs bank edges the unfiltered run must carry as candidates.
    assert candidates == sorted(candidates, reverse=True)
    assert candidates[-1] < candidates[0]


def test_filtered_process_executor_matches_oracle():
    """Labels ride the arena into worker processes and back intact."""
    g = gnm_random_graph(400, 2_000, seed=7)
    res = sharded_mst(g, n_shards=2, executor="process", filter_rounds=2)
    assert res.stats["executor"] == "process"
    assert res.stats["filter_chosen"] > 0
    assert np.array_equal(res.edge_ids, kruskal(g).edge_ids)
    assert leaked_segments() == []


def test_streamed_dispatch_matches_unbounded():
    """``max_concurrent`` bounds live workers without changing the result."""
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=4, executor="process", max_concurrent=1
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["shards"] == 4
    assert leaked_segments() == []


def test_streamed_dispatch_retries_still_work():
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=4, executor="process", max_concurrent=2,
        fault=ShardFault(shard=3, kind="exit", attempts=1),
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["retries"] == 1
    assert leaked_segments() == []


def test_file_backed_arena_solve(tmp_path):
    g = _graph()
    oracle = kruskal(g)
    result = sharded_mst(
        g, n_shards=2, executor="process",
        arena_backing="file", spool_dir=str(tmp_path),
    )
    assert np.array_equal(result.edge_ids, oracle.edge_ids)
    assert result.stats["arena_backing"] == "file"
    assert leaked_segments(spool_dir=str(tmp_path)) == []


def test_auto_backing_records_choice():
    g = _graph()
    result = sharded_mst(g, n_shards=2, executor="process")
    assert result.stats["arena_backing"] in ("shm", "file")


def test_rejects_bad_streaming_knobs():
    g = _graph()
    with pytest.raises(BenchmarkError, match="arena backing"):
        sharded_mst(g, n_shards=2, arena_backing="tape")
    with pytest.raises(BenchmarkError, match="max_concurrent"):
        sharded_mst(g, n_shards=2, max_concurrent=0)
