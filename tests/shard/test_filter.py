"""Global Boruvka-filter pre-pass: the contraction identity.

The filter's contract is ``MSF(G) = chosen ∪ MSF(G / labels)`` — the
edges it banks are certain MSF members (cut property under unique
ranks), and solving the survivors in label space recovers exactly the
rest.  These tests check that identity against the Kruskal oracle
across graph morphologies, round counts, and the degenerate cases
(empty, disconnected, already-contracted).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.shard import boruvka_filter
from repro.shard.merge import msf_of_edge_ids


@pytest.mark.parametrize("rounds", [0, 1, 2, 3, 8])
def test_filter_contraction_identity(any_graph, rounds):
    g = any_graph
    oracle = kruskal(g).edge_set()
    chosen, labels = boruvka_filter(g, rounds)

    # Banked edges are certain MSF members, sorted and duplicate-free.
    assert set(chosen.tolist()) <= oracle
    assert np.array_equal(chosen, np.unique(chosen))

    # Labels are a flat forest: every vertex points at a root.
    assert labels.shape == (g.n_vertices,)
    assert np.array_equal(labels[labels], labels)

    # Chosen edges connect exactly the vertices sharing a label: an edge
    # survives iff its endpoints live in different contracted components.
    rest = msf_of_edge_ids(g, np.arange(g.n_edges, dtype=np.int64), labels)
    recovered = set(chosen.tolist()) | set(rest.tolist())
    assert recovered == oracle, (rounds, g.n_vertices, g.n_edges)


def test_zero_rounds_is_the_identity_filter(fig1_graph):
    chosen, labels = boruvka_filter(fig1_graph, 0)
    assert chosen.size == 0
    assert np.array_equal(labels, np.arange(fig1_graph.n_vertices))


def test_filter_halves_components_per_round():
    g = gnm_random_graph(1_000, 5_000, seed=3)
    n_oracle_edges = len(kruskal(g).edge_set())
    prev_components = g.n_vertices
    for rounds in (1, 2, 3):
        chosen, labels = boruvka_filter(g, rounds)
        components = int(np.unique(labels[labels == np.arange(g.n_vertices)]).size)
        # Each Boruvka round at least halves the live component count.
        assert components <= max(1, prev_components // 2)
        prev_components = components
        assert chosen.size <= n_oracle_edges


def test_filter_converges_on_connected_graph():
    """Enough rounds contract a connected graph to one component."""
    g = gnm_random_graph(64, 400, seed=5)
    chosen, labels = boruvka_filter(g, 32)
    assert np.unique(labels).size == 1
    assert set(chosen.tolist()) == kruskal(g).edge_set()


def test_filter_disconnected_and_empty():
    g = from_edges([(0, 1, 1.0), (2, 3, 2.0)], n_vertices=6)
    chosen, labels = boruvka_filter(g, 4)
    assert set(chosen.tolist()) == kruskal(g).edge_set() == {0, 1}
    # Isolated vertices keep their own label; components stay apart.
    assert np.unique(labels).size == 4

    empty = from_edges([], n_vertices=3)
    chosen, labels = boruvka_filter(empty, 2)
    assert chosen.size == 0
    assert np.array_equal(labels, np.arange(3))
