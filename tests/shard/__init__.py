"""Tests for the sharded multiprocess MST subsystem (repro.shard)."""
