"""Partition invariants: exactly-one-shard coverage and determinism.

Property-style over every checking family and every strategy: the one
invariant everything downstream relies on is that each edge lands in
exactly one shard, and that the assignment is a pure function of
``(strategy, n_shards, seed)``.
"""

import numpy as np
import pytest

from repro.checking.families import FAMILIES, generate_case
from repro.errors import GraphError
from repro.shard import (
    PARTITION_STRATEGIES,
    partition_edges,
    shard_assignment,
    shard_edge_ids,
)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
@pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
def test_every_edge_in_exactly_one_shard(family, strategy, n_shards):
    g = generate_case(family, seed=11, size=14).graph
    plan = partition_edges(g, n_shards, strategy, seed=5)
    assert plan.assign.shape == (g.n_edges,)
    assert plan.assign.min(initial=0) >= 0
    assert plan.assign.max(initial=0) < n_shards
    # Disjoint cover: the per-shard id sets tile [0, m) exactly once.
    all_ids = np.concatenate([plan.edge_ids(s) for s in range(n_shards)])
    assert np.array_equal(np.sort(all_ids), np.arange(g.n_edges))
    assert int(plan.shard_sizes.sum()) == g.n_edges


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_assignment_deterministic_for_fixed_seed(strategy):
    g = generate_case("random-duplicates", seed=2, size=18).graph
    a = shard_assignment(g.n_vertices, g.edge_u, g.edge_v, 4, strategy, seed=9)
    b = shard_assignment(g.n_vertices, g.edge_u, g.edge_v, 4, strategy, seed=9)
    assert np.array_equal(a, b)


def test_hash_seed_changes_assignment():
    g = generate_case("complete-small", seed=0, size=12).graph
    a = shard_assignment(g.n_vertices, g.edge_u, g.edge_v, 4, "hash", seed=0)
    b = shard_assignment(g.n_vertices, g.edge_u, g.edge_v, 4, "hash", seed=1)
    assert not np.array_equal(a, b)


def test_shard_edge_ids_ascending():
    g = generate_case("complete-small", seed=1, size=10).graph
    for strategy in PARTITION_STRATEGIES:
        for s in range(3):
            ids = shard_edge_ids(g.n_vertices, g.edge_u, g.edge_v, 3, s, strategy)
            assert np.all(np.diff(ids) > 0) or ids.size <= 1


def test_range_strategy_is_contiguous_and_balanced():
    g = generate_case("complete-small", seed=0, size=12).graph
    plan = partition_edges(g, 5, "range")
    sizes = plan.shard_sizes
    assert int(sizes.max() - sizes.min()) <= 1
    for s in range(5):
        ids = plan.edge_ids(s)
        if ids.size:
            assert np.array_equal(ids, np.arange(ids[0], ids[-1] + 1))
    assert plan.balance_ratio <= 1.5


def test_block_strategy_owner_is_smaller_endpoint_block():
    g = generate_case("complete-small", seed=0, size=12).graph
    plan = partition_edges(g, 3, "block")
    block = -(-g.n_vertices // 3)
    owners = np.minimum(g.edge_u, g.edge_v) // block
    assert np.array_equal(plan.assign, np.minimum(owners, 2))


def test_plan_stats_shape():
    g = generate_case("few-distinct-weights", seed=3, size=16).graph
    plan = partition_edges(g, 4, "hash", seed=1)
    stats = plan.stats()
    assert stats["n_shards"] == 4
    assert stats["n_edges"] == g.n_edges
    assert sum(stats["shard_sizes"]) == g.n_edges
    assert stats["balance_ratio"] >= 1.0 or g.n_edges == 0
    assert stats["replication_factor"] >= 1.0


def test_single_shard_plan_is_identity():
    g = generate_case("complete-small", seed=0, size=9).graph
    plan = partition_edges(g, 1, "hash")
    assert np.array_equal(plan.edge_ids(0), np.arange(g.n_edges))
    assert plan.balance_ratio == 1.0
    assert plan.replication_factor == 1.0


def test_rejects_bad_arguments():
    g = generate_case("complete-small", seed=0, size=6).graph
    with pytest.raises(GraphError):
        partition_edges(g, 0, "hash")
    with pytest.raises(GraphError):
        partition_edges(g, 2, "zigzag")
    plan = partition_edges(g, 2, "hash")
    with pytest.raises(GraphError):
        plan.edge_ids(2)


def test_empty_graph_partitions():
    g = generate_case("empty", seed=0, size=5).graph
    for strategy in PARTITION_STRATEGIES:
        plan = partition_edges(g, 3, strategy)
        assert plan.n_edges == 0
        assert plan.balance_ratio == 1.0
        assert all(plan.edge_ids(s).size == 0 for s in range(3))
