"""Shared-memory arena lifecycle: publish, attach, and guaranteed unlink."""

import numpy as np
import pytest

from repro.checking.families import generate_case
from repro.errors import ServiceError
from repro.shard import SharedEdgeArena, attach_readonly, labels_view, leaked_segments


def _graph():
    return generate_case("few-distinct-weights", seed=0, size=12).graph


def test_publish_attach_roundtrip():
    g = _graph()
    with SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, g.edge_w) as arena:
        u, v, w = arena.arrays()
        assert np.array_equal(u, g.edge_u)
        assert np.array_equal(v, g.edge_v)
        assert np.array_equal(w, g.edge_w)
        au, av, aw, shm = attach_readonly(arena.spec)
        try:
            assert np.array_equal(au, g.edge_u)
            assert np.array_equal(aw, g.edge_w)
            assert not au.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                au[0] = 99
        finally:
            shm.close()
    assert arena.spec.name not in leaked_segments()


def test_int64_weights_survive_the_arena():
    g = _graph()
    big = (np.arange(g.n_edges, dtype=np.int64) + 2**60)
    with SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, big) as arena:
        assert arena.spec.w_dtype == "int64"
        _, _, w, shm = attach_readonly(arena.spec)
        try:
            assert w.dtype == np.int64
            assert np.array_equal(w, big)
        finally:
            shm.close()


def test_close_is_idempotent_and_invalidates():
    g = _graph()
    arena = SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, g.edge_w)
    name = arena.spec.name
    arena.close()
    arena.close()
    assert name not in leaked_segments()
    with pytest.raises(ServiceError):
        arena.arrays()
    with pytest.raises(Exception):
        attach_readonly(arena.spec)


def test_empty_graph_arena():
    g = generate_case("empty", seed=0, size=4).graph
    with SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, g.edge_w) as arena:
        u, v, w = arena.arrays()
        assert u.size == v.size == w.size == 0


def test_labels_block_roundtrip():
    """Contraction labels ride the arena after the edge columns."""
    g = _graph()
    labels = np.arange(g.n_vertices, dtype=np.int64)[::-1].copy()
    with SharedEdgeArena.publish(
        g.n_vertices, g.edge_u, g.edge_v, g.edge_w, labels
    ) as arena:
        assert arena.spec.has_labels
        u, v, w, shm = attach_readonly(arena.spec)  # 4-tuple arity unchanged
        try:
            assert np.array_equal(u, g.edge_u)
            got = labels_view(shm.buf, arena.spec)
            assert np.array_equal(got, labels)
        finally:
            del got
            shm.close()
    assert arena.spec.name not in leaked_segments()


def test_labels_view_is_none_without_labels():
    g = _graph()
    with SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, g.edge_w) as arena:
        assert not arena.spec.has_labels
        _, _, _, shm = attach_readonly(arena.spec)
        try:
            assert labels_view(shm.buf, arena.spec) is None
        finally:
            shm.close()


def test_finalizer_backstop_unlinks_dropped_arena():
    g = _graph()
    arena = SharedEdgeArena.publish(g.n_vertices, g.edge_u, g.edge_v, g.edge_w)
    name = arena.spec.name
    assert name in leaked_segments()
    del arena  # no close(): the weakref.finalize backstop must unlink
    assert name not in leaked_segments()


# ------------------------------------------------------ file backing
def test_file_backed_publish_attach_roundtrip(tmp_path):
    g = _graph()
    with SharedEdgeArena.publish(
        g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
        backing="file", spool_dir=str(tmp_path),
    ) as arena:
        assert arena.spec.backing == "file"
        assert arena.spec.spool_path.exists()
        u, v, w = arena.arrays()
        assert np.array_equal(u, g.edge_u)
        au, av, aw, shm = attach_readonly(arena.spec)
        try:
            assert np.array_equal(av, g.edge_v)
            assert np.array_equal(aw, g.edge_w)
            assert not au.flags.writeable
        finally:
            shm.close()
    assert not arena.spec.spool_path.exists()
    assert leaked_segments(spool_dir=str(tmp_path)) == []


def test_file_backed_labels_roundtrip(tmp_path):
    g = _graph()
    labels = np.arange(g.n_vertices, dtype=np.int64)[::-1].copy()
    with SharedEdgeArena.publish(
        g.n_vertices, g.edge_u, g.edge_v, g.edge_w, labels,
        backing="file", spool_dir=str(tmp_path),
    ) as arena:
        _, _, _, shm = attach_readonly(arena.spec)
        try:
            got = labels_view(shm.buf, arena.spec)
            assert np.array_equal(got, labels)
        finally:
            del got
            shm.close()
    assert leaked_segments(spool_dir=str(tmp_path)) == []


def test_file_backed_finalizer_backstop(tmp_path):
    g = _graph()
    arena = SharedEdgeArena.publish(
        g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
        backing="file", spool_dir=str(tmp_path),
    )
    name = f"{arena.spec.name}.arena"
    assert name in leaked_segments(spool_dir=str(tmp_path))
    del arena  # no close(): the weakref.finalize backstop must unlink
    assert name not in leaked_segments(spool_dir=str(tmp_path))


def test_unknown_backing_rejected():
    g = _graph()
    with pytest.raises(ServiceError, match="unknown arena backing"):
        SharedEdgeArena.publish(
            g.n_vertices, g.edge_u, g.edge_v, g.edge_w, backing="tape"
        )


def test_file_backed_publish_unwritable_spool_dir(tmp_path):
    g = _graph()
    with pytest.raises(ServiceError, match="spool file"):
        SharedEdgeArena.publish(
            g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
            backing="file", spool_dir=str(tmp_path / "does" / "not" / "exist"),
        )


# ------------------------------------------------------ publish leak window
@pytest.mark.parametrize("backing", ["shm", "file"])
def test_publish_failure_mid_copy_leaks_nothing(backing, tmp_path, monkeypatch):
    """A crash between segment creation and return must still unlink.

    Regression: ``publish`` used to register its cleanup finalizer only
    after copying the payload in, so an allocation failure (or signal)
    during the copy leaked the freshly created segment until reboot.
    The views helper is the first thing that runs inside the copy
    window, so forcing it to raise probes exactly that window.
    """
    import repro.shard.memory as memory

    g = _graph()
    spool = str(tmp_path)
    before = leaked_segments(spool_dir=spool)

    def boom(buf, spec):
        raise MemoryError("simulated allocation failure mid-publish")

    monkeypatch.setattr(memory, "_views", boom)
    with pytest.raises(MemoryError):
        SharedEdgeArena.publish(
            g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
            backing=backing, spool_dir=(spool if backing == "file" else None),
        )
    monkeypatch.undo()
    assert leaked_segments(spool_dir=spool) == before
