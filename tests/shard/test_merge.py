"""Merge-tree correctness: sharded forests must reproduce the oracle MSF.

The load-bearing property (ISSUE acceptance): for every checking family,
every partition strategy, and several shard counts, the merged forest is
*edge-for-edge* identical to the Kruskal oracle — weight equality alone
would hide tie-break divergence.
"""

import numpy as np
import pytest

from repro.checking.families import FAMILIES, generate_case
from repro.mst.kruskal import kruskal
from repro.shard import (
    PARTITION_STRATEGIES,
    merge_pair,
    merge_tree,
    msf_of_edge_ids,
    partition_edges,
    sharded_mst,
    solve_shard_local,
)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_sharded_equals_kruskal_oracle_on_every_family(family, strategy):
    for seed in (0, 7):
        g = generate_case(family, seed=seed, size=15).graph
        oracle = kruskal(g)
        for k in (1, 2, 4):
            result = sharded_mst(g, n_shards=k, partition=strategy, seed=seed)
            assert np.array_equal(result.edge_ids, oracle.edge_ids), (
                f"{family}/{strategy}/k={k} diverged from oracle"
            )
            assert result.total_weight == oracle.total_weight
            assert result.n_components == oracle.n_components


@pytest.mark.parametrize("algorithm", ["kruskal", "boruvka", "prim"])
def test_local_solver_choice_does_not_change_forest(algorithm):
    g = generate_case("few-distinct-weights", seed=4, size=20).graph
    oracle = kruskal(g)
    result = sharded_mst(g, n_shards=3, algorithm=algorithm)
    assert np.array_equal(result.edge_ids, oracle.edge_ids)


def test_msf_of_edge_ids_is_rank_canonical():
    g = generate_case("all-equal-weights", seed=1, size=12).graph
    full = msf_of_edge_ids(g, np.arange(g.n_edges))
    assert np.array_equal(full, np.sort(np.asarray(kruskal(g).edge_ids)))


def test_merge_pair_drops_cycle_maxima():
    g = generate_case("complete-small", seed=0, size=8).graph
    plan = partition_edges(g, 2, "hash")
    forests = [
        solve_shard_local(g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
                          plan.edge_ids(s))
        for s in range(2)
    ]
    merged = merge_pair(g, forests[0], forests[1])
    assert merged.size <= g.n_vertices - 1
    assert np.array_equal(merged, np.sort(np.asarray(kruskal(g).edge_ids)))


def test_merge_tree_handles_odd_and_empty_inputs():
    g = generate_case("complete-small", seed=2, size=9).graph
    oracle = np.sort(np.asarray(kruskal(g).edge_ids))
    plan = partition_edges(g, 5, "hash")
    forests = [
        solve_shard_local(g.n_vertices, g.edge_u, g.edge_v, g.edge_w,
                          plan.edge_ids(s))
        for s in range(5)
    ]
    assert np.array_equal(merge_tree(g, forests), oracle)
    assert merge_tree(g, []).size == 0
    # One raw (unreduced) forest still gets an MSF pass.
    assert np.array_equal(merge_tree(g, [np.arange(g.n_edges)]), oracle)
