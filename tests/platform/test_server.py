"""MultiTenantServer: admission before compute, structured 429s, slot release."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import QuotaExceededError, ServiceError
from repro.graphs.generators.grid import grid_graph
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.platform import GraphPlatform, MultiTenantServer, TenantQuota


def _run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _platform(clock=None):
    platform = GraphPlatform(clock=clock) if clock else GraphPlatform()
    platform.add_tenant("acme")
    platform.add_graph("acme", "mesh", gnm_random_graph(60, 180, seed=3))
    platform.add_tenant("sci")
    platform.add_graph("sci", "paths", grid_graph(5, 5, seed=1),
                       problem="sssp", source=0)
    return platform


def test_two_tenants_two_problems_served():
    async def main():
        with _platform() as platform:
            async with MultiTenantServer(platform) as server:
                connected = await server.query("acme", "mesh", "connected", 0, 5)
                dist = await server.query("sci", "paths", "dist", 0)
                return connected, dist

    connected, dist = _run(main())
    assert isinstance(connected, (bool,)) or connected in (0, 1)
    assert float(dist) == 0.0


def test_rate_quota_raises_structured_before_compute():
    async def main():
        clock = FakeClock()
        with GraphPlatform(clock=clock) as platform:
            platform.add_tenant("tight", TenantQuota(rate_qps=1.0, burst=1.0))
            platform.add_graph("tight", "g", gnm_random_graph(30, 90, seed=1))
            async with MultiTenantServer(platform) as server:
                await server.query("tight", "g", "weight")
                with pytest.raises(QuotaExceededError) as info:
                    # A rejected request never needs the graph to exist:
                    # admission runs first.
                    await server.query("tight", "ghost", "weight")
                record = info.value.to_record()
                clock.advance(1.0)
                again = await server.query("tight", "g", "weight")
        return record, again

    record, again = _run(main())
    assert record["code"] == 429 and record["reason"] == "rate"
    assert record["retry_after_s"] > 0
    assert again > 0


def test_inflight_slot_released_on_any_outcome():
    async def main():
        with _platform() as platform:
            async with MultiTenantServer(platform) as server:
                await server.query("acme", "mesh", "weight")
                with pytest.raises(ServiceError):
                    await server.query("acme", "ghost", "weight")
                return platform.tenant("acme").inflight

    assert _run(main()) == 0


def test_query_nowait_requires_prewarm():
    async def main():
        with _platform() as platform:
            async with MultiTenantServer(platform) as server:
                with pytest.raises(ServiceError, match="not warmed"):
                    server.query_nowait("acme", "mesh", "weight")
                await server.ensure("acme", "mesh")
                fut = server.query_nowait("acme", "mesh", "weight")
                value = await fut
                await asyncio.sleep(0)  # let the done callback release
                return value, platform.tenant("acme").inflight

    value, inflight = _run(main())
    assert value > 0
    assert inflight == 0


def test_query_nowait_sync_rejection_releases_slot():
    async def main():
        clock = FakeClock()
        with GraphPlatform(clock=clock) as platform:
            platform.add_tenant("tight", TenantQuota(rate_qps=1.0, burst=1.0))
            platform.add_graph("tight", "g", gnm_random_graph(30, 90, seed=1))
            async with MultiTenantServer(platform) as server:
                await server.ensure("tight", "g")
                fut = server.query_nowait("tight", "g", "weight")
                with pytest.raises(QuotaExceededError):
                    server.query_nowait("tight", "g", "weight")
                await fut
                await asyncio.sleep(0)
                return platform.tenant("tight").inflight

    assert _run(main()) == 0


def test_wrapper_survives_engine_eviction():
    """Eviction drops the engine, not the service: wrappers stay valid."""

    async def main():
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(resident_budget=1))
            platform.add_graph("acme", "g1", gnm_random_graph(40, 120, seed=2))
            async with MultiTenantServer(platform) as server:
                before = await server.query("acme", "g1", "weight")
                # Registering g2 evicts g1's engine under budget 1.
                platform.add_graph("acme", "g2",
                                   gnm_random_graph(40, 120, seed=4))
                assert not platform.entry("acme", "g1").resident
                after = await server.query("acme", "g1", "weight")
                return before, after

    before, after = _run(main())
    assert before == after
