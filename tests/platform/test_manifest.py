"""Platform manifest: persistence round-trips and source-spec materialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.platform import (
    GraphPlatform,
    TenantQuota,
    build_platform,
    graph_from_spec,
    load_manifest,
    manifest_path,
    platform_to_manifest,
    save_manifest,
)


class TestLoadSave:
    def test_missing_manifest_defaults_empty(self, tmp_path):
        manifest = load_manifest(tmp_path)
        assert manifest == {"version": 1, "tenants": {}}

    def test_save_then_load_round_trips(self, tmp_path):
        manifest = {
            "version": 1,
            "tenants": {"acme": {"quota": {"rate_qps": 3.0}, "graphs": {}}},
        }
        path = save_manifest(tmp_path, manifest)
        assert path == manifest_path(tmp_path)
        assert load_manifest(tmp_path) == manifest

    def test_bad_json_raises_service_error(self, tmp_path):
        manifest_path(tmp_path).write_text("{not json")
        with pytest.raises(ServiceError, match="unreadable"):
            load_manifest(tmp_path)

    def test_wrong_version_raises_service_error(self, tmp_path):
        save_manifest(tmp_path, {"version": 99, "tenants": {}})
        with pytest.raises(ServiceError, match="unsupported.*version"):
            load_manifest(tmp_path)

    def test_missing_tenants_map_raises(self, tmp_path):
        manifest_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
        manifest_path(tmp_path).write_text(json.dumps({"version": 1}))
        with pytest.raises(ServiceError, match="no tenants"):
            load_manifest(tmp_path)


class TestGraphFromSpec:
    def test_gnm_spec_is_deterministic_in_seed(self):
        spec = {"kind": "gnm", "n": 80, "m": 240, "seed": 5}
        a, b = graph_from_spec(spec), graph_from_spec(spec)
        assert a.n_vertices == 80 and a.n_edges == 240
        assert np.array_equal(a.edge_w, b.edge_w)

    def test_grid_spec(self):
        g = graph_from_spec({"kind": "grid", "rows": 4, "cols": 5, "seed": 1})
        assert g.n_vertices == 20

    def test_path_spec_dispatches_on_suffix(self, tmp_path):
        path = tmp_path / "tiny.tsv"
        path.write_text("0\t1\t2.5\n1\t2\t1.5\n")
        g = graph_from_spec({"path": str(path)})
        assert g.n_edges == 2

    def test_unknown_specs_raise(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown graph source"):
            graph_from_spec({"kind": "martian"})
        with pytest.raises(ServiceError, match="unsupported graph format"):
            graph_from_spec({"path": str(tmp_path / "g.xlsx")})


class TestBuildPlatform:
    def _manifest(self):
        return {
            "version": 1,
            "tenants": {
                "acme": {
                    "quota": {"rate_qps": 50.0, "max_graphs": 4},
                    "graphs": {
                        "mesh": {
                            "source": {"kind": "gnm", "n": 60, "m": 180,
                                       "seed": 3},
                            "problem": "mst", "algorithm": "kruskal",
                            "mode": "auto", "shards": 0, "params": {},
                        },
                        "paths": {
                            "source": {"kind": "grid", "rows": 5, "cols": 5,
                                       "seed": 1},
                            "problem": "sssp", "params": {"source": 0},
                        },
                    },
                },
            },
        }

    def test_build_registers_everything(self, tmp_path):
        save_manifest(tmp_path, self._manifest())
        with build_platform(tmp_path) as platform:
            assert platform.tenants() == ["acme"]
            assert platform.tenant("acme").quota.rate_qps == 50.0
            assert platform.entry("acme", "mesh").problem == "mst"
            assert platform.entry("acme", "paths").problem == "sssp"
            svc = platform.get_service("acme", "paths")
            assert float(svc.dist(0)) == 0.0

    def test_restart_reloads_warm_from_store(self, tmp_path):
        save_manifest(tmp_path, self._manifest())
        with build_platform(tmp_path) as platform:
            weight = platform.get_service("acme", "mesh").total_weight()
            assert platform.tenant("acme").metrics.artifact_misses > 0
        # Second boot: same manifest, same fingerprints, warm artifacts.
        with build_platform(tmp_path) as platform:
            assert platform.get_service("acme", "mesh").total_weight() == weight
            assert platform.tenant("acme").metrics.artifact_hits > 0

    def test_build_failure_closes_the_platform(self, tmp_path):
        manifest = self._manifest()
        manifest["tenants"]["acme"]["graphs"]["bad"] = {
            "source": {"kind": "martian"},
        }
        save_manifest(tmp_path, manifest)
        with pytest.raises(ServiceError, match="unknown graph source"):
            build_platform(tmp_path)


class TestPlatformToManifest:
    def test_round_trip_keeps_sourced_graphs(self, tmp_path):
        save_manifest(tmp_path, TestBuildPlatform()._manifest())
        with build_platform(tmp_path) as platform:
            manifest = platform_to_manifest(platform)
        graphs = manifest["tenants"]["acme"]["graphs"]
        assert set(graphs) == {"mesh", "paths"}
        assert graphs["paths"]["params"] == {"source": 0}
        # Writing it back and rebooting reproduces the same registry.
        save_manifest(tmp_path, manifest)
        with build_platform(tmp_path) as platform:
            assert set(platform.tenant("acme").graphs) == {"mesh", "paths"}

    def test_sourceless_graphs_are_skipped(self):
        from repro.graphs.generators.random_graphs import gnm_random_graph

        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota())
            platform.add_graph("acme", "anon", gnm_random_graph(30, 90, seed=1))
            manifest = platform_to_manifest(platform)
        assert manifest["tenants"]["acme"]["graphs"] == {}
