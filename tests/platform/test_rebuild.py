"""RebuildScheduler: coalescing, outcomes, and failure isolation."""

from __future__ import annotations

import threading

from repro.platform.rebuild import RebuildScheduler


class _InlineFuture:
    def __init__(self, value):
        self._value = value

    def result(self, timeout=None):
        return self._value


class _SentinelPool:
    """Stands in for the WorkerPool: returns a sentinel artifact inline."""

    def submit(self, fn, *args, tenant=None, timeout_s=None, label=None,
               **kwargs):
        return _InlineFuture("artifact")


class FakePlatform:
    """A platform whose snapshot path can be gated for deterministic races."""

    def __init__(self):
        self.pool = _SentinelPool()
        self.gate = threading.Event()
        self.gate.set()
        self.entries = {}  # (tenant, name) -> version; None-able
        self.completed = []
        self.fail_snapshot = False

    def snapshot_for_rebuild(self, tenant, name):
        self.gate.wait(timeout=10)
        if self.fail_snapshot:
            raise RuntimeError("snapshot exploded")
        version = self.entries.get((tenant, name))
        if version is None:
            return None
        return {"spec": name}, version

    def complete_rebuild(self, tenant, name, version, artifact):
        self.completed.append((tenant, name, version, artifact))
        return "swapped" if self.entries.get((tenant, name)) == version else "stale"


def test_schedule_runs_and_swaps():
    platform = FakePlatform()
    platform.entries[("t", "a")] = 1
    scheduler = RebuildScheduler(platform)
    try:
        assert scheduler.schedule("t", "a", 1) is True
        assert scheduler.drain(timeout_s=10)
        assert platform.completed == [("t", "a", 1, "artifact")]
        stats = scheduler.stats()
        assert stats["scheduled"] == 1 and stats["swapped"] == 1
        assert stats["queued"] == 0
    finally:
        scheduler.stop()


def test_pending_rebuild_coalesces_by_identity():
    """A second schedule for the same graph is absorbed, not enqueued."""
    platform = FakePlatform()
    platform.entries[("t", "a")] = 1
    platform.entries[("t", "b")] = 2
    platform.gate.clear()  # park the worker inside job "a"'s snapshot
    scheduler = RebuildScheduler(platform)
    try:
        assert scheduler.schedule("t", "a", 1) is True
        # Job "a" is popped (no longer pending) and blocked; "b" queues
        # once — its second mutation coalesces onto the pending job.
        assert scheduler.schedule("t", "b", 1) is True
        assert scheduler.schedule("t", "b", 2) is False
        platform.gate.set()
        assert scheduler.drain(timeout_s=10)
        stats = scheduler.stats()
        assert stats["scheduled"] == 2
        assert stats["coalesced"] == 1
        # "b" ran once; the snapshot's version (2, the latest) was used,
        # so the single rebuild covered both mutations.
        b_installs = [c for c in platform.completed if c[1] == "b"]
        assert b_installs == [("t", "b", 2, "artifact")]
    finally:
        scheduler.stop()


def test_vanished_entry_is_discarded():
    platform = FakePlatform()  # no entries: snapshot returns None
    scheduler = RebuildScheduler(platform)
    try:
        scheduler.schedule("t", "ghost", 1)
        assert scheduler.drain(timeout_s=10)
        assert scheduler.stats()["discarded"] == 1
        assert platform.completed == []
    finally:
        scheduler.stop()


def test_failure_is_counted_never_raised():
    platform = FakePlatform()
    platform.entries[("t", "a")] = 1
    platform.fail_snapshot = True
    scheduler = RebuildScheduler(platform)
    try:
        scheduler.schedule("t", "a", 1)
        assert scheduler.drain(timeout_s=10)
        assert scheduler.stats()["failed"] == 1
        # The scheduler thread survives and keeps serving later jobs.
        platform.fail_snapshot = False
        scheduler.schedule("t", "a", 1)
        assert scheduler.drain(timeout_s=10)
        assert scheduler.stats()["swapped"] == 1
    finally:
        scheduler.stop()


def test_stop_drops_queued_work():
    platform = FakePlatform()
    platform.entries[("t", "a")] = 1
    platform.gate.clear()
    scheduler = RebuildScheduler(platform)
    scheduler.schedule("t", "a", 1)
    scheduler.schedule("t", "b", 1)  # still queued when stop() lands
    platform.gate.set()
    scheduler.stop()
    assert scheduler.schedule("t", "c", 1) is False  # stopped: no enqueue
    assert not any(c[1] == "c" for c in platform.completed)
