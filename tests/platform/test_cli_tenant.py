"""The tenant CLI verbs and the multi-tenant serve loop."""

from __future__ import annotations

import json

from repro.cli import main
from repro.platform import load_manifest


def _add_tenant(root, name, *extra):
    assert main(["tenant", "add", name, "--root", str(root), *extra]) == 0


class TestTenantVerbs:
    def test_add_list_rm_round_trip(self, tmp_path, capsys):
        _add_tenant(tmp_path, "acme", "--rate-qps", "50", "--max-graphs", "3")
        _add_tenant(tmp_path, "sci")
        capsys.readouterr()  # flush the add confirmations
        assert main(["tenant", "list", "--root", str(tmp_path), "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert set(listed["tenants"]) == {"acme", "sci"}
        assert listed["tenants"]["acme"]["quota"]["rate_qps"] == 50.0
        assert main(["tenant", "rm", "sci", "--root", str(tmp_path)]) == 0
        manifest = load_manifest(tmp_path)
        assert set(manifest["tenants"]) == {"acme"}

    def test_duplicate_add_fails(self, tmp_path, capsys):
        _add_tenant(tmp_path, "acme")
        assert main(["tenant", "add", "acme", "--root", str(tmp_path)]) != 0

    def test_rm_unknown_tenant_fails(self, tmp_path, capsys):
        assert main(["tenant", "rm", "ghost", "--root", str(tmp_path)]) != 0

    def test_add_graph_records_the_spec(self, tmp_path):
        _add_tenant(tmp_path, "acme")
        assert main(["tenant", "add-graph", "acme", "mesh",
                     "--root", str(tmp_path), "--gnm", "80:240:3"]) == 0
        assert main(["tenant", "add-graph", "acme", "paths",
                     "--root", str(tmp_path), "--grid", "5:5:1",
                     "--problem", "sssp", "--source", "0"]) == 0
        graphs = load_manifest(tmp_path)["tenants"]["acme"]["graphs"]
        assert graphs["mesh"]["source"] == {"kind": "gnm", "n": 80, "m": 240,
                                            "seed": 3}
        assert graphs["paths"]["problem"] == "sssp"
        assert graphs["paths"]["params"] == {"source": 0}

    def test_add_graph_validates_eagerly(self, tmp_path):
        _add_tenant(tmp_path, "acme")
        # A bogus problem never lands in the manifest.
        assert main(["tenant", "add-graph", "acme", "bad",
                     "--root", str(tmp_path), "--gnm", "50:150:1",
                     "--problem", "frobnicate"]) != 0
        assert load_manifest(tmp_path)["tenants"]["acme"]["graphs"] == {}

    def test_rm_graph(self, tmp_path):
        _add_tenant(tmp_path, "acme")
        assert main(["tenant", "add-graph", "acme", "mesh",
                     "--root", str(tmp_path), "--gnm", "50:150:1"]) == 0
        assert main(["tenant", "rm-graph", "acme", "mesh",
                     "--root", str(tmp_path)]) == 0
        assert load_manifest(tmp_path)["tenants"]["acme"]["graphs"] == {}

    def test_stats_builds_and_reports(self, tmp_path, capsys):
        _add_tenant(tmp_path, "acme")
        assert main(["tenant", "add-graph", "acme", "mesh",
                     "--root", str(tmp_path), "--gnm", "60:180:3"]) == 0
        capsys.readouterr()  # flush the add confirmations
        assert main(["tenant", "stats", "--root", str(tmp_path),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        row = stats["tenants"]["acme"]["graphs"]["mesh"]
        assert row["n_vertices"] == 60 and row["problem"] == "mst"


class TestServeMulti:
    def _platform(self, root):
        _add_tenant(root, "acme", "--rate-qps", "100", "--burst", "50")
        _add_tenant(root, "throttled", "--rate-qps", "0.001", "--burst", "1")
        assert main(["tenant", "add-graph", "acme", "mesh",
                     "--root", str(root), "--gnm", "80:240:3"]) == 0
        assert main(["tenant", "add-graph", "acme", "paths",
                     "--root", str(root), "--grid", "5:5:1",
                     "--problem", "sssp", "--source", "0"]) == 0
        assert main(["tenant", "add-graph", "throttled", "tiny",
                     "--root", str(root), "--gnm", "40:120:9"]) == 0

    def test_serves_two_tenants_with_structured_429s(self, tmp_path, capsys):
        self._platform(tmp_path)
        capsys.readouterr()  # flush the tenant-verb confirmations
        queries = tmp_path / "q.jsonl"
        queries.write_text("\n".join([
            '{"tenant":"acme","graph":"mesh","op":"connected","u":0,"v":5}',
            '{"tenant":"acme","graph":"mesh","op":"weight"}',
            '{"tenant":"acme","graph":"paths","op":"dist","u":3}',
            '{"tenant":"throttled","graph":"tiny","op":"weight"}',
            '{"tenant":"throttled","graph":"tiny","op":"weight"}',
        ]) + "\n")
        assert main(["serve", "--multi", "--root", str(tmp_path),
                     "--queries", str(queries)]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 5
        acme = [r for r in records if r["tenant"] == "acme"]
        assert all("result" in r for r in acme)
        throttled = [r for r in records if r["tenant"] == "throttled"]
        served = [r for r in throttled if "result" in r]
        rejected = [r for r in throttled if r.get("code") == 429]
        assert len(served) == 1 and len(rejected) == 1
        assert rejected[0]["reason"] == "rate"
        assert rejected[0]["retry_after_s"] > 0
        # The per-tenant summary lines land on stderr.
        assert "acme" in captured.err and "throttled" in captured.err

    def test_bad_lines_reported_inline_not_fatal(self, tmp_path, capsys):
        self._platform(tmp_path)
        capsys.readouterr()  # flush the tenant-verb confirmations
        queries = tmp_path / "q.jsonl"
        queries.write_text("\n".join([
            "not json",
            '{"graph":"mesh","op":"weight"}',
            '{"tenant":"acme","graph":"ghost","op":"weight"}',
            '{"tenant":"acme","graph":"mesh","op":"weight"}',
        ]) + "\n")
        assert main(["serve", "--multi", "--root", str(tmp_path),
                     "--queries", str(queries)]) == 0
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert len(records) == 4
        errors = [r for r in records if "error" in r]
        assert len(errors) == 3  # bad json, missing tenant, unknown graph
        assert any("result" in r for r in records)
