"""Multi-tenant platform test suite."""
