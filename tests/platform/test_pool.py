"""WorkerPool contracts: admission, timeouts, crashes, fairness, scale-down."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import (
    PoolError,
    PoolJobError,
    PoolSaturatedError,
    PoolTimeoutError,
    PoolUnavailableError,
    WorkerCrashedError,
)
from repro.platform.pool import WorkerPool


# Job bodies must be module-level: they cross the worker pipe by reference.
def _echo(x):
    return x


def _add(a, b, *, c=0):
    return a + b + c


def _sleep_return(seconds, value=None):
    time.sleep(seconds)
    return value if value is not None else seconds


def _boom():
    raise ValueError("boom")


def _hard_exit():
    os._exit(3)


def _tagged_sleep(seconds, tag):
    time.sleep(seconds)
    return tag


class TestBasics:
    def test_submit_returns_result(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            assert pool.submit(_echo, 42).result(timeout=30) == 42

    def test_args_and_kwargs_cross_the_pipe(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            assert pool.submit(_add, 1, 2, c=3).result(timeout=30) == 6

    def test_workers_are_reused_across_jobs(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            for i in range(5):
                assert pool.submit(_echo, i).result(timeout=30) == i
            stats = pool.stats()
            assert stats["completed"] == 5
            assert stats["spawned"] == 1  # persistent loop, not per-job forks

    def test_job_exception_surfaces_as_pool_job_error(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            with pytest.raises(PoolJobError, match="ValueError: boom"):
                pool.submit(_boom).result(timeout=30)
            # The worker survives a job error and keeps serving.
            assert pool.submit(_echo, "ok").result(timeout=30) == "ok"

    def test_stats_track_per_tenant(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            pool.submit(_echo, 1, tenant="a").result(timeout=30)
            pool.submit(_echo, 2, tenant="b").result(timeout=30)
            tenants = pool.stats()["tenants"]
            assert tenants["a"]["completed"] == 1
            assert tenants["b"]["completed"] == 1


class TestAdmission:
    def test_backlog_past_max_pending_is_rejected(self):
        with WorkerPool(max_workers=1, max_pending=2, name="t") as pool:
            blocker = pool.submit(_sleep_return, 1.0)
            queued = [pool.submit(_echo, i) for i in range(2)]
            with pytest.raises(PoolSaturatedError):
                pool.submit(_echo, 99)
            assert pool.stats()["rejected"] == 1
            assert blocker.result(timeout=30) == 1.0
            assert [f.result(timeout=30) for f in queued] == [0, 1]

    def test_submit_after_close_raises_unavailable(self):
        pool = WorkerPool(max_workers=1, name="t")
        pool.close()
        with pytest.raises(PoolUnavailableError):
            pool.submit(_echo, 1)

    def test_close_fails_queued_jobs(self):
        pool = WorkerPool(max_workers=1, max_pending=8, name="t")
        try:
            blocker = pool.submit(_sleep_return, 5.0)
            queued = pool.submit(_echo, 1)
        finally:
            pool.close()
        with pytest.raises(PoolUnavailableError):
            queued.result(timeout=5)
        with pytest.raises(PoolUnavailableError):
            blocker.result(timeout=5)


class TestFailureModes:
    def test_overdue_job_is_reaped_with_timeout_error(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            fut = pool.submit(_sleep_return, 30.0, timeout_s=0.3)
            t0 = time.perf_counter()
            with pytest.raises(PoolTimeoutError):
                fut.result(timeout=30)
            assert time.perf_counter() - t0 < 10.0  # reaped, not awaited
            assert pool.stats()["timeouts"] == 1
            # The pool respawns and keeps serving after the kill.
            assert pool.submit(_echo, "alive").result(timeout=30) == "alive"

    def test_worker_crash_fails_the_job_not_the_pool(self):
        with WorkerPool(max_workers=1, name="t") as pool:
            with pytest.raises(WorkerCrashedError, match="exit 3"):
                pool.submit(_hard_exit).result(timeout=30)
            assert pool.stats()["crashes"] == 1
            assert pool.submit(_echo, "alive").result(timeout=30) == "alive"

    def test_pool_errors_are_one_hierarchy(self):
        for exc_type in (PoolSaturatedError, PoolTimeoutError,
                         WorkerCrashedError, PoolJobError,
                         PoolUnavailableError):
            assert issubclass(exc_type, PoolError)


class TestFairness:
    def test_hot_tenant_cannot_starve_a_cold_one(self):
        """The starvation regression: round-robin interleaves tenants.

        One worker, a hot tenant with a deep backlog queued first, then a
        single cold-tenant job.  FIFO would run the cold job last;
        fair-share runs it within the first couple of slots.
        """
        order: list[str] = []
        with WorkerPool(max_workers=1, max_pending=64, name="t") as pool:
            # Park the worker so the queue builds deterministically.
            blocker = pool.submit(_sleep_return, 0.4)
            hot = [
                pool.submit(_tagged_sleep, 0.01, f"hot{i}", tenant="hot")
                for i in range(6)
            ]
            cold = pool.submit(_tagged_sleep, 0.01, "cold", tenant="cold")
            for fut in [*hot, cold]:
                fut.add_done_callback(lambda f: order.append(f.result()))
            blocker.result(timeout=30)
            cold.result(timeout=30)
            for fut in hot:
                fut.result(timeout=30)
        cold_pos = order.index("cold")
        assert cold_pos <= 1, (
            f"cold tenant ran at position {cold_pos} of {len(order)}: {order}"
        )

    def test_round_robin_across_three_tenants(self):
        order: list[str] = []
        with WorkerPool(max_workers=1, max_pending=64, name="t") as pool:
            blocker = pool.submit(_sleep_return, 0.4)
            futs = []
            for i in range(3):
                for tenant in ("a", "b", "c"):
                    futs.append(pool.submit(
                        _tagged_sleep, 0.0, f"{tenant}{i}", tenant=tenant))
            for fut in futs:
                fut.add_done_callback(lambda f: order.append(f.result()))
            blocker.result(timeout=30)
            for fut in futs:
                fut.result(timeout=30)
        # Every tenant appears once in each round-robin cycle of three.
        for cycle in range(3):
            chunk = {tag[0] for tag in order[cycle * 3:(cycle + 1) * 3]}
            assert chunk == {"a", "b", "c"}, order


class TestScaleDown:
    def test_idle_workers_retire_to_zero(self):
        with WorkerPool(max_workers=2, idle_timeout_s=0.2, name="t") as pool:
            pool.submit(_echo, 1).result(timeout=30)
            assert pool.live_workers >= 1
            deadline = time.perf_counter() + 10.0
            while pool.live_workers > 0 and time.perf_counter() < deadline:
                time.sleep(0.05)
            assert pool.live_workers == 0
            # Scale-up from zero works again afterwards.
            assert pool.submit(_echo, 2).result(timeout=30) == 2

    def test_spawn_is_on_demand_up_to_cap(self):
        with WorkerPool(max_workers=2, max_pending=16, name="t") as pool:
            futs = [pool.submit(_sleep_return, 0.3) for _ in range(4)]
            for fut in futs:
                fut.result(timeout=30)
            assert pool.stats()["max_live"] <= 2
