"""Token-bucket refill boundaries and quota records, on a fake clock."""

from __future__ import annotations

import pytest

from repro.errors import QuotaExceededError
from repro.platform.quota import (
    DEFAULT_QUOTA,
    TenantQuota,
    TokenBucket,
    reject_graphs,
    reject_queue,
    reject_rate,
)


class FakeClock:
    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_starts_full_and_spends_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_retry_after_is_exact_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take() is None
        # Zero tokens at rate 2/s: the next token is 0.5s away.
        assert bucket.try_take() == pytest.approx(0.5)

    def test_refill_boundary_exactly_one_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_take()
        # One instant before the boundary: still rejected.
        clock.advance(0.4999)
        retry = bucket.try_take()
        assert retry is not None and retry == pytest.approx(0.0001, abs=1e-6)
        # Crossing the boundary admits exactly one request, not two.
        clock.advance(0.0001)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(1e6)  # a long idle accrues only `burst` tokens
        assert bucket.tokens == pytest.approx(2.0)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_fractional_accrual_is_not_lost(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_take()
        for _ in range(4):  # four 0.25s refills == one 1s refill
            clock.advance(0.25)
            bucket.tokens
        assert bucket.try_take() is None

    def test_zero_rate_disables_the_limit(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        for _ in range(1000):
            assert bucket.try_take() is None

    def test_burst_floor_is_one_token(self):
        bucket = TokenBucket(rate=1.0, burst=0.0, clock=FakeClock())
        assert bucket.burst == 1.0
        assert bucket.try_take() is None


class TestTenantQuota:
    def test_round_trips_through_dict(self):
        quota = TenantQuota(max_graphs=3, resident_budget=2,
                            max_queue_depth=10, rate_qps=5.0, burst=7.0)
        assert TenantQuota.from_dict(quota.to_dict()) == quota

    def test_from_dict_ignores_unknown_keys(self):
        quota = TenantQuota.from_dict({"max_graphs": 2, "future_knob": 9})
        assert quota.max_graphs == 2

    def test_default_quota_is_unthrottled(self):
        bucket = DEFAULT_QUOTA.make_bucket(clock=FakeClock())
        assert all(bucket.try_take() is None for _ in range(100))

    def test_make_bucket_defaults_burst_to_rate(self):
        bucket = TenantQuota(rate_qps=8.0, burst=0.0).make_bucket(
            clock=FakeClock())
        assert bucket.burst == 8.0


class TestRejections:
    def test_rate_record_shape(self):
        exc = reject_rate("acme", 0.0123)
        record = exc.to_record()
        assert record["code"] == 429
        assert record["tenant"] == "acme"
        assert record["reason"] == "rate"
        # Ceiled to the millisecond: a client sleeping retry_after_s is
        # guaranteed a token on arrival.
        assert record["retry_after_s"] == pytest.approx(0.013)

    def test_queue_record_shape(self):
        record = reject_queue("acme", 5, 5).to_record()
        assert record["code"] == 429 and record["reason"] == "queue"
        assert "retry_after_s" not in record

    def test_graphs_record_shape(self):
        record = reject_graphs("acme", 8, 8).to_record()
        assert record["code"] == 429 and record["reason"] == "graphs"

    def test_rejections_are_service_errors(self):
        from repro.errors import ReproError, ServiceError

        assert issubclass(QuotaExceededError, ServiceError)
        assert issubclass(QuotaExceededError, ReproError)
