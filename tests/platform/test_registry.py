"""GraphPlatform contracts: quotas, LRU residency, admission, rebuild swaps."""

from __future__ import annotations

import pytest

from repro.errors import QuotaExceededError, ServiceError
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.platform import GraphPlatform, TenantQuota
from repro.platform.rebuild import rebuild_artifact_job


class FakeClock:
    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def g():
    return gnm_random_graph(60, 180, seed=3)


class TestTenants:
    def test_add_lookup_remove(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            assert platform.tenants() == ["acme"]
            assert platform.tenant("acme").quota == platform.default_quota
            platform.remove_tenant("acme")
            assert platform.tenants() == []

    def test_duplicate_and_unknown_raise(self):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            with pytest.raises(ServiceError, match="already exists"):
                platform.add_tenant("acme")
            with pytest.raises(ServiceError, match="unknown tenant"):
                platform.tenant("ghost")
            with pytest.raises(ServiceError, match="unknown tenant"):
                platform.remove_tenant("ghost")

    def test_invalid_names_rejected(self, g):
        with GraphPlatform() as platform:
            with pytest.raises(ServiceError, match="invalid tenant"):
                platform.add_tenant("a/b")
            platform.add_tenant("acme")
            with pytest.raises(ServiceError, match="invalid graph"):
                platform.add_graph("acme", "a/b", g)


class TestGraphQuota:
    def test_exactly_at_max_graphs_boundary(self, g):
        """The Nth registration fits; the N+1st is a structured 429."""
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(max_graphs=2))
            platform.add_graph("acme", "g1", g)
            platform.add_graph("acme", "g2", g)  # exactly at the limit: OK
            with pytest.raises(QuotaExceededError) as info:
                platform.add_graph("acme", "g3", g)
            record = info.value.to_record()
            assert record["code"] == 429 and record["reason"] == "graphs"
            # Removing one frees the slot again.
            platform.remove_graph("acme", "g1")
            platform.add_graph("acme", "g3", g)

    def test_duplicate_and_unknown_graphs_raise(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            with pytest.raises(ServiceError, match="already exists"):
                platform.add_graph("acme", "g1", g)
            with pytest.raises(ServiceError, match="unknown graph"):
                platform.get_service("acme", "ghost")
            with pytest.raises(ServiceError, match="unknown graph"):
                platform.remove_graph("acme", "ghost")


class TestResidency:
    def test_lru_engine_eviction_past_budget(self, g, tmp_path):
        with GraphPlatform(tmp_path) as platform:
            platform.add_tenant("acme", TenantQuota(resident_budget=1))
            platform.add_graph("acme", "g1", g)
            platform.add_graph("acme", "g2", g)
            # Budget 1: registering g2 evicted g1's engine, not its data.
            assert not platform.entry("acme", "g1").resident
            assert platform.entry("acme", "g2").resident
            assert platform.tenant("acme").evictions == 1

    def test_evicted_entry_rematerializes_warm(self, g, tmp_path):
        with GraphPlatform(tmp_path) as platform:
            platform.add_tenant("acme", TenantQuota(resident_budget=1))
            platform.add_graph("acme", "g1", g)
            weight = platform.get_service("acme", "g1").total_weight()
            platform.add_graph("acme", "g2", g)
            assert not platform.entry("acme", "g1").resident
            # The next query reloads g1 from the content-addressed store
            # and answers identically; no data was lost to eviction.
            svc = platform.get_service("acme", "g1")
            assert svc.total_weight() == weight
            assert platform.entry("acme", "g1").resident

    def test_get_service_touches_lru_order(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(resident_budget=2))
            for name in ("g1", "g2", "g3"):
                platform.add_graph("acme", name, g)
            # g1 was LRU-evicted by g3's registration; touching g2 then
            # registering g4 must evict g3 (now least recent), not g2.
            platform.get_service("acme", "g2")
            platform.add_graph("acme", "g4", g)
            assert platform.entry("acme", "g2").resident
            assert not platform.entry("acme", "g3").resident


class TestAdmission:
    def test_rate_quota_rejects_with_retry_after(self, g):
        clock = FakeClock()
        with GraphPlatform(clock=clock) as platform:
            platform.add_tenant("acme", TenantQuota(rate_qps=1.0, burst=1.0))
            platform.admit("acme")()
            with pytest.raises(QuotaExceededError) as info:
                platform.admit("acme")
            record = info.value.to_record()
            assert record["reason"] == "rate"
            assert 0 < record["retry_after_s"] <= 1.0
            clock.advance(1.0)  # one token accrues; admitted again
            platform.admit("acme")()
            assert platform.tenant("acme").rejected_rate == 1

    def test_queue_depth_bounds_inflight(self):
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(max_queue_depth=2))
            releases = [platform.admit("acme") for _ in range(2)]
            with pytest.raises(QuotaExceededError) as info:
                platform.admit("acme")
            assert info.value.to_record()["reason"] == "queue"
            releases[0]()
            release = platform.admit("acme")  # freed slot admits again
            release()
            releases[1]()
            assert platform.tenant("acme").inflight == 0

    def test_release_is_idempotent(self):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            release = platform.admit("acme")
            release()
            release()  # double release must not underflow the window
            assert platform.tenant("acme").inflight == 0

    def test_admission_context_manager_releases_on_error(self):
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(max_queue_depth=1))
            with pytest.raises(RuntimeError):
                with platform.admission("acme"):
                    assert platform.tenant("acme").inflight == 1
                    raise RuntimeError("query failed")
            assert platform.tenant("acme").inflight == 0


class TestRebuildSwap:
    """The complete_rebuild outcome matrix, driven without the scheduler."""

    def _rebuilt(self, platform, tenant, name):
        spec, version = platform.snapshot_for_rebuild(tenant, name)
        return version, rebuild_artifact_job(spec)

    def test_swapped_when_resident_and_current(self, g, tmp_path):
        with GraphPlatform(tmp_path) as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            version, artifact = self._rebuilt(platform, "acme", "g1")
            out = platform.complete_rebuild("acme", "g1", version, artifact)
            assert out == "swapped"
            assert platform.entry("acme", "g1").rebuilds == 1

    def test_persisted_when_evicted_mid_rebuild(self, g, tmp_path):
        with GraphPlatform(tmp_path) as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            version, artifact = self._rebuilt(platform, "acme", "g1")
            entry = platform.entry("acme", "g1")
            entry.service.invalidate()  # evicted while the solve ran
            out = platform.complete_rebuild("acme", "g1", version, artifact)
            assert out == "persisted"
            # The persisted artifact loads warm on the next query.
            assert platform.get_service("acme", "g1").total_weight() > 0

    def test_stale_when_version_moved_on(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            version, artifact = self._rebuilt(platform, "acme", "g1")
            out = platform.complete_rebuild("acme", "g1", version - 1, artifact)
            assert out == "stale"
            assert platform.entry("acme", "g1").rebuilds == 0

    def test_discarded_when_graph_removed(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            version, artifact = self._rebuilt(platform, "acme", "g1")
            platform.remove_graph("acme", "g1")
            assert platform.complete_rebuild(
                "acme", "g1", version, artifact) == "discarded"

    def test_discarded_when_tenant_removed(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            version, artifact = self._rebuilt(platform, "acme", "g1")
            platform.remove_tenant("acme")
            assert platform.complete_rebuild(
                "acme", "g1", version, artifact) == "discarded"


class TestMutateEndToEnd:
    def test_mutation_schedules_and_swaps_in_background(self, g, tmp_path):
        """mutate -> dirty -> scheduler re-solves in a pool worker -> clean."""
        with GraphPlatform(tmp_path, max_workers=1) as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            platform.mutate("acme", "g1", "insert", 0, 59, 0.001)
            assert platform.scheduler.drain(timeout_s=60.0)
            entry = platform.entry("acme", "g1")
            assert not entry.dirty
            assert entry.rebuilds == 1
            assert platform.scheduler.stats()["swapped"] == 1

    def test_mutation_rejected_for_problem_entries(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "s", g, problem="sssp", source=0)
            with pytest.raises(ServiceError, match="mutations need an MST"):
                platform.mutate("acme", "s", "insert", 0, 1, 1.0)


class TestIntrospection:
    def test_stats_shape(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme", TenantQuota(rate_qps=5.0))
            platform.add_graph("acme", "g1", g)
            stats = platform.stats()
            tenant = stats["tenants"]["acme"]
            assert tenant["quota"]["rate_qps"] == 5.0
            row = tenant["graphs"]["g1"]
            assert row["problem"] == "mst" and row["resident"]
            assert platform.stats("acme") == tenant

    def test_metrics_providers_cover_tenants_and_pool(self, g):
        with GraphPlatform() as platform:
            platform.add_tenant("acme")
            platform.add_graph("acme", "g1", g)
            providers = platform.metrics_providers()
            assert "platform.tenant.acme" in providers
            assert providers["platform.pool"]() == {}  # pool never spawned
            snapshot = providers["platform.tenant.acme"]()
            assert isinstance(snapshot, dict)
