"""CLI tracing flags: --trace/--trace-out on subcommands, repro trace sugar."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.export import validate_chrome_trace


def _load(path):
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    return doc


def test_mst_trace_out_writes_valid_trace(tmp_path, capsys):
    out = tmp_path / "t.json"
    # Loop mode pinned: backend "round" spans are a loop-mode artifact
    # (the default mode is "auto", which picks vectorized here).
    assert main(["mst", "--algo", "llp-boruvka", "--dataset", "graph500",
                 "--scale", "7", "--workers", "4", "--mode", "loop",
                 "--trace-out", str(out), "--metrics-out",
                 str(tmp_path / "m.json")]) == 0
    doc = _load(out)
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "solve:llp-boruvka" in names
    assert "round" in names
    metrics = doc["otherData"]["metrics"]
    assert "runtime.trace" in metrics and "mst.stats" in metrics
    flat = json.loads((tmp_path / "m.json").read_text())
    assert flat.keys() == metrics.keys()
    assert "[trace written:" in capsys.readouterr().err


def test_trace_subcommand_is_sugar_over_flags(tmp_path, capsys):
    out = tmp_path / "sugar.json"
    assert main(["trace", "--out", str(out), "mst",
                 "--algo", "kruskal", "--dataset", "graph500",
                 "--scale", "7"]) == 0
    doc = _load(out)
    assert any(e["name"] == "solve:kruskal" for e in doc["traceEvents"]
               if e["ph"] == "X")


def test_trace_query_sharded_collects_worker_pids(tmp_path, capsys):
    """The headline acceptance path: one trace spanning >= 2 worker pids."""
    out = tmp_path / "q.json"
    assert main(["trace", "--out", str(out), "query",
                 "--dataset", "graph500", "--scale", "8",
                 "--shards", "2", "--executor", "process",
                 "--type", "connected", "--pairs", "0:5,1:7"]) == 0
    doc = _load(out)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    pids = {e["pid"] for e in xs}
    assert len(pids) >= 3, pids  # coordinator + 2 shard workers
    names = {e["name"] for e in xs}
    assert "service:load_graph" in names      # service layer
    assert "sharded" in names                 # solver/shard layer
    assert "query:connected" in names         # request path
    assert "service.metrics" in doc["otherData"]["metrics"]


def test_untraced_run_writes_nothing(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["mst", "--algo", "kruskal", "--dataset", "graph500",
                 "--scale", "7"]) == 0
    assert not (tmp_path / "trace.json").exists()
    assert "[trace written:" not in capsys.readouterr().err


def test_trace_written_even_when_command_fails(tmp_path, capsys):
    out = tmp_path / "fail.json"
    assert main(["mst", "--algo", "no-such-algo", "--dataset", "graph500",
                 "--scale", "7", "--trace-out", str(out)]) == 2
    assert out.exists(), "a failing run's trace is the one worth keeping"


def test_check_trace_records_cells(tmp_path, capsys):
    out = tmp_path / "check.json"
    assert main(["check", "--graphs", "2", "--max-size", "8",
                 "--skip-faults", "--skip-schedules", "--no-shrink",
                 "--algos", "kruskal,prim",
                 "--trace-out", str(out)]) == 0
    doc = _load(out)
    cells = [e for e in doc["traceEvents"]
             if e["ph"] == "X" and e["name"] == "check:cell"]
    assert cells
    assert all(e["args"]["verdict"] == "ok" for e in cells)
    assert doc["otherData"]["metrics"]["check.matrix"]["mismatches"] == 0
