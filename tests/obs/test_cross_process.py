"""Cross-process tracing: shard workers ship spans back to one timeline."""

from __future__ import annotations

import os

import pytest

from repro.graphs.generators import gnm_random_graph
from repro.mst.kruskal import kruskal
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.trace import Tracer, use_tracer
from repro.shard.coordinator import sharded_mst


@pytest.fixture(scope="module")
def traced_process_solve():
    """One traced 2-shard solve forced onto worker processes."""
    g = gnm_random_graph(120, 400, seed=3)
    tracer = Tracer()
    with use_tracer(tracer):
        result = sharded_mst(g, n_shards=2, executor="process", seed=0)
    return g, tracer, result


class TestShardSpanMerge:
    def test_result_still_exact_under_tracing(self, traced_process_solve):
        g, _, result = traced_process_solve
        assert result.edge_set() == kruskal(g).edge_set()

    def test_at_least_two_worker_pids_plus_coordinator(self, traced_process_solve):
        _, tracer, _ = traced_process_solve
        pids = tracer.pids()
        assert len(pids) >= 3, pids
        assert pids[0] == os.getpid(), "coordinator pid must come first"

    def test_worker_spans_nest_under_their_worker_root(self, traced_process_solve):
        _, tracer, _ = traced_process_solve
        foreign = [sp for sp in tracer.spans if sp.pid != os.getpid()]
        assert foreign, "expected adopted worker spans"
        by_id = {sp.span_id: sp for sp in tracer.spans}
        for sp in foreign:
            if sp.parent_id is None:
                assert sp.name.startswith("shard:worker:")
            else:
                parent = by_id[sp.parent_id]
                assert parent.pid == sp.pid, "worker links must stay intra-process"

    def test_merge_ordering_is_chronological_and_deterministic(
        self, traced_process_solve
    ):
        _, tracer, _ = traced_process_solve
        ordered = tracer.sorted_spans()
        starts = [sp.start_ns for sp in ordered]
        assert starts == sorted(starts)
        # Workers started after the coordinator's umbrella span opened.
        umbrella = next(sp for sp in ordered if sp.name == "sharded")
        for sp in ordered:
            if sp.pid != os.getpid():
                assert sp.start_ns >= umbrella.start_ns

    def test_adopted_ids_unique_across_processes(self, traced_process_solve):
        _, tracer, _ = traced_process_solve
        ids = [sp.span_id for sp in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_merged_timeline_exports_valid_chrome_trace(self, traced_process_solve):
        _, tracer, _ = traced_process_solve
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        worker_meta = [e for e in doc["traceEvents"]
                       if e["ph"] == "M" and "shard-worker" in e["args"]["name"]]
        assert len(worker_meta) >= 2

    def test_expected_phase_spans_present(self, traced_process_solve):
        _, tracer, _ = traced_process_solve
        names = {sp.name for sp in tracer.spans}
        for expected in ("sharded", "shard:partition", "shard:merge",
                         "shard:solve", "mst:assemble"):
            assert expected in names, f"missing {expected} in {sorted(names)}"


class TestUntracedWorkers:
    def test_untraced_solve_ships_no_span_payload(self):
        g = gnm_random_graph(80, 240, seed=5)
        # No tracer installed: workers must not pay for span recording,
        # and the solve must still be exact.
        result = sharded_mst(g, n_shards=2, executor="process", seed=0)
        assert result.edge_set() == kruskal(g).edge_set()

    def test_serial_executor_keeps_everything_in_one_pid(self):
        g = gnm_random_graph(80, 240, seed=6)
        tracer = Tracer()
        with use_tracer(tracer):
            sharded_mst(g, n_shards=2, executor="serial", seed=0)
        assert tracer.pids() == [os.getpid()]
        assert any(sp.name == "shard:solve-serial" for sp in tracer.spans)
