"""MetricsRegistry: naming rules, error isolation, the three adapters."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    counters_provider,
    execution_trace_provider,
    service_metrics_provider,
)
from repro.runtime.metrics import ExecutionTrace
from repro.service.metrics import ServiceMetrics


class TestRegistry:
    def test_snapshot_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.register("b.second", lambda: {"x": 2})
        reg.register("a.first", lambda: {"x": 1})
        snap = reg.snapshot()
        assert list(snap) == ["b.second", "a.first"]
        assert snap == {"b.second": {"x": 2}, "a.first": {"x": 1}}

    def test_duplicate_name_raises_unless_replace(self):
        reg = MetricsRegistry()
        reg.register("m", lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            reg.register("m", lambda: {})
        reg.register("m", lambda: {"v": 1}, replace=True)
        assert reg.snapshot() == {"m": {"v": 1}}

    def test_non_callable_provider_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("m", {"not": "callable"})

    def test_failing_provider_degrades_to_error_entry(self):
        reg = MetricsRegistry()
        reg.register("bad", lambda: (_ for _ in ()).throw(RuntimeError("down")))
        reg.register("good", lambda: {"ok": True})
        snap = reg.snapshot()
        assert snap["bad"] == {"error": "RuntimeError: down"}
        assert snap["good"] == {"ok": True}

    def test_unregister_and_contains(self):
        reg = MetricsRegistry()
        reg.register("m", lambda: {})
        assert "m" in reg
        reg.unregister("m")
        assert "m" not in reg
        reg.unregister("m")  # unknown names are ignored
        assert reg.names() == []

    def test_providers_evaluated_at_snapshot_time(self):
        state = {"n": 0}
        reg = MetricsRegistry()
        reg.register("live", counters_provider(state))
        state["n"] = 42
        assert reg.snapshot() == {"live": {"n": 42}}


class TestAdapters:
    def test_execution_trace_provider(self):
        trace = ExecutionTrace()
        trace.add_round(4, 40, 10)
        trace.bump("edges_scanned", 7)
        out = execution_trace_provider(trace)()
        assert out["rounds"] == 1
        assert out["parallel_work"] == 40
        assert out["counters"] == {"edges_scanned": 7}

    def test_service_metrics_provider(self):
        metrics = ServiceMetrics()
        metrics.record_query("connected", 0.001)
        metrics.record_cache(True)
        out = service_metrics_provider(metrics)()
        assert out["queries"]["connected"]["count"] == 1
        assert out["cache"]["hits"] == 1

    def test_counters_provider_stringifies_keys(self):
        out = counters_provider({1: "a", "b": 2})()
        assert out == {"1": "a", "b": 2}
