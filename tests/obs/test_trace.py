"""Span tracer semantics: nesting, exception safety, adoption, null mode."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    span,
    use_tracer,
)


class TestNesting:
    def test_parent_links_follow_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            with tracer.span("mid", "t") as mid:
                with tracer.span("inner", "t") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        # All closed, with monotone non-negative durations.
        assert all(sp.closed and sp.duration_ns >= 0 for sp in tracer.spans)

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            with tracer.span("a", "t") as a:
                pass
            with tracer.span("b", "t") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("outer", "t") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner", "t") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("s", "t", algorithm="prim", n=3) as sp:
            sp.set_attr("late", True)
        assert sp.attrs == {"algorithm": "prim", "n": 3, "late": True}

    def test_spans_ordered_by_start_time(self):
        tracer = Tracer()
        with tracer.span("first", "t"):
            pass
        with tracer.span("second", "t"):
            pass
        names = [sp.name for sp in tracer.sorted_spans()]
        assert names == ["first", "second"]


class TestExceptionSafety:
    def test_exception_closes_and_tags_the_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing", "t"):
                raise ValueError("boom")
        (sp,) = tracer.spans
        assert sp.closed
        assert sp.error == "ValueError: boom"

    def test_exception_propagates_through_nested_spans(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("outer", "t"):
                with tracer.span("inner", "t"):
                    raise KeyError("k")
        by_name = {sp.name: sp for sp in tracer.spans}
        assert by_name["inner"].error is not None
        assert by_name["outer"].error is not None
        # The stack fully unwound: new spans start at top level again.
        with tracer.span("after", "t") as after:
            pass
        assert after.parent_id is None

    def test_success_leaves_error_none(self):
        tracer = Tracer()
        with tracer.span("fine", "t"):
            pass
        assert tracer.spans[0].error is None


class TestAdoption:
    def _worker_payload(self, pid: int):
        """Simulate a worker process's serialized span tree."""
        worker = Tracer()
        with worker.span("shard:worker", "shard", shard=0):
            with worker.span("shard:solve", "shard"):
                pass
        payload = worker.to_payload()
        for data in payload:  # pretend it came from another process
            data["pid"] = pid
        return payload

    def test_adopt_preserves_intra_payload_parent_links(self):
        parent = Tracer()
        with parent.span("local", "t"):
            pass
        n = parent.adopt(self._worker_payload(pid=99999))
        assert n == 2
        adopted = [sp for sp in parent.spans if sp.pid == 99999]
        by_name = {sp.name: sp for sp in adopted}
        assert by_name["shard:solve"].parent_id == by_name["shard:worker"].span_id

    def test_adopt_renames_ids_away_from_local_ones(self):
        parent = Tracer()
        with parent.span("local", "t"):
            pass
        parent.adopt(self._worker_payload(pid=77777))
        ids = [sp.span_id for sp in parent.spans]
        assert len(ids) == len(set(ids)), "adopted ids must not collide"

    def test_adopt_two_workers_keeps_both_distinct(self):
        parent = Tracer()
        parent.adopt(self._worker_payload(pid=11111))
        parent.adopt(self._worker_payload(pid=22222))
        ids = [sp.span_id for sp in parent.spans]
        assert len(ids) == len(set(ids))
        assert parent.pids() == [11111, 22222]

    def test_adopt_empty_payload(self):
        assert Tracer().adopt([]) == 0

    def test_sorted_spans_breaks_start_ties_deterministically(self):
        tracer = Tracer()
        mk = lambda pid, sid: Span("s", "t", 1000, span_id=sid, pid=pid)  # noqa: E731
        for sp in (mk(30, 2), mk(10, 9), mk(10, 1), mk(20, 5)):
            sp.end_ns = 2000
            tracer.spans.append(sp)
        ordered = [(sp.pid, sp.span_id) for sp in tracer.sorted_spans()]
        assert ordered == [(10, 1), (10, 9), (20, 5), (30, 2)]

    def test_roundtrip_to_dict_from_dict(self):
        sp = Span("n", "c", 123, span_id=7, parent_id=3, pid=1, tid=2,
                  attrs={"k": "v"})
        sp.end_ns = 456
        sp.error = "E: x"
        clone = Span.from_dict(sp.to_dict())
        assert clone.to_dict() == sp.to_dict()


class TestNullMode:
    def test_default_tracer_is_null_and_free(self):
        assert current_tracer() is NULL_TRACER
        # The module-level helper is a no-op that returns a shared CM.
        with span("anything", "t", ignored=1) as sp:
            sp.set_attr("also", "ignored")
        assert NULL_TRACER.spans == []
        assert not NULL_TRACER.enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with span("recorded", "t"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [sp.name for sp in tracer.spans] == ["recorded"]

    def test_null_span_context_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with span("x", "t"):
                raise RuntimeError("must propagate")


class TestProfiling:
    def test_profile_attaches_hotspots_when_enabled(self):
        tracer = Tracer(profile=True)
        with tracer.span("hot", "t", profile=True):
            sum(i * i for i in range(1000))
        (sp,) = tracer.spans
        assert isinstance(sp.attrs.get("profile_top"), list)
        assert sp.attrs["profile_top"], "expected at least one hotspot row"

    def test_profile_is_off_unless_both_flags_set(self):
        tracer = Tracer(profile=False)
        with tracer.span("cold", "t", profile=True):
            pass
        assert "profile_top" not in tracer.spans[0].attrs
