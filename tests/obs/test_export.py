"""Chrome trace-event export: golden document, schema validation."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.trace import Span, Tracer

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace.json"


def _fixed_timeline() -> list[Span]:
    """A deterministic two-process span tree (hand-assigned clocks/ids).

    Layout: coordinator pid 100 runs ``solve`` with a nested ``round``;
    worker pid 200 runs ``shard:worker`` overlapping it.  Every field is
    pinned so the exported document is byte-stable for the golden test.
    """

    def mk(name, cat, start, end, *, sid, parent=None, pid, tid, attrs=None,
           error=None):
        sp = Span(name, cat, start, span_id=sid, parent_id=parent,
                  pid=pid, tid=tid, attrs=attrs)
        sp.end_ns = end
        sp.error = error
        return sp

    return [
        mk("solve", "mst", 1_000_000, 9_000_000, sid=1, pid=100, tid=1,
           attrs={"algorithm": "kruskal", "n_edges": 10}),
        mk("round", "runtime", 2_000_000, 4_000_000, sid=2, parent=1,
           pid=100, tid=1, attrs={"n_tasks": 4}),
        mk("shard:worker", "shard", 2_500_000, 8_000_000, sid=3,
           pid=200, tid=7, attrs={"shard": 0}),
        mk("broken", "mst", 8_500_000, 8_600_000, sid=4, parent=1,
           pid=100, tid=1, error="ValueError: boom"),
    ]


class TestChromeTrace:
    def test_golden_document(self):
        """The exporter's output must match the checked-in golden file.

        Regenerate deliberately with::

            PYTHONPATH=src python -c "
            from tests.obs.test_export import regenerate_golden
            regenerate_golden()"
        """
        doc = chrome_trace(_fixed_timeline())
        got = json.dumps(doc, indent=1, sort_keys=True)
        assert GOLDEN.exists(), "golden file missing; regenerate it"
        assert got.strip() == GOLDEN.read_text().strip(), (
            "Chrome trace output drifted from the golden document; if the "
            "change is intentional, regenerate tests/obs/golden/chrome_trace.json"
        )

    def test_golden_document_passes_schema(self):
        assert validate_chrome_trace(json.loads(GOLDEN.read_text())) == []

    def test_timestamps_relative_to_earliest_span_in_us(self):
        doc = chrome_trace(_fixed_timeline())
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["solve"]["ts"] == 0.0
        assert xs["solve"]["dur"] == pytest.approx(8000.0)   # 8 ms in us
        assert xs["round"]["ts"] == pytest.approx(1000.0)
        assert xs["shard:worker"]["ts"] == pytest.approx(1500.0)

    def test_process_metadata_labels_coordinator_and_workers(self):
        doc = chrome_trace(_fixed_timeline())
        meta = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M"}
        assert meta[100].startswith("coordinator")
        assert meta[200].startswith("shard-worker")

    def test_error_lands_in_args(self):
        doc = chrome_trace(_fixed_timeline())
        broken = next(e for e in doc["traceEvents"]
                      if e["ph"] == "X" and e["name"] == "broken")
        assert broken["args"]["error"] == "ValueError: boom"

    def test_open_spans_are_skipped(self):
        open_span = Span("open", "t", 1000, span_id=1, pid=1, tid=1)
        doc = chrome_trace([open_span])
        assert doc["traceEvents"] == []

    def test_tracer_input_equivalent_to_span_list(self):
        tracer = Tracer()
        tracer.spans.extend(_fixed_timeline())
        assert chrome_trace(tracer) == chrome_trace(_fixed_timeline())

    def test_metrics_land_under_other_data(self):
        doc = chrome_trace(_fixed_timeline(), {"svc": {"count": 1}})
        assert doc["otherData"]["metrics"] == {"svc": {"count": 1}}


class TestValidator:
    def test_rejects_non_object_document(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"displayTimeUnit": "ms"}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x"}]}
        assert any("unknown phase" in p for p in validate_chrome_trace(doc))

    def test_rejects_negative_and_boolean_timestamps(self):
        base = {"ph": "X", "name": "n", "cat": "c", "pid": 1, "tid": 1}
        neg = {"traceEvents": [dict(base, ts=-1.0, dur=1.0)]}
        boolean = {"traceEvents": [dict(base, ts=True, dur=1.0)]}
        assert any("ts" in p for p in validate_chrome_trace(neg))
        assert any("ts" in p for p in validate_chrome_trace(boolean))

    def test_rejects_non_integer_pid(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "n", "cat": "c", "ts": 0, "dur": 0,
             "pid": "one", "tid": 1},
        ]}
        assert any("pid" in p for p in validate_chrome_trace(doc))

    def test_rejects_metadata_without_name(self):
        doc = {"traceEvents": [{"ph": "M", "pid": 1, "tid": 0, "args": {}}]}
        assert any("metadata" in p for p in validate_chrome_trace(doc))

    def test_accepts_numpy_args_via_default_encoder(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "n", "cat": "c", "ts": 0.0, "dur": 1.0,
             "pid": 1, "tid": 1, "args": {"count": np.int64(3)}},
        ]}
        assert validate_chrome_trace(doc) == []


class TestWriters:
    def test_write_chrome_trace_roundtrip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", _fixed_timeline(),
                                  {"m": {"v": np.float64(1.5)}})
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["metrics"]["m"]["v"] == 1.5

    def test_write_metrics_json(self, tmp_path):
        path = write_metrics_json(tmp_path / "m.json",
                                  {"a": {"n": np.int64(2)}})
        assert json.loads(path.read_text()) == {"a": {"n": 2}}


def regenerate_golden() -> None:
    """Rewrite the golden file from the current exporter (call by hand)."""
    doc = chrome_trace(_fixed_timeline())
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
