"""The API doc generator tool."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent


def test_gen_api_docs_runs_and_covers_packages(tmp_path):
    target = tmp_path / "api.md"
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "gen_api_docs.py"), str(target)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    text = target.read_text()
    for section in (
        "## `repro.mst.llp_prim`",
        "## `repro.llp.core`",
        "## `repro.runtime.simulated`",
        "### `def llp_boruvka",
        "### `class CSRGraph",
    ):
        assert section in text, f"missing {section!r}"


def test_committed_api_docs_exist():
    committed = REPO / "docs" / "api.md"
    assert committed.exists()
    assert "API reference" in committed.read_text()[:200]
