"""Public API surface and the README quickstart."""

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_readme_quickstart():
    from repro.graphs.generators import road_network
    from repro.mst import llp_prim, verify_minimum

    g = road_network(16, 16, seed=7)
    result = llp_prim(g)
    verify_minimum(g, result)
    assert result.n_edges == g.n_vertices - 1


def test_errors_hierarchy():
    from repro import errors

    for name in (
        "GraphError",
        "ValidationError",
        "DisconnectedGraphError",
        "WeightError",
        "AlgorithmError",
        "LLPError",
        "InfeasibleError",
        "BackendError",
        "GraphIOError",
        "BenchmarkError",
    ):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.ValidationError, errors.GraphError)
    assert issubclass(errors.InfeasibleError, errors.LLPError)


def test_top_level_workflow_with_backends():
    from repro import SimulatedBackend, llp_boruvka, parallel_boruvka
    from repro.graphs.generators import rmat_graph

    g = rmat_graph(7, 4, seed=2)
    b = SimulatedBackend(4)
    a = llp_boruvka(g, b)
    c = parallel_boruvka(g, SimulatedBackend(4))
    assert a.edge_set() == c.edge_set()
    assert b.modelled_time() > 0
