"""CLI surface: argument handling and end-to-end subcommands."""

import json

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "llp-prim" in out
    assert "usa-road" in out


def test_mst_on_dataset(capsys):
    assert main(["mst", "--algo", "llp-prim", "--dataset", "usa-road",
                 "--scale", "8", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "weight:" in out


def test_mst_parallel_algo_reports_modelled_time(capsys):
    assert main(["mst", "--algo", "llp-boruvka", "--dataset", "graph500",
                 "--scale", "7", "--workers", "4"]) == 0
    out = capsys.readouterr().out
    assert "modelled:" in out and "p=4" in out


def test_mst_from_file(tmp_path, capsys):
    from repro.graphs.generators import grid_graph
    from repro.graphs.io import write_dimacs

    path = tmp_path / "g.gr"
    write_dimacs(grid_graph(4, 4, seed=2), path)
    assert main(["mst", "--input", str(path), "--algo", "kruskal", "--verify"]) == 0
    assert "verified" in capsys.readouterr().out


def test_mst_unsupported_format(tmp_path):
    bad = tmp_path / "g.xyz"
    bad.write_text("")
    with pytest.raises(SystemExit):
        main(["mst", "--input", str(bad)])


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table1_with_json(tmp_path, capsys):
    assert main(["run", "table1", "--scale", "8", "--rmat-scale", "7",
                 "--json-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    data = json.loads((tmp_path / "table1.json").read_text())
    assert data["name"] == "table1-datasets"


def test_run_fig3_custom_threads(capsys):
    assert main(["run", "fig3", "--scale", "8", "--threads", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "p=4" in out


def test_parser_threads_validation():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig3", "--threads", "1,x"])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_profile_subcommand(capsys):
    assert main(["profile", "--algo", "llp-prim", "--scale", "8", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "hotspots" in out or "cum_ms" in out
    assert "llp_prim" in out


def test_profile_parallel_algo(capsys):
    assert main(["profile", "--algo", "llp-boruvka", "--scale", "8",
                 "--workers", "4"]) == 0
    assert "llp-boruvka" in capsys.readouterr().out
