"""CLI surface: argument handling and end-to-end subcommands."""

import json

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "llp-prim" in out
    assert "usa-road" in out


def test_mst_on_dataset(capsys):
    assert main(["mst", "--algo", "llp-prim", "--dataset", "usa-road",
                 "--scale", "8", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "weight:" in out


def test_mst_parallel_algo_reports_modelled_time(capsys):
    assert main(["mst", "--algo", "llp-boruvka", "--dataset", "graph500",
                 "--scale", "7", "--workers", "4"]) == 0
    out = capsys.readouterr().out
    assert "modelled:" in out and "p=4" in out


def test_mst_from_file(tmp_path, capsys):
    from repro.graphs.generators import grid_graph
    from repro.graphs.io import write_dimacs

    path = tmp_path / "g.gr"
    write_dimacs(grid_graph(4, 4, seed=2), path)
    assert main(["mst", "--input", str(path), "--algo", "kruskal", "--verify"]) == 0
    assert "verified" in capsys.readouterr().out


def test_mst_unsupported_format(tmp_path):
    bad = tmp_path / "g.xyz"
    bad.write_text("")
    with pytest.raises(SystemExit):
        main(["mst", "--input", str(bad)])


def test_run_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table1_with_json(tmp_path, capsys):
    assert main(["run", "table1", "--scale", "8", "--rmat-scale", "7",
                 "--json-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    data = json.loads((tmp_path / "table1.json").read_text())
    assert data["name"] == "table1-datasets"


def test_run_fig3_custom_threads(capsys):
    assert main(["run", "fig3", "--scale", "8", "--threads", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "p=4" in out


def test_parser_threads_validation():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig3", "--threads", "1,x"])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_profile_subcommand(capsys):
    assert main(["profile", "--algo", "llp-prim", "--scale", "8", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "hotspots" in out or "cum_ms" in out
    assert "llp_prim" in out


def test_profile_parallel_algo(capsys):
    assert main(["profile", "--algo", "llp-boruvka", "--scale", "8",
                 "--workers", "4"]) == 0
    assert "llp-boruvka" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Service subcommands: mst --save, query, serve
# ----------------------------------------------------------------------
def test_mst_save_then_query_artifact(tmp_path, capsys):
    art = tmp_path / "msf.json"
    assert main(["mst", "--dataset", "usa-road", "--scale", "7",
                 "--save", str(art)]) == 0
    assert "saved:" in capsys.readouterr().out
    assert art.exists()
    assert main(["query", "--artifact", str(art),
                 "--type", "connected", "--pairs", "0:1,0:5"]) == 0
    out = capsys.readouterr().out
    assert "artifact:" in out
    assert out.count("connected") == 2


def test_query_on_dataset_all_kinds(tmp_path, capsys):
    store = str(tmp_path / "store")
    for args in (
        ["--type", "bottleneck", "--pairs", "0:7,3:3"],
        ["--type", "component", "--vertices", "0,1,2"],
        ["--type", "component_size", "--vertices", "0"],
        ["--type", "replacement", "--edges", "0:7:0.001"],
        ["--type", "weight"],
    ):
        assert main(["query", "--dataset", "usa-road", "--scale", "7",
                     "--store", store] + args) == 0
        assert "->" in capsys.readouterr().out
    # everything after the first call hit the artifact cache on disk
    from pathlib import Path

    assert len(list(Path(store).glob("*.npz"))) == 1


def test_query_missing_args_fail_cleanly(capsys):
    assert main(["query", "--dataset", "usa-road", "--scale", "7",
                 "--type", "bottleneck"]) == 2
    assert "needs --pairs" in capsys.readouterr().err
    assert main(["query", "--artifact", "/nonexistent/x.json",
                 "--type", "weight"]) == 2
    assert "cannot read" in capsys.readouterr().err.lower()


def test_serve_round_trip(tmp_path, capsys):
    queries = tmp_path / "q.jsonl"
    queries.write_text(
        '{"op": "connected", "u": 0, "v": 1}\n'
        '{"op": "weight"}\n'
        '{"op": "bottleneck", "u": 0, "v": 1}\n'
    )
    assert main(["serve", "--dataset", "usa-road", "--scale", "7",
                 "--store", str(tmp_path / "store"),
                 "--queries", str(queries), "--metrics"]) == 0
    captured = capsys.readouterr()
    lines = [json.loads(x) for x in captured.out.strip().splitlines()]
    assert len(lines) == 3
    assert lines[0]["op"] == "connected"
    assert isinstance(lines[1]["result"], float)
    assert "serving" in captured.err and "cold" in captured.err
    assert "batch" in captured.err  # --metrics report

    # second run over the same store is a warm load
    assert main(["serve", "--dataset", "usa-road", "--scale", "7",
                 "--store", str(tmp_path / "store"),
                 "--queries", str(queries)]) == 0
    assert "warm" in capsys.readouterr().err


def test_serve_reports_bad_query_line_without_dying(tmp_path, capsys):
    queries = tmp_path / "q.jsonl"
    queries.write_text('{"op": "nonsense"}\n{"op": "weight"}\n')
    # per-request errors are reported inline; the server keeps serving
    assert main(["serve", "--dataset", "usa-road", "--scale", "7",
                 "--store", str(tmp_path / "store"),
                 "--queries", str(queries)]) == 0
    lines = [json.loads(x) for x in capsys.readouterr().out.strip().splitlines()]
    assert "unknown query kind" in lines[0]["error"]
    assert isinstance(lines[1]["result"], float)


def test_serve_sigint_stops_intake_and_drains(tmp_path, capsys, monkeypatch):
    """A SIGINT mid-stream: issued requests drain, the rest get structured
    interruption records, and the final metrics summary line prints."""
    import repro.cli as cli

    queries = tmp_path / "q.jsonl"
    queries.write_text("".join('{"op": "weight"}\n' for _ in range(40)))

    def fake_install(loop, handler):
        loop.call_soon(handler)  # "SIGINT" arrives at the first await point
        return lambda: None

    monkeypatch.setattr(cli, "_install_sigint", fake_install)
    rc = main(["serve", "--dataset", "usa-road", "--scale", "7",
               "--store", str(tmp_path / "store"),
               "--queries", str(queries)])
    assert rc == 130
    captured = capsys.readouterr()
    lines = [json.loads(x) for x in captured.out.strip().splitlines()]
    assert len(lines) == 40  # every request line is answered one way or the other
    issued = [x for x in lines if "result" in x]
    skipped = [x for x in lines
               if x.get("error") == "interrupted before issue (SIGINT)"]
    assert issued and skipped
    assert len(issued) + len(skipped) == 40
    assert "interrupted: intake stopped" in captured.err
    assert "served=" in captured.err  # the summary line


def test_serve_prints_summary_line_on_clean_exit(tmp_path, capsys):
    queries = tmp_path / "q.jsonl"
    queries.write_text('{"op": "weight"}\n')
    assert main(["serve", "--dataset", "usa-road", "--scale", "7",
                 "--store", str(tmp_path / "store"),
                 "--queries", str(queries)]) == 0
    err = capsys.readouterr().err
    assert "served=1" in err and "rejected=0" in err


def test_mst_spill_dir_end_to_end(tmp_path, capsys):
    from repro.graphs.generators import grid_graph
    from repro.graphs.io import write_dimacs

    path = tmp_path / "g.gr"
    write_dimacs(grid_graph(5, 5, seed=3), path)
    spill = tmp_path / "spill"
    assert main(["mst", "--input", str(path), "--algo", "kruskal",
                 "--spill-dir", str(spill), "--verify"]) == 0
    assert "verified" in capsys.readouterr().out
    # Anonymous memmaps are unlinked at creation: nothing may remain.
    assert list(spill.iterdir()) == []


def test_mst_sharded_streaming_knobs(tmp_path, capsys):
    from repro.graphs.generators import gnm_random_graph
    from repro.graphs.io import write_dimacs

    path = tmp_path / "g.gr"
    write_dimacs(gnm_random_graph(60, 220, seed=4), path)
    spill = tmp_path / "spool"
    assert main(["mst", "--input", str(path), "--shards", "2",
                 "--executor", "serial", "--max-concurrent", "1",
                 "--arena-backing", "file", "--spill-dir", str(spill),
                 "--verify"]) == 0
    assert "verified" in capsys.readouterr().out
    assert not list(spill.glob("*.arena"))


def test_mst_rejects_bad_arena_backing():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["mst", "--dataset", "usa-road",
                           "--arena-backing", "floppy"])


def test_info_reports_jit_gate(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "jit:" in out and "disabled" in out
