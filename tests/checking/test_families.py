"""Adversarial graph families: determinism, coverage, and shape."""

import numpy as np
import pytest

from repro.checking.families import FAMILIES, generate_case, iter_cases


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_family_generates(family):
    case = generate_case(family, seed=3, size=9)
    g = case.graph
    assert g.n_vertices >= 0
    assert case.family == family
    assert family in case.name


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_generation_is_deterministic(family):
    a = generate_case(family, seed=7, size=11).graph
    b = generate_case(family, seed=7, size=11).graph
    assert a.n_vertices == b.n_vertices
    assert np.array_equal(a.edge_u, b.edge_u)
    assert np.array_equal(a.edge_v, b.edge_v)
    assert np.array_equal(a.edge_w, b.edge_w)


def test_different_seeds_differ():
    a = generate_case("random-duplicates", seed=0, size=12).graph
    b = generate_case("random-duplicates", seed=1, size=12).graph
    same = (
        a.n_edges == b.n_edges
        and np.array_equal(a.edge_u, b.edge_u)
        and np.array_equal(a.edge_v, b.edge_v)
        and np.array_equal(a.edge_w, b.edge_w)
    )
    assert not same


def test_parallel_edges_family_has_parallel_edges():
    g = generate_case("parallel-edges", seed=0, size=10).graph
    pairs = set(zip(g.edge_u.tolist(), g.edge_v.tolist()))
    assert len(pairs) < g.n_edges


def test_self_loop_family_keeps_vertices():
    g = generate_case("self-loops", seed=0, size=8).graph
    assert g.n_vertices > 0


def test_iter_cases_count_and_family_mix():
    cases = list(iter_cases(seed=5, count=60, max_size=14))
    assert len(cases) == 60
    assert {c.family for c in cases} == set(FAMILIES)


def test_iter_cases_family_filter():
    cases = list(iter_cases(seed=0, count=10, families=["zero-weights"]))
    assert len(cases) == 10
    assert all(c.family == "zero-weights" for c in cases)


def test_int64_huge_weights_stay_integral():
    g = generate_case("int64-huge", seed=0, size=10).graph
    assert g.edge_w.dtype.kind in "iu"
    assert int(np.abs(g.edge_w).max()) > 2**53
