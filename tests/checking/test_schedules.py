"""Adversarial schedules: backend contract, Lemma-4 subsets, hunts."""

import numpy as np
import pytest

from repro.checking.families import generate_case
from repro.checking.schedules import (
    AdversarialScheduleBackend,
    ShuffledFrontierProblem,
    hunt_llp_schedules,
    hunt_mst_schedules,
)


def test_run_round_returns_results_in_item_order():
    backend = AdversarialScheduleBackend(seed=1)
    executed = []

    def task(ctx, item):
        executed.append(item)
        return item * 10

    items = list(range(16))
    results = backend.run_round(items, task)
    assert results == [i * 10 for i in items]  # item order, always
    assert sorted(executed) == items
    assert executed != items  # ...but executed in a permuted order


def test_run_worklist_drains_everything():
    backend = AdversarialScheduleBackend(seed=2)

    def task(ctx, item):
        children = [item * 2, item * 2 + 1] if item < 8 else []
        return children, item

    payloads = backend.run_worklist([1], task)
    # Binary expansion from 1: every node in [1, 16) appears exactly once.
    assert sorted(payloads) == list(range(1, 16))


def test_shuffled_frontier_is_nonempty_subset():
    from repro.llp.problems.mst_prim import PrimLLP

    g = generate_case("few-distinct-weights", 0, 9).graph
    inner = PrimLLP(g, 0)
    wrapped = ShuffledFrontierProblem(inner, seed=4)
    G = inner.bottom()
    full = set(inner.forbidden_indices(G))
    if not full:
        pytest.skip("bottom state already feasible")
    for _ in range(10):
        subset = wrapped.forbidden_indices(G)
        assert subset
        assert set(subset) <= full


def test_hunt_llp_schedules_converges():
    report = hunt_llp_schedules(seed=1, n_schedules=10)
    assert report.runs == 10
    assert report.ok, report.failures


def test_hunt_mst_schedules_matches_oracle():
    report = hunt_mst_schedules(seed=1, n_schedules=3)
    assert report.runs > 0
    assert report.ok, report.failures


def test_hunts_are_deterministic():
    a = hunt_llp_schedules(seed=9, n_schedules=5)
    b = hunt_llp_schedules(seed=9, n_schedules=5)
    assert (a.runs, a.failures) == (b.runs, b.failures)


def test_order_dependent_problem_is_caught():
    """A deliberately order-sensitive LLP problem must trip the hunt."""
    from repro.llp.engine_parallel import solve_parallel

    class OrderSensitive:
        # Advances each index by 1 until the *sum of visit order* leaks
        # into the state: index j stops at a value that depends on when
        # it was first advanced.
        n = 4

        def __init__(self):
            self.clock = 0

        def bottom(self):
            return np.zeros(4)

        def top(self):
            return np.full(4, 100.0)

        def forbidden(self, G, j):
            return G[j] == 0.0

        def forbidden_indices(self, G):
            return [j for j in range(4) if self.forbidden(G, j)]

        def advance(self, G, j):
            self.clock += 1
            return float(self.clock)  # order leaks into the state

        def is_feasible(self, G):
            return not any(self.forbidden(G, j) for j in range(4))

        def on_advanced(self, G, j, old, new):
            pass

    reference = solve_parallel(OrderSensitive()).state
    diverged = False
    for s in range(8):
        wrapped = ShuffledFrontierProblem(OrderSensitive(), seed=s)
        got = solve_parallel(wrapped, AdversarialScheduleBackend(s)).state
        if not np.array_equal(got, reference):
            diverged = True
            break
    assert diverged, "adversarial schedules failed to expose order-dependence"
