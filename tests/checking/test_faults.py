"""Fault injection: corruption kinds, degradation, cancellation, serve."""

import numpy as np
import pytest

from repro.checking.faults import (
    FAULT_KINDS,
    check_artifact_degradation,
    check_mid_batch_cancellation,
    check_serve_malformed,
    corrupt_artifact,
    malformed_request_lines,
    run_fault_suite,
)
from repro.errors import ServiceError


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_corrupt_artifact_changes_the_file(tmp_path, kind):
    from repro.checking.families import generate_case
    from repro.service import MSTService
    from repro.service.artifacts import ArtifactStore

    store = ArtifactStore(tmp_path)
    svc = MSTService(store, algorithm="kruskal")
    artifact = svc.load_graph(generate_case("few-distinct-weights", 0, 10).graph)
    path = store.path_for(artifact.fingerprint)
    before = path.read_bytes()
    corrupt_artifact(path, kind, seed=1)
    assert path.read_bytes() != before


def test_corrupt_artifact_rejects_unknown_kind(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, a=np.arange(3))
    with pytest.raises(ServiceError):
        corrupt_artifact(path, "no-such-kind")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_artifact_degradation_across_seeds(tmp_path, seed):
    report = check_artifact_degradation(tmp_path, seed=seed)
    assert report.checks_run > 0
    assert report.ok, report.failures


def test_mid_batch_cancellation():
    report = check_mid_batch_cancellation(seed=0)
    assert report.checks_run == 4
    assert report.ok, report.failures


def test_malformed_lines_are_deterministic():
    assert malformed_request_lines(5) == malformed_request_lines(5)
    assert len(malformed_request_lines(0)) == 12


def test_serve_answers_malformed_lines_in_stream(tmp_path):
    report = check_serve_malformed(tmp_path, seed=0)
    assert report.ok, report.failures


@pytest.mark.slow
def test_full_fault_suite(tmp_path):
    report = run_fault_suite(tmp_path, seed=3)
    assert report.checks_run >= 25
    assert report.ok, report.failures
