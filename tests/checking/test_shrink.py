"""Delta-debugging shrinker: minimization, invariants, and repro output."""

import numpy as np

from repro.checking.families import generate_case
from repro.checking.oracle import (
    BROKEN_ALGORITHM_NAME,
    broken_max_forest,
    run_matrix,
)
from repro.checking.shrink import (
    shrink_graph,
    shrink_mismatch,
    to_pytest_repro,
)

EXTRA = {BROKEN_ALGORITHM_NAME: broken_max_forest}


def _planted_mismatch(seed=0):
    report = run_matrix(
        seed=seed, count=40,
        algorithms=[BROKEN_ALGORITHM_NAME], extra_algorithms=EXTRA,
        max_mismatches=1,
    )
    assert not report.ok
    return report.mismatches[0]


def test_planted_bug_shrinks_to_at_most_8_vertices():
    shrunk = shrink_mismatch(_planted_mismatch(), extra_algorithms=EXTRA)
    assert shrunk.graph.n_vertices <= 8
    assert shrunk.graph.n_edges <= shrunk.original_edges
    # The minimized graph still reproduces the same failure kind.
    assert shrunk.mismatch.kind == "not-minimum"


def test_shrink_only_adopts_validated_candidates():
    g = generate_case("few-distinct-weights", 2, 12).graph

    calls = []

    def predicate(h):
        calls.append(h.n_edges)
        return h.n_edges >= 3  # any graph with >= 3 edges "fails"

    shrunk, n_calls = shrink_graph(g, predicate)
    assert n_calls == len(calls)
    assert predicate(shrunk)
    assert shrunk.n_edges <= g.n_edges


def test_shrink_handles_predicate_exceptions_as_false():
    g = generate_case("few-distinct-weights", 1, 10).graph

    def predicate(h):
        if h.n_edges < g.n_edges:
            raise ValueError("candidate rejected the hard way")
        return True

    shrunk, _ = shrink_graph(g, predicate)
    # Nothing could be removed: every candidate raised.
    assert shrunk.n_edges == g.n_edges


def test_shrink_respects_call_budget():
    g = generate_case("random-duplicates", 3, 16).graph

    def predicate(h):
        return h.n_edges >= 1

    _, n_calls = shrink_graph(g, predicate, max_calls=25)
    assert n_calls <= 25


def test_pytest_repro_is_valid_python():
    shrunk = shrink_mismatch(_planted_mismatch(), extra_algorithms=EXTRA)
    source = to_pytest_repro(shrunk, test_name="test_generated")
    compile(source, "<repro>", "exec")  # syntactically valid
    assert "def test_generated()" in source
    assert "check_one" in source
    assert "assert mismatch is None" in source
    # Every surviving edge appears in the emitted edge list.
    assert source.count("(") >= shrunk.graph.n_edges


def test_repro_graph_round_trips():
    shrunk = shrink_mismatch(_planted_mismatch(), extra_algorithms=EXTRA)
    g = shrunk.graph
    # The shrunken graph keeps failing when rebuilt from raw arrays, which
    # is exactly what the emitted repro does.
    from repro.checking.oracle import check_one
    from repro.graphs.csr import CSRGraph
    from repro.graphs.edgelist import EdgeList

    rebuilt = CSRGraph.from_edgelist(
        EdgeList.from_arrays(
            g.n_vertices,
            np.asarray(g.edge_u), np.asarray(g.edge_v), np.asarray(g.edge_w),
            dedup=False,
        )
    )
    mismatch = check_one(
        rebuilt,
        shrunk.mismatch.algorithm,
        shrunk.mismatch.mode,
        shrunk.mismatch.backend,
        extra_algorithms=EXTRA,
    )
    assert mismatch is not None
    assert mismatch.kind == shrunk.mismatch.kind
