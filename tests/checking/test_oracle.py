"""Differential oracle: classification, matrix cells, and sweeps."""

import numpy as np
import pytest

from repro.checking.families import generate_case, iter_cases
from repro.checking.oracle import (
    BACKENDS,
    BROKEN_ALGORITHM_NAME,
    broken_max_forest,
    check_one,
    classify_result,
    iter_checks,
    run_matrix,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList
from repro.mst.kruskal import kruskal
from repro.mst.registry import algorithm_info, available_algorithms


def _graph(edges, n):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


def test_oracle_agrees_with_itself():
    g = generate_case("few-distinct-weights", 0, 10).graph
    assert classify_result(g, kruskal(g)) is None


def test_broken_stub_is_flagged_not_minimum():
    g = _graph([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)], 3)
    verdict = classify_result(g, broken_max_forest(g))
    assert verdict is not None
    assert verdict[0] == "not-minimum"


def test_check_one_catches_exceptions():
    def exploding(g, backend=None):
        raise RuntimeError("boom")

    g = _graph([(0, 1, 1.0)], 2)
    mismatch = check_one(
        g, "exploding", None, "sequential",
        extra_algorithms={"exploding": exploding},
    )
    assert mismatch is not None
    assert mismatch.kind == "exception"
    assert "boom" in mismatch.detail


def test_tie_divergence_classification():
    # Two equal-weight spanning trees of a 2-path: swapping the chosen
    # edge keeps the multiset but changes the edge ids.
    g = _graph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)], 3)
    oracle = kruskal(g)
    other_ids = sorted(set(range(g.n_edges)) - set(oracle.edge_ids.tolist()))
    from repro.mst.base import result_from_edge_ids

    swapped = result_from_edge_ids(
        g, np.array([oracle.edge_ids[0], other_ids[0]], dtype=np.int64)
    )
    verdict = classify_result(g, swapped, oracle)
    assert verdict is not None
    assert verdict[0] == "tie-divergence"


def test_iter_checks_backend_policy():
    cells = iter_checks()
    for name in available_algorithms():
        info = algorithm_info(name)
        labels = {b for a, m, b in cells if a == name}
        if info.parallel:
            assert labels == set(BACKENDS)
        else:
            assert labels == {next(iter(BACKENDS))}


def test_run_matrix_small_sweep_is_clean():
    report = run_matrix(seed=1, count=12, max_size=12)
    assert report.cases_run == 12
    assert report.ok, [str(m) for m in report.mismatches]


def test_run_matrix_detects_planted_bug_and_stops_early():
    report = run_matrix(
        seed=0, count=40,
        algorithms=[BROKEN_ALGORITHM_NAME],
        extra_algorithms={BROKEN_ALGORITHM_NAME: broken_max_forest},
        max_mismatches=3,
    )
    assert not report.ok
    assert len(report.mismatches) == 3
    assert all(m.algorithm == BROKEN_ALGORITHM_NAME for m in report.mismatches)


def test_unknown_backend_label_raises():
    with pytest.raises(KeyError):
        iter_checks(backends=["no-such-backend"])


@pytest.mark.slow
def test_full_matrix_200_graphs():
    """The acceptance sweep: every cell on >= 200 adversarial graphs."""
    cases = list(iter_cases(seed=0, count=200, max_size=20))
    assert len(cases) == 200
    report = run_matrix(cases)
    assert report.cases_run == 200
    assert report.ok, [str(m) for m in report.mismatches]
