"""Shrunken counterexamples for every bug the checking harness surfaced.

Each test is the minimized graph (or call) the delta-debugger produced
when the differential oracle / fault suite first caught the bug, frozen
as a regression test.  If an implementation regresses, the failure
message names the exact cell and divergence kind.
"""

import json

import numpy as np
import pytest

from repro.checking.oracle import check_one
from repro.graphs.csr import CSRGraph
from repro.graphs.edgelist import EdgeList


def _graph(n, edges, wdtype=np.float64):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=wdtype)
    return CSRGraph.from_edgelist(EdgeList.from_arrays(n, u, v, w, dedup=False))


# ----------------------------------------------------------------------
# Bug: prim/vectorized picked the heavier of two parallel edges — the
# masked scatter `d[nbrs] = keys` is last-writer-wins when `nbrs` holds
# duplicate vertex ids.  Shrunk to 2 vertices / 2 parallel edges.
# ----------------------------------------------------------------------
def test_prim_vectorized_parallel_edges():
    g = _graph(2, [(0, 1, 1.0), (0, 1, 0.0)])
    mismatch = check_one(g, "prim", "vectorized", "sequential")
    assert mismatch is None, str(mismatch)


# ----------------------------------------------------------------------
# Bug: llp-prim/vectorized had the same scatter hazard, plus the relax
# scatter could clobber the parent_edge of a vertex MWE-fixed earlier in
# the same slice.  Shrunk to 4 vertices / 4 edges with one parallel pair.
# ----------------------------------------------------------------------
def test_llp_prim_vectorized_parallel_edges():
    g = _graph(4, [(0, 1, 2.0), (0, 1, 0.0), (1, 2, 1.0), (2, 3, 3.0)])
    mismatch = check_one(g, "llp-prim", "vectorized", "sequential")
    assert mismatch is None, str(mismatch)


# ----------------------------------------------------------------------
# Bug: GHS addresses edges on the wire by (src, dst) endpoint pairs, so
# two parallel edges are indistinguishable and the fragments livelocked
# until the delivery bound tripped.  Shrunk to 2 vertices / 2 edges.
# ----------------------------------------------------------------------
def test_ghs_parallel_edges():
    g = _graph(2, [(0, 1, 1.0), (0, 1, 0.0)])
    mismatch = check_one(g, "ghs", None, "sequential")
    assert mismatch is None, str(mismatch)


def test_all_algorithms_on_dense_parallel_multigraph():
    """Belt and braces: every registered cell on a parallel-edge clique."""
    from repro.checking.oracle import iter_checks

    rng = np.random.default_rng(11)
    edges = []
    for a in range(4):
        for b in range(a + 1, 4):
            for _ in range(3):
                edges.append((a, b, float(rng.integers(0, 4))))
    g = _graph(4, edges)
    for name, mode, backend in iter_checks():
        mismatch = check_one(g, name, mode, backend)
        assert mismatch is None, str(mismatch)


# ----------------------------------------------------------------------
# Bug: math.fsum raises OverflowError once partial sums pass the float
# ceiling (weights near 1e308), which the verifier surfaced as
# "invalid-forest" on perfectly correct results.
# ----------------------------------------------------------------------
def test_stable_sum_survives_overflow():
    from repro.mst.verify import stable_weight_sum, weight_sums_consistent

    w = np.array([1.5e308, 1.5e308, -1.0e308], dtype=np.float64)
    total = stable_weight_sum(w)  # must not raise
    assert weight_sums_consistent(total, w)
    with np.errstate(over="ignore"):
        naive = float(np.sum(w))
    assert weight_sums_consistent(naive, w)


def test_huge_float_graph_verifies():
    g = _graph(3, [(0, 1, 1.7e308), (1, 2, 1.6e308), (0, 2, 1.5e308)])
    for algo in ("kruskal", "prim", "boruvka"):
        mismatch = check_one(g, algo, None, "sequential")
        assert mismatch is None, str(mismatch)


# ----------------------------------------------------------------------
# Bug: a fixed rtol/atol on the weight total spuriously rejected correct
# forests whose loop- and vectorized-mode totals were accumulated in
# different orders over mixed-magnitude weights.
# ----------------------------------------------------------------------
def test_weight_consistency_is_scale_aware():
    from repro.mst.verify import weight_sums_consistent

    w = np.array([1e16, -1e16, 1.0, -1.0, 1e-8] * 10, dtype=np.float64)
    naive = float(np.sum(w))
    left_to_right = 0.0
    for x in w:
        left_to_right += float(x)
    assert weight_sums_consistent(naive, w)
    assert weight_sums_consistent(left_to_right, w)
    # ...but a total wrong by more than the scale-aware bound (here
    # ~5e4 for sum|w| ~ 5e17) is still rejected.
    assert not weight_sums_consistent(naive + 1e8, w)


# ----------------------------------------------------------------------
# Bug: the scatter-min MWE kernel's dense key->position inversion assumed
# pairwise-distinct keys; duplicate keys returned an arbitrary
# (last-writer) edge, diverging from the loop path's earliest-position
# tie-break.
# ----------------------------------------------------------------------
def test_minimum_edge_kernel_breaks_ties_by_position():
    from repro.kernels.segments import minimum_edge_per_vertex

    edge_u = np.array([0, 0, 1], dtype=np.int64)
    edge_v = np.array([1, 2, 2], dtype=np.int64)
    keys = np.array([5, 5, 5], dtype=np.int64)  # all tied
    edge_ids = np.array([10, 11, 12], dtype=np.int64)
    to, eid, key = minimum_edge_per_vertex(3, edge_u, edge_v, keys, edge_ids)
    # Earliest input position wins every tie.
    assert eid.tolist() == [10, 10, 11]
    assert key.tolist() == [5, 5, 5]


def test_dedupe_parallel_neighbors_keeps_min_key():
    from repro.kernels.relax import dedupe_parallel_neighbors

    nbrs = np.array([3, 3, 5, 5, 5, 7], dtype=np.int64)
    keys = np.array([9, 2, 4, 1, 6, 0], dtype=np.int64)
    eids = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
    n2, k2, e2 = dedupe_parallel_neighbors(nbrs, keys, eids)
    assert n2.tolist() == [3, 5, 7]
    assert k2.tolist() == [2, 1, 0]
    assert e2.tolist() == [1, 3, 5]


# ----------------------------------------------------------------------
# Bug: int64 weights funnelled through float64 collide beyond 2**53 —
# distinct graphs got the same artifact fingerprint and one graph's
# forest could be served for another.
# ----------------------------------------------------------------------
def test_int64_weights_beyond_2_53_stay_distinct():
    from repro.service.artifacts import graph_fingerprint

    base = 1 << 53
    g1 = _graph(2, [(0, 1, base)], wdtype=np.int64)
    g2 = _graph(2, [(0, 1, base + 1)], wdtype=np.int64)
    assert float(base) == float(base + 1)  # the collision being guarded
    assert graph_fingerprint(g1, "kruskal") != graph_fingerprint(g2, "kruskal")


def test_int64_weights_round_trip_json_artifact(tmp_path):
    from repro.service.artifacts import (
        build_artifact,
        load_json_artifact,
        save_json_artifact,
    )

    base = (1 << 53) + 7
    g = _graph(3, [(0, 1, base), (1, 2, base + 1)], wdtype=np.int64)
    artifact = build_artifact(g, algorithm="kruskal")
    path = tmp_path / "a.json"
    save_json_artifact(artifact, path)
    loaded = load_json_artifact(path)
    assert loaded.msf_w.dtype.kind in "iu"
    assert loaded.msf_w.tolist() == artifact.msf_w.tolist()
    assert int(loaded.total_weight) == int(artifact.total_weight)


# ----------------------------------------------------------------------
# Bug: garbage corruption inside a zip member surfaces as zlib.error /
# struct.error from the decompressor — not zipfile.BadZipFile — and
# escaped the artifact loader's degrade-to-recompute path.
# ----------------------------------------------------------------------
def test_garbage_corrupted_artifact_degrades(tmp_path):
    from repro.checking.families import generate_case
    from repro.checking.faults import corrupt_artifact
    from repro.service import MSTService
    from repro.service.artifacts import ArtifactStore

    g = generate_case("few-distinct-weights", 4, 10).graph
    store = ArtifactStore(tmp_path)
    clean = MSTService(store, algorithm="kruskal").load_graph(g)
    corrupt_artifact(store.path_for(clean.fingerprint), "garbage", seed=2)
    svc = MSTService(ArtifactStore(tmp_path), algorithm="kruskal")
    again = svc.load_graph(g)  # must not raise
    assert again.fingerprint == clean.fingerprint
    assert np.array_equal(again.msf_edge_ids, clean.msf_edge_ids)


# ----------------------------------------------------------------------
# Bug: a malformed JSON-lines request aborted the whole `repro serve`
# run, dropping the well-formed requests coalesced around it.  Now every
# line gets a structured per-line response record.
# ----------------------------------------------------------------------
def test_serve_malformed_lines_get_structured_errors(tmp_path):
    import contextlib
    import io

    from repro.checking.families import generate_case
    from repro.cli import main
    from repro.graphs.io.binary import save_npz

    g = generate_case("few-distinct-weights", 0, 8).graph
    graph_path = tmp_path / "g.npz"
    save_npz(g, graph_path)
    reqs = tmp_path / "reqs.jsonl"
    reqs.write_text(
        "{broken\n"
        + json.dumps({"op": "connected", "u": 0, "v": 1}) + "\n"
        + json.dumps({"op": "no-such-op"}) + "\n"
        + json.dumps({"op": "weight"}) + "\n"
    )
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(io.StringIO()):
        code = main(["serve", "--input", str(graph_path), "--queries", str(reqs)])
    assert code == 0
    records = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(records) == 4
    assert "error" in records[0] and "error" in records[2]
    assert "result" in records[1] and "result" in records[3]
