"""Smoke tests for the kernel benchmark tooling.

Runs ``tools/bench_kernels_report.py`` on a tiny graph and checks it
writes valid, complete JSON; pins the shape of the committed
``BENCH_kernels.json`` so the checked-in numbers can't silently rot.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent.parent


def test_bench_kernels_report_tiny_graph(tmp_path):
    target = tmp_path / "BENCH_kernels.json"
    proc = subprocess.run(
        [
            sys.executable, str(REPO / "tools" / "bench_kernels_report.py"),
            str(target), "--n", "60", "--m", "150", "--seed", "3",
            "--repeats", "1",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(target.read_text())
    assert report["graph"]["n_edges"] == 150
    algos = report["algorithms"]
    assert "llp-boruvka" in algos and "parallel-boruvka" in algos
    for entry in algos.values():
        assert entry["identical_edge_set"] is True
        assert entry["loop"]["seconds"] > 0
        assert entry["vectorized"]["seconds"] > 0
        assert entry["speedup"] > 0


def test_committed_bench_kernels_json():
    committed = REPO / "BENCH_kernels.json"
    report = json.loads(committed.read_text())
    assert report["graph"]["n_edges"] == 100_000
    entry = report["algorithms"]["llp-boruvka"]
    assert entry["identical_edge_set"] is True
    assert entry["speedup"] >= 10.0
