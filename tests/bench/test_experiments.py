"""Experiment regeneration at tiny scales: the paper's qualitative shapes.

These run the real experiment functions at small scale and assert the
*direction* of every headline claim (who wins where) rather than absolute
numbers.  Wall-clock assertions are avoided — only modelled times and
operation counts, which are deterministic.
"""

import pytest

from repro.bench.experiments import (
    run_ablation_early_fixing,
    run_ablation_heaps,
    run_ablation_pointer_jumping,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)

SCALE_ROAD = 12
SCALE_RMAT = 11


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(scale=SCALE_ROAD, seed=0, threads=(1, 2, 8, 32))


def test_table1_shapes():
    res = run_table1(road_scale=SCALE_ROAD, rmat_scale=SCALE_RMAT, seed=0)
    headers, rows = res.tables["Table I: graphs used in the evaluation (scaled)"]
    assert len(rows) == 2
    road, rmat = rows
    assert road[2] == "road" and rmat[2] == "scalefree"
    assert res.notes["usa-road_morphology"] == "road"
    assert res.notes["graph500_morphology"] == "scalefree"
    # road: low degree, high diameter; rmat: skewed degree
    assert road[5] < 5.0
    assert rmat[6] > 5 * rmat[5]


def test_fig2_llp_prim_reduces_heap_ops():
    res = run_fig2(road_scale=SCALE_ROAD, rmat_scale=SCALE_RMAT, seed=0, repeats=1)
    headers, rows = res.tables["Fig 2: single-threaded wall times"]
    by_key = {(r[0], r[1]): r for r in rows}
    for ds in ("usa-road", "graph500"):
        prim_ops = by_key[(ds, "Prim")][3]
        llp_ops = by_key[(ds, "LLP-Prim (1T)")][3]
        assert llp_ops < prim_ops
        # identical forests
        assert by_key[(ds, "Prim")][4] == by_key[(ds, "LLP-Prim (1T)")][4]
        assert by_key[(ds, "Boruvka (1T)")][4] == by_key[(ds, "Prim")][4]


def test_fig3_boruvka_family_scales(fig3):
    times = fig3.series["Fig 3: modelled time (s) vs threads, USA road"]
    speedups = fig3.series["Fig 3b: modelled speedup vs threads"]
    # Boruvka: strong scaling throughout
    assert speedups["Boruvka"][32] > 6.0
    assert times["Boruvka"][32] < times["Boruvka"][1] / 6
    # LLP-Boruvka beats Boruvka at every measured count
    assert fig3.notes["llp_boruvka_faster_than_boruvka_everywhere"]


def test_fig3_llp_prim_limited_scaling(fig3):
    speedups = fig3.series["Fig 3b: modelled speedup vs threads"]
    llp = speedups["LLP-Prim"]
    assert llp[2] > 1.0  # some speedup at low counts
    assert llp[32] < 3.0  # far from linear
    assert llp[32] < llp[2] * 2  # plateau / regression at high counts


def test_fig3_crossover_exists(fig3):
    cross = fig3.notes["boruvka_overtakes_llp_prim_at"]
    assert cross is not None and 2 <= cross <= 32


def test_fig3_llp_prim_wins_single_thread(fig3):
    times = fig3.series["Fig 3: modelled time (s) vs threads, USA road"]
    assert times["LLP-Prim"][1] < times["Boruvka"][1]


def test_fig4_winners():
    res = run_fig4(road_scale=SCALE_ROAD, rmat_scale=SCALE_RMAT, seed=0, low=2, high=32)
    # low core counts: LLP-Prim; high: a Boruvka-family algorithm,
    # with LLP-Boruvka ahead of Boruvka
    for ds in ("usa-road", "graph500"):
        assert res.notes[f"{ds}_winner_low"] == "LLP-Prim"
        assert res.notes[f"{ds}_winner_high"] == "LLP-Boruvka"


def test_fig4_llp_prim_scales_better_on_denser_graph():
    res = run_fig4(road_scale=SCALE_ROAD, rmat_scale=SCALE_RMAT, seed=0, low=2, high=32)
    road = res.series["Fig 4: usa-road modelled time (s)"]["LLP-Prim"]
    rmat = res.series["Fig 4: graph500 modelled time (s)"]["LLP-Prim"]
    road_gain = road[2] / road[32]
    rmat_gain = rmat[2] / rmat[32]
    assert rmat_gain > road_gain  # "performs best in graphs with more edges"


def test_ablation_early_fixing_reduces_heap_traffic():
    res = run_ablation_early_fixing(scale=SCALE_ROAD, seed=0, repeats=1)
    assert res.notes["heap_ops_saved_vs_prim_pct"] > 15.0
    headers, rows = res.tables["A1: early fixing vs heap traffic"]
    by_name = {r[0]: r for r in rows}
    assert by_name["LLP-Prim"][2] < by_name["Prim"][2]  # fewer pushes
    assert by_name["LLP-Prim (no early fixing)"][5] == 0  # no mwe fixes


def test_ablation_pointer_jumping_compact_saves_work():
    res = run_ablation_pointer_jumping(scale=SCALE_ROAD, seed=0)
    assert res.notes["work[compact contraction]"] <= res.notes["work[keep multi-edges]"]


def test_ablation_heaps_all_variants_run():
    res = run_ablation_heaps(scale=9, seed=0, repeats=1)
    headers, rows = res.tables["A3: Prim heap variants"]
    assert len(rows) == 5
    # all variants scanned the same graph: same pop magnitude
    pops = [r[3] for r in rows[:4]]
    assert max(pops) == min(pops)


def test_scaling_sizes_winner_structure_stable():
    from repro.bench.experiments import run_scaling_sizes

    res = run_scaling_sizes(scales=(10, 12), seed=0)
    assert res.notes["winner_structure_stable_across_sizes"]
    headers, rows = res.tables["Scaling: winners by size (road morphology)"]
    assert [r[0] for r in rows] == [10, 12]
    assert all(r[2] == "LLP-Prim" for r in rows)


def test_calibration_model_tracks_wall_clock():
    from repro.bench.experiments import run_calibration

    res = run_calibration(scale=11, seed=0, repeats=2)
    assert res.notes["calibrated_unit_time_ns"] > 0
    # the calibrated model lands within a small factor of wall clock for
    # every parallel algorithm (same interpreter, same unit accounting)
    for name in ("LLP-Prim", "Boruvka", "LLP-Boruvka"):
        ratio = res.notes[f"{name}_model_over_wall"]
        assert 0.1 < ratio < 10.0


def test_kkt_comparison_runs_and_verifies_shape():
    from repro.bench.experiments import run_kkt_comparison

    res = run_kkt_comparison(scale=10, seed=0, repeats=1)
    headers, rows = res.tables["E1: LLP-Prim vs Kruskal vs KKT (1 thread)"]
    assert len(rows) == 6
    assert res.notes["usa-road_kkt_over_llp_prim"] > 0


def test_ablation_weights_mwe_fraction_bounds():
    from repro.bench.experiments import run_ablation_weights

    res = run_ablation_weights(scale=10, seed=0, repeats=1)
    fracs = {k: v for k, v in res.notes.items() if k.startswith("mwe_fraction")}
    assert len(fracs) == 4
    # every vertex's minimum incident edge is in the MST, so the early-fix
    # fraction has a structural floor around one half
    assert all(0.45 <= v <= 1.0 for v in fracs.values())
    assert res.notes["mwe_fraction[bfs-increasing]"] >= res.notes["mwe_fraction[uniform]"]


def test_gil_exhibit_shows_flat_scaling():
    from repro.bench.experiments import run_gil_exhibit

    res = run_gil_exhibit(scale=10, seed=0, threads=(1, 2))
    assert res.notes["max_real_thread_speedup"] < 2.0
    headers, rows = res.tables["M1: real-thread wall times (the GIL in action)"]
    assert len(rows) == 2
    # identical forests across thread counts
    assert rows[0][3] == rows[1][3]


def test_operation_census_counts():
    from repro.bench.experiments import run_operation_census

    res = run_operation_census(scale=10, rmat_scale=9, seed=0)
    assert len(res.tables) == 2
    for title, (headers, rows) in res.tables.items():
        algos = {r[0] for r in rows}
        assert {"prim", "llp-prim", "ghs", "llp-boruvka"} <= algos
        assert all(isinstance(r[2], int) for r in rows)
    # all algorithms found the same forest per graph
    road_weights = {v for k, v in res.notes.items() if k.startswith("usa-road")}
    assert len(road_weights) == 1


def test_seed_stability_claims_unanimous():
    from repro.bench.experiments import run_seed_stability

    # scale >= 12: below it LLP-Boruvka's barrier count outweighs its work
    # advantage at p=32 (see the scaling-sizes experiment)
    res = run_seed_stability(scale=12, seeds=(0, 1, 2), threads=(1, 2, 32))
    assert res.notes["all_claims_unanimous"]
    assert res.notes["llp_prim_fastest_at_p1"] == "3/3 seeds"
    (headers, rows), = res.tables.values()
    assert len(rows) == 3  # one per algorithm
    assert all("±" in cell for row in rows for cell in row[1:])
