"""SVG chart rendering: well-formedness and content checks."""

import xml.dom.minidom

import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.svg import bar_chart, line_chart, save_experiment_figures


def _parse(svg: str):
    return xml.dom.minidom.parseString(svg)


def test_line_chart_well_formed_and_has_series():
    svg = line_chart(
        {"A": {1: 10.0, 2: 5.0, 4: 2.5}, "B": {1: 20.0, 4: 1.0}},
        title="demo",
        x_label="p",
        y_label="time",
    )
    doc = _parse(svg)
    assert doc.documentElement.tagName == "svg"
    assert svg.count("<path") == 2
    assert svg.count("<circle") == 5
    assert "demo" in svg and "A" in svg and "B" in svg


def test_line_chart_log_scale():
    svg = line_chart({"A": {1: 1.0, 32: 1e-4}}, log_y=True)
    _parse(svg)
    assert "1e-04" in svg or "1e-4" in svg  # log ticks


def test_line_chart_empty():
    svg = line_chart({})
    _parse(svg)
    assert "no data" in svg


def test_line_chart_escapes_markup():
    svg = line_chart({"<evil>": {1: 1.0}}, title="a & b")
    _parse(svg)
    assert "<evil>" not in svg
    assert "&lt;evil&gt;" in svg


def test_bar_chart_groups():
    svg = bar_chart(
        {"road": {"Prim": 30.0, "LLP-Prim": 25.0}, "rmat": {"Prim": 20.0}},
        title="fig2",
        y_label="ms",
    )
    _parse(svg)
    assert svg.count("<rect") >= 5  # 3 bars + background + legend swatches
    assert "road" in svg and "rmat" in svg


def test_bar_chart_empty():
    _parse(bar_chart({}))


def test_save_experiment_figures(tmp_path):
    res = ExperimentResult("demo")
    res.series["curve one"] = {"X": {1: 5.0, 2: 2.0}}
    res.series["wide range"] = {"Y": {1: 1.0, 2: 1e-4}}
    paths = save_experiment_figures(res, tmp_path)
    assert len(paths) == 2
    for p in paths:
        assert p.exists()
        xml.dom.minidom.parse(str(p))
    names = {p.name for p in paths}
    assert any("curve-one" in n for n in names)
