"""Perf-gate decision logic, on crafted reports (no timing involved)."""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import bench_gate

COMMITTED_KERNELS = {
    "graph": {"n_vertices": 100, "n_edges": 300, "seed": 0},
    "algorithms": {
        "boruvka": {
            "loop": {"seconds": 0.10}, "vectorized": {"seconds": 0.05},
            "speedup": 2.0, "identical_edge_set": True,
            "auto": {"selected_mode": "vectorized", "seconds": 0.05},
            "auto_speedup": 2.0,
        },
    },
}

COMMITTED_SHARD = {
    "graph": {"n_vertices": 100, "n_edges": 300, "seed": 0},
    "partition": "hash",
    "identical_edge_sets": True,
    "baselines": {"kruskal": {"seconds": 0.20}, "boruvka/vectorized": {"seconds": 0.16}},
    # ratio = 0.17 / 0.36 ≈ 0.472 of the summed baselines
    "sharded": {"2": {"seconds": 0.17}},
}


def _run(fresh_kernels, fresh_shard, tmp_path, threshold=0.25):
    paths = {}
    for name, doc in [("ck", COMMITTED_KERNELS), ("cs", COMMITTED_SHARD),
                      ("fk", fresh_kernels), ("fs", fresh_shard)]:
        p = tmp_path / f"{name}.json"
        p.write_text(json.dumps(doc))
        paths[name] = str(p)
    return bench_gate.main([
        "--threshold", str(threshold),
        "--kernels", paths["ck"], "--shard", paths["cs"],
        "--fresh-kernels", paths["fk"], "--fresh-shard", paths["fs"],
    ])


def test_gate_passes_on_identical_reports(tmp_path):
    assert _run(COMMITTED_KERNELS, COMMITTED_SHARD, tmp_path) == 0


def test_gate_tolerates_noise_within_threshold(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["speedup"] = 1.7  # 15% off 2.0
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"]["2"]["seconds"] = 0.19  # ratio 0.528, +12%
    assert _run(fresh_k, fresh_s, tmp_path) == 0


def test_gate_fails_on_kernel_speedup_regression(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["speedup"] = 1.2  # floor is 2.0/1.25 = 1.6
    assert _run(fresh_k, COMMITTED_SHARD, tmp_path) == 1
    assert "speedup regressed" in capsys.readouterr().err


def test_gate_fails_hard_when_auto_picks_a_regression(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["auto_speedup"] = 0.9
    assert _run(fresh_k, COMMITTED_SHARD, tmp_path) == 1
    assert "cost model picked a regression" in capsys.readouterr().err


def test_gate_fails_on_sharded_ratio_regression(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"]["2"]["seconds"] = 0.25  # ratio 0.694, +47%
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "sharded:x2 regressed" in capsys.readouterr().err


def test_gate_normalizer_divides_machine_speed_out(tmp_path):
    """A uniformly 2x-slower machine changes no ratio: the gate passes."""
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    for mode in ("loop", "vectorized", "auto"):
        fresh_k["algorithms"]["boruvka"][mode]["seconds"] *= 2
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    for entry in (*fresh_s["baselines"].values(), *fresh_s["sharded"].values()):
        entry["seconds"] *= 2
    assert _run(fresh_k, fresh_s, tmp_path) == 0


def test_gate_fails_hard_on_msf_disagreement(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["identical_edge_sets"] = False
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "no longer agree on the MSF" in capsys.readouterr().err


def test_gate_reports_missing_configs(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"] = {}
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "missing from fresh report" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Soak gate: hard booleans + tail-ratio checks on crafted reports
# ----------------------------------------------------------------------
COMMITTED_SOAK = {
    "scenario": {"name": "soak", "seed": 0, "duration_s": 6.0,
                 "rate_qps": 300.0},
    "load": {"offered": 1800, "completed": 1790, "rejected": 5,
             "timeouts": 5, "errors": 0, "failure_rate": 0.0056},
    "slo": {
        "connected": {"count": 600, "p50_us": 300.0, "p95_us": 2000.0,
                      "p99_us": 6000.0, "tail_ratio": 20.0},
        "weight": {"count": 10, "p50_us": 200.0, "p95_us": 400.0,
                   "p99_us": 800.0, "tail_ratio": 4.0},
    },
    "error_budget": {"budget": 0.1, "failure_rate": 0.0056,
                     "within_budget": True},
    "faults": [{"family": "artifact-corruption", "injected": 2, "ok": True,
                "detail": ""}],
    "replay": {"stream_hash": "a" * 64, "deterministic": True},
    "leaked_segments": [],
    "ok": True,
}


def _run_soak_gate(fresh, tmp_path, threshold=0.25):
    cp = tmp_path / "committed_soak.json"
    fp = tmp_path / "fresh_soak.json"
    cp.write_text(json.dumps(COMMITTED_SOAK))
    fp.write_text(json.dumps(fresh))
    return bench_gate.main([
        "--threshold", str(threshold),
        "--soak", str(cp), "--fresh-soak", str(fp),
    ])


def test_soak_gate_passes_on_identical_reports(tmp_path):
    assert _run_soak_gate(COMMITTED_SOAK, tmp_path) == 0


def test_soak_gate_gates_only_the_provided_suite(tmp_path):
    """--fresh-soak alone must not demand kernels/shard measurements."""
    assert _run_soak_gate(copy.deepcopy(COMMITTED_SOAK), tmp_path) == 0


def test_soak_gate_fails_hard_on_nondeterministic_replay(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["replay"]["deterministic"] = False
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "not replay-deterministic" in capsys.readouterr().err


def test_soak_gate_fails_hard_on_leaked_segments(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["leaked_segments"] = ["psm_deadbeef"]
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "leaked" in capsys.readouterr().err


def test_soak_gate_fails_hard_on_broken_fault_contract(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["faults"][0].update(ok=False, detail="forest diverged")
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "broke its contract" in capsys.readouterr().err


def test_soak_gate_fails_hard_on_blown_error_budget(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["error_budget"] = {"budget": 0.1, "failure_rate": 0.4,
                             "within_budget": False}
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "error budget" in capsys.readouterr().err


def test_soak_gate_fails_on_tail_ratio_regression(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["slo"]["connected"]["tail_ratio"] = 60.0  # ceiling is 20 * 2.0
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "tail regressed" in capsys.readouterr().err


def test_soak_gate_tail_threshold_floored_at_double(tmp_path):
    """Run-to-run tail variance on one machine is ~1.7x, so the tail bar
    never tightens past 2x even when --threshold is 0.25."""
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["slo"]["connected"]["tail_ratio"] = 35.0  # 20 * 1.25 < 35 < 20 * 2
    assert _run_soak_gate(fresh, tmp_path, threshold=0.25) == 0


def test_soak_gate_noise_floor_forgives_microsecond_tails(tmp_path):
    """A committed 4x tail growing to 11x stays under the 10x-floor ceiling."""
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["slo"]["weight"]["count"] = 600
    fresh["slo"]["weight"]["tail_ratio"] = 11.0
    committed = copy.deepcopy(COMMITTED_SOAK)
    committed["slo"]["weight"]["count"] = 600
    cp = tmp_path / "c.json"
    fp = tmp_path / "f.json"
    cp.write_text(json.dumps(committed))
    fp.write_text(json.dumps(fresh))
    assert bench_gate.main(["--soak", str(cp), "--fresh-soak", str(fp)]) == 0


def test_soak_gate_skips_thin_kinds(tmp_path):
    """Kinds with too few samples have meaningless percentiles: not gated."""
    fresh = copy.deepcopy(COMMITTED_SOAK)
    fresh["slo"]["weight"]["tail_ratio"] = 500.0  # count=10 < MIN_SLO_COUNT
    assert _run_soak_gate(fresh, tmp_path) == 0


def test_soak_gate_reports_missing_kind(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SOAK)
    del fresh["slo"]["connected"]
    assert _run_soak_gate(fresh, tmp_path) == 1
    assert "missing from fresh report" in capsys.readouterr().err

# ----------------------------------------------------------------------
# Scale gate: hard booleans + rss_per_edge on crafted reports
# ----------------------------------------------------------------------
COMMITTED_SCALE = {
    "version": "0.0.0",
    "params": {"scale": 16, "edgefactor": 8, "road_rows": 500, "seed": 7,
               "chunk_bytes": 4 << 20, "algo": "boruvka", "shards": 0},
    "configs": {
        "rmat": {"n_vertices": 65536, "n_edges": 477765,
                 "rss_per_edge": 120.0, "identical_forest": True,
                 "oracle": "full", "leaked_spill_files": []},
        "road": {"n_vertices": 250000, "n_edges": 456457,
                 "rss_per_edge": 50.0, "identical_forest": True,
                 "oracle": "full", "leaked_spill_files": []},
    },
}


def _run_scale_gate(fresh, tmp_path, threshold=0.25):
    cp = tmp_path / "committed_scale.json"
    fp = tmp_path / "fresh_scale.json"
    cp.write_text(json.dumps(COMMITTED_SCALE))
    fp.write_text(json.dumps(fresh))
    return bench_gate.main([
        "--threshold", str(threshold),
        "--scale", str(cp), "--fresh-scale", str(fp),
    ])


def test_scale_gate_passes_on_identical_reports(tmp_path):
    assert _run_scale_gate(COMMITTED_SCALE, tmp_path) == 0


def test_scale_gate_fails_hard_on_forest_divergence(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["configs"]["rmat"]["identical_forest"] = False
    assert _run_scale_gate(fresh, tmp_path) == 1
    assert "diverged from the Kruskal oracle" in capsys.readouterr().err


def test_scale_gate_fails_hard_on_spill_leak(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["configs"]["road"]["leaked_spill_files"] = ["spill-abc.bin"]
    assert _run_scale_gate(fresh, tmp_path) == 1
    assert "leaked spill files" in capsys.readouterr().err


def test_scale_gate_fails_on_rss_regression(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["configs"]["rmat"]["rss_per_edge"] = 200.0  # ceiling 120 * 1.25
    assert _run_scale_gate(fresh, tmp_path) == 1
    assert "rss_per_edge regressed" in capsys.readouterr().err


def test_scale_gate_tolerates_rss_noise_within_threshold(tmp_path):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["configs"]["rmat"]["rss_per_edge"] = 140.0  # +17%
    assert _run_scale_gate(fresh, tmp_path) == 0


def test_scale_gate_skips_rss_check_at_different_shape(tmp_path):
    """Nightly runs at paper scale: only the booleans are gated there."""
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["params"] = dict(fresh["params"], scale=20, edgefactor=16)
    fresh["configs"]["rmat"]["rss_per_edge"] = 500.0
    assert _run_scale_gate(fresh, tmp_path) == 0


def test_scale_gate_still_hard_fails_at_different_shape(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    fresh["params"] = dict(fresh["params"], scale=20)
    fresh["configs"]["road"]["identical_forest"] = False
    assert _run_scale_gate(fresh, tmp_path) == 1
    assert "diverged" in capsys.readouterr().err


def test_scale_gate_reports_missing_config(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_SCALE)
    del fresh["configs"]["road"]
    assert _run_scale_gate(fresh, tmp_path) == 1
    assert "missing from fresh report" in capsys.readouterr().err


COMMITTED_PLATFORM = {
    "schema": 1,
    "params": {"n_vertices": 2000, "n_edges": 8000, "seed": 7,
               "duration_s": 2.0, "cold_rate_qps": 200.0,
               "hot_rate_qps": 2000.0, "hot_quota_qps": 100.0,
               "hot_quota_burst": 20.0},
    "alone": {"cold": {"offered": 400, "completed": 400, "rejected": 0,
                       "quota_rejected": 0, "timeouts": 0, "errors": 0,
                       "p50_ms": 0.4, "p99_ms": 1.0}},
    "contended": {
        "cold": {"offered": 400, "completed": 400, "rejected": 0,
                 "quota_rejected": 0, "timeouts": 0, "errors": 0,
                 "p50_ms": 0.5, "p99_ms": 1.2},
        "hot": {"offered": 4000, "completed": 240, "rejected": 0,
                "quota_rejected": 3760, "timeouts": 0, "errors": 0,
                "p50_ms": 0.5, "p99_ms": 1.5},
    },
    "isolation_ratio": 1.2,
    "quota": {"hot_offered": 4000, "hot_quota_rejected": 3760,
              "hot_rejected_fraction": 0.94, "quota_enforced": True},
    "accounting_ok": True,
}


def _run_platform_gate(fresh, tmp_path, threshold=0.25):
    cp = tmp_path / "cp.json"
    fp = tmp_path / "fp.json"
    cp.write_text(json.dumps(COMMITTED_PLATFORM))
    fp.write_text(json.dumps(fresh))
    return bench_gate.main([
        "--threshold", str(threshold),
        "--platform", str(cp), "--fresh-platform", str(fp),
    ])


def test_platform_gate_passes_on_identical_reports(tmp_path):
    assert _run_platform_gate(COMMITTED_PLATFORM, tmp_path) == 0


def test_platform_gate_fails_hard_on_broken_accounting(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_PLATFORM)
    fresh["accounting_ok"] = False
    assert _run_platform_gate(fresh, tmp_path) == 1
    assert "accounting invariant" in capsys.readouterr().err


def test_platform_gate_fails_hard_on_unenforced_quota(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_PLATFORM)
    fresh["quota"]["quota_enforced"] = False
    assert _run_platform_gate(fresh, tmp_path) == 1
    assert "admission" in capsys.readouterr().err


def test_platform_gate_fails_on_isolation_regression(tmp_path, capsys):
    fresh = copy.deepcopy(COMMITTED_PLATFORM)
    # Ceiling = max(1.2, 3.0 floor) * (1 + max(0.25, 1.0)) = 6.0
    fresh["isolation_ratio"] = 6.5
    assert _run_platform_gate(fresh, tmp_path) == 1
    assert "isolation ratio regressed" in capsys.readouterr().err


def test_platform_gate_noise_floor_forgives_small_ratios(tmp_path):
    """p99 jitter at ms scale: ratios under the floored ceiling pass."""
    fresh = copy.deepcopy(COMMITTED_PLATFORM)
    fresh["isolation_ratio"] = 5.5  # noisy, but under the 6.0 ceiling
    assert _run_platform_gate(fresh, tmp_path) == 0


def test_platform_gate_skips_ratio_at_tiny_sample(tmp_path):
    """Hard booleans still gate, but the ratio needs enough completions."""
    fresh = copy.deepcopy(COMMITTED_PLATFORM)
    fresh["contended"]["cold"]["completed"] = 50  # < MIN_ISOLATION_COUNT
    fresh["isolation_ratio"] = 50.0
    assert _run_platform_gate(fresh, tmp_path) == 0
