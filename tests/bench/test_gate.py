"""Perf-gate decision logic, on crafted reports (no timing involved)."""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import bench_gate

COMMITTED_KERNELS = {
    "graph": {"n_vertices": 100, "n_edges": 300, "seed": 0},
    "algorithms": {
        "boruvka": {
            "loop": {"seconds": 0.10}, "vectorized": {"seconds": 0.05},
            "speedup": 2.0, "identical_edge_set": True,
            "auto": {"selected_mode": "vectorized", "seconds": 0.05},
            "auto_speedup": 2.0,
        },
    },
}

COMMITTED_SHARD = {
    "graph": {"n_vertices": 100, "n_edges": 300, "seed": 0},
    "partition": "hash",
    "identical_edge_sets": True,
    "baselines": {"kruskal": {"seconds": 0.20}, "boruvka/vectorized": {"seconds": 0.16}},
    # ratio = 0.17 / 0.36 ≈ 0.472 of the summed baselines
    "sharded": {"2": {"seconds": 0.17}},
}


def _run(fresh_kernels, fresh_shard, tmp_path, threshold=0.25):
    paths = {}
    for name, doc in [("ck", COMMITTED_KERNELS), ("cs", COMMITTED_SHARD),
                      ("fk", fresh_kernels), ("fs", fresh_shard)]:
        p = tmp_path / f"{name}.json"
        p.write_text(json.dumps(doc))
        paths[name] = str(p)
    return bench_gate.main([
        "--threshold", str(threshold),
        "--kernels", paths["ck"], "--shard", paths["cs"],
        "--fresh-kernels", paths["fk"], "--fresh-shard", paths["fs"],
    ])


def test_gate_passes_on_identical_reports(tmp_path):
    assert _run(COMMITTED_KERNELS, COMMITTED_SHARD, tmp_path) == 0


def test_gate_tolerates_noise_within_threshold(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["speedup"] = 1.7  # 15% off 2.0
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"]["2"]["seconds"] = 0.19  # ratio 0.528, +12%
    assert _run(fresh_k, fresh_s, tmp_path) == 0


def test_gate_fails_on_kernel_speedup_regression(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["speedup"] = 1.2  # floor is 2.0/1.25 = 1.6
    assert _run(fresh_k, COMMITTED_SHARD, tmp_path) == 1
    assert "speedup regressed" in capsys.readouterr().err


def test_gate_fails_hard_when_auto_picks_a_regression(tmp_path, capsys):
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    fresh_k["algorithms"]["boruvka"]["auto_speedup"] = 0.9
    assert _run(fresh_k, COMMITTED_SHARD, tmp_path) == 1
    assert "cost model picked a regression" in capsys.readouterr().err


def test_gate_fails_on_sharded_ratio_regression(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"]["2"]["seconds"] = 0.25  # ratio 0.694, +47%
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "sharded:x2 regressed" in capsys.readouterr().err


def test_gate_normalizer_divides_machine_speed_out(tmp_path):
    """A uniformly 2x-slower machine changes no ratio: the gate passes."""
    fresh_k = copy.deepcopy(COMMITTED_KERNELS)
    for mode in ("loop", "vectorized", "auto"):
        fresh_k["algorithms"]["boruvka"][mode]["seconds"] *= 2
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    for entry in (*fresh_s["baselines"].values(), *fresh_s["sharded"].values()):
        entry["seconds"] *= 2
    assert _run(fresh_k, fresh_s, tmp_path) == 0


def test_gate_fails_hard_on_msf_disagreement(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["identical_edge_sets"] = False
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "no longer agree on the MSF" in capsys.readouterr().err


def test_gate_reports_missing_configs(tmp_path, capsys):
    fresh_s = copy.deepcopy(COMMITTED_SHARD)
    fresh_s["sharded"] = {}
    assert _run(COMMITTED_KERNELS, fresh_s, tmp_path) == 1
    assert "missing from fresh report" in capsys.readouterr().err
