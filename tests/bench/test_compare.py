"""Result-comparison tooling."""

import json

import pytest

from repro.bench.compare import compare_results, load_result_json
from repro.bench.harness import ExperimentResult
from repro.errors import BenchmarkError


def _dump(name, series, notes):
    res = ExperimentResult(name)
    res.series["t"] = series
    res.notes.update(notes)
    return json.loads(res.to_json())


def test_identical_results_no_flags():
    a = _dump("x", {"A": {1: 1.0, 2: 0.5}}, {"win": "A"})
    report = compare_results(a, a)
    assert not report.qualitative_flags
    assert not report.series_deltas
    assert not report.note_changes


def test_detects_large_delta_and_ignores_small():
    a = _dump("x", {"A": {1: 1.0, 2: 1.0}}, {})
    b = _dump("x", {"A": {1: 1.02, 2: 2.0}}, {})
    report = compare_results(a, b, threshold_pct=5.0)
    rows = report.series_deltas["t"]
    assert len(rows) == 1
    assert rows[0][1] == "2"
    assert rows[0][4] == pytest.approx(100.0)


def test_detects_winner_flip():
    a = _dump("x", {"A": {1: 1.0}, "B": {1: 2.0}}, {})
    b = _dump("x", {"A": {1: 2.0}, "B": {1: 1.0}}, {})
    report = compare_results(a, b)
    assert any("winner flip" in f for f in report.qualitative_flags)


def test_detects_note_change_and_dropped_series():
    a = _dump("x", {"A": {1: 1.0}}, {"crossover": 8})
    b = _dump("x", {}, {"crossover": 4})
    b["series"] = {}
    report = compare_results(a, b)
    assert any("series dropped" in f for f in report.qualitative_flags)
    assert report.note_changes == [["crossover", 8, 4]]
    assert "crossover" in report.render()


def test_rejects_mismatched_experiments():
    a = _dump("x", {}, {})
    b = _dump("y", {}, {})
    with pytest.raises(BenchmarkError):
        compare_results(a, b)


def test_load_result_json_roundtrip(tmp_path):
    res = ExperimentResult("demo")
    res.series["s"] = {"A": {1: 2.0}}
    path = tmp_path / "r.json"
    res.save(path)
    data = load_result_json(path)
    assert data["name"] == "demo"
    with pytest.raises(BenchmarkError):
        load_result_json(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(BenchmarkError):
        load_result_json(bad)


def test_cli_compare(tmp_path, capsys):
    from repro.cli import main

    res = ExperimentResult("demo")
    res.series["s"] = {"A": {1: 2.0}, "B": {1: 3.0}}
    a = tmp_path / "a.json"
    res.save(a)
    res2 = ExperimentResult("demo")
    res2.series["s"] = {"A": {1: 4.0}, "B": {1: 3.0}}
    b = tmp_path / "b.json"
    res2.save(b)
    code = main(["compare", str(a), str(b)])
    out = capsys.readouterr().out
    assert "winner flip" in out
    assert code == 1  # qualitative change -> nonzero exit
    assert main(["compare", str(a), str(a)]) == 0
