"""Smoke tests for the service benchmark tooling.

Runs ``tools/bench_service_report.py`` on a tiny graph and checks it
writes valid, complete JSON; pins the shape of the committed
``BENCH_service.json`` so the checked-in numbers can't silently rot.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent.parent


def test_bench_service_report_tiny_graph(tmp_path):
    target = tmp_path / "BENCH_service.json"
    proc = subprocess.run(
        [
            sys.executable, str(REPO / "tools" / "bench_service_report.py"),
            str(target), "--n", "120", "--m", "300", "--seed", "3",
            "--queries", "1000", "--loop-queries", "100",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(target.read_text())
    assert report["graph"]["n_edges"] == 300
    art = report["artifact"]
    assert art["cold_load_seconds"] > 0 and art["warm_load_seconds"] > 0
    assert art["warm_excludes_recompute"] is True
    q = report["bottleneck_queries"]
    assert q["loop"]["qps"] > 0 and q["batched"]["qps"] > 0
    assert q["answers_cross_checked"] == 100


def test_committed_bench_service_json():
    committed = REPO / "BENCH_service.json"
    report = json.loads(committed.read_text())
    assert report["graph"]["n_edges"] == 100_000
    q = report["bottleneck_queries"]
    assert q["batched_speedup"] >= 10.0  # the ISSUE acceptance bar
    assert q["answers_cross_checked"] >= 1000
    art = report["artifact"]
    assert art["warm_load_seconds"] < art["cold_load_seconds"]
    assert art["warm_excludes_recompute"] is True
