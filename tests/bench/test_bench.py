"""Bench harness: datasets, timing, speedup math, reporting."""

import json

import numpy as np
import pytest

from repro.bench.datasets import DATASETS, build_dataset
from repro.bench.harness import ExperimentResult
from repro.bench.reporting import ascii_bar_chart, ascii_series, render_table
from repro.bench.speedup import crossover_point, efficiency_series, speedup_series
from repro.bench.timing import time_callable
from repro.errors import BenchmarkError
from repro.graphs.traversal import is_connected


def test_datasets_registered():
    assert set(DATASETS) == {"usa-road", "graph500", "delaunay"}
    assert DATASETS["delaunay"].kind == "road"
    assert DATASETS["usa-road"].kind == "road"
    assert DATASETS["graph500"].kind == "scalefree"


def test_build_dataset_scales():
    g = build_dataset("usa-road", scale=8, seed=1)
    assert g.n_vertices == 256
    assert is_connected(g)
    r = build_dataset("graph500", scale=8, seed=1)
    assert r.n_vertices == 256


def test_build_dataset_deterministic():
    a = build_dataset("graph500", scale=7, seed=3)
    b = build_dataset("graph500", scale=7, seed=3)
    assert (a.edge_w == b.edge_w).all()


def test_build_dataset_rejects():
    with pytest.raises(BenchmarkError):
        build_dataset("nope")
    with pytest.raises(BenchmarkError):
        build_dataset("usa-road", scale=1)


def test_time_callable_basic():
    calls = []
    t = time_callable(lambda: calls.append(1) or 42, repeats=3, warmup=2)
    assert len(calls) == 5
    assert t.result == 42
    assert t.best <= t.mean <= t.worst
    assert t.repeats == 3


def test_time_callable_rejects_zero_repeats():
    with pytest.raises(ValueError):
        time_callable(lambda: None, repeats=0)


def test_speedup_series():
    s = speedup_series({1: 10.0, 2: 5.0, 4: 2.5})
    assert s == {1: 1.0, 2: 2.0, 4: 4.0}
    assert speedup_series({}) == {}


def test_efficiency_series():
    e = efficiency_series({1: 8.0, 4: 2.0})
    assert e[1] == pytest.approx(1.0)
    assert e[4] == pytest.approx(1.0)


def test_crossover_point():
    a = {1: 1.0, 2: 1.0, 4: 1.0, 8: 1.0}
    b = {1: 2.0, 2: 1.5, 4: 0.8, 8: 0.4}
    assert crossover_point(a, b) == 4
    c = {1: 3.0, 2: 3.0, 4: 3.0, 8: 3.0}
    assert crossover_point(a, c) is None  # c never wins
    assert crossover_point(b, a) == 1  # a wins immediately


def test_render_table_plain_and_markdown():
    txt = render_table(["x", "value"], [[1, 2.5], [10, 0.0001]])
    assert "x" in txt and "1.000e-04" in txt
    md = render_table(["x"], [[1]], markdown=True)
    assert md.splitlines()[1].startswith("|-")


def test_ascii_series_renders_all_points():
    out = ascii_series({"A": {1: 1.0, 2: 0.5}, "B": {1: 2.0}})
    assert "p=1" in out and "p=2" in out
    assert out.count("A") >= 2
    assert ascii_series({}) == "(no data)"


def test_ascii_bar_chart():
    out = ascii_bar_chart({"x": 1.0, "y": 2.0})
    assert out.count("#") > 3
    assert ascii_bar_chart({}) == "(no data)"


def test_experiment_result_render_and_json(tmp_path):
    res = ExperimentResult("demo", params={"scale": 5})
    res.tables["t"] = (["a", "b"], [[1, 2]])
    res.series["s"] = {"algo": {1: 2.0, 2: 1.0}}
    res.notes["speedup"] = 2.0
    text = res.render()
    assert "demo" in text and "scale=5" in text and "speedup: 2.0" in text
    path = tmp_path / "r.json"
    res.save(path)
    data = json.loads(path.read_text())
    assert data["name"] == "demo"
    assert data["tables"]["t"]["rows"] == [[1, 2]]
    assert data["series"]["s"]["algo"]["2"] == 1.0
