"""cProfile wrapper."""

from repro.bench.profiling import profile_callable


def test_profile_callable_returns_result_and_hotspots():
    def work():
        total = 0
        for i in range(20_000):
            total += i * i
        return total

    report = profile_callable(work)
    assert report.result == sum(i * i for i in range(20_000))
    assert report.total_time >= 0
    assert report.total_calls >= 1
    text = report.render(limit=5)
    assert "cum_ms" in text


def test_profile_callable_propagates_exceptions():
    import pytest

    with pytest.raises(ValueError):
        profile_callable(lambda: (_ for _ in ()).throw(ValueError("x")))


def test_hotspots_sorted_by_cumulative_time():
    report = profile_callable(lambda: sorted(range(50_000)))
    cums = [c for _, c, _ in report.hotspots]
    assert cums == sorted(cums, reverse=True)
