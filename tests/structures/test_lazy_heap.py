"""Lazy-deletion heap (the Section IV analysis variant)."""

from repro.structures.lazy_heap import LazyHeap


def test_duplicates_allowed_and_min_order():
    h = LazyHeap()
    h.push(1, 30)
    h.push(1, 10)  # duplicate with lower key
    h.push(2, 20)
    assert h.pop() == (1, 10)
    assert h.pop() == (2, 20)
    assert h.pop() == (1, 30)


def test_insert_or_adjust_is_push():
    h = LazyHeap()
    h.insert_or_adjust(0, 5)
    h.insert_or_adjust(0, 3)
    assert len(h) == 2


def test_pop_fresh_skips_stale():
    h = LazyHeap()
    fixed = {1}
    h.push(1, 1)
    h.push(2, 2)
    h.push(1, 3)
    assert h.pop_fresh(lambda v: v in fixed) == (2, 2)
    assert h.n_stale_pops == 1
    fixed.add(2)
    assert h.pop_fresh(lambda v: v in fixed) is None
    assert h.n_stale_pops == 2


def test_counters_and_bool():
    h = LazyHeap()
    assert not h
    h.push(0, 1)
    assert h and len(h) == 1
    h.pop()
    assert h.n_pushes == 1 and h.n_pops == 1
