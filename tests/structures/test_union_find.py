"""Union-find (sequential and concurrent) against a partition model."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.concurrent_union_find import ConcurrentUnionFind
from repro.structures.union_find import UnionFind


class PartitionModel:
    """Naive quadratic partition refinement as the oracle."""

    def __init__(self, n):
        self.sets = [{i} for i in range(n)]

    def union(self, a, b):
        sa = next(s for s in self.sets if a in s)
        sb = next(s for s in self.sets if b in s)
        if sa is sb:
            return False
        self.sets.remove(sb)
        sa |= sb
        return True

    def connected(self, a, b):
        return any(a in s and b in s for s in self.sets)


@pytest.mark.parametrize(
    "make",
    [UnionFind, lambda n: ConcurrentUnionFind(n), lambda n: ConcurrentUnionFind(n, thread_safe=False)],
    ids=["sequential", "concurrent", "concurrent-unlocked"],
)
class TestUnionFindContract:
    def test_initially_disjoint(self, make):
        uf = make(5)
        assert uf.n_sets == 5
        assert not uf.connected(0, 4)
        assert uf.find(3) == 3

    def test_union_and_connected(self, make):
        uf = make(6)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)
        assert uf.n_sets == 4

    def test_min_labels(self, make):
        uf = make(6)
        uf.union(4, 2)
        uf.union(2, 5)
        uf.union(0, 1)
        labels = uf.min_labels()
        assert labels[4] == labels[2] == labels[5] == 2
        assert labels[0] == labels[1] == 0
        assert labels[3] == 3

    @given(pairs=st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_matches_partition_model(self, make, pairs):
        uf = make(15)
        model = PartitionModel(15)
        for a, b in pairs:
            assert uf.union(a, b) == model.union(a, b)
        for a in range(15):
            for b in range(15):
                assert uf.connected(a, b) == model.connected(a, b)


def test_sequential_roots_and_sizes():
    uf = UnionFind(7)
    uf.union(0, 3)
    uf.union(3, 5)
    roots = uf.roots()
    assert roots[0] == roots[3] == roots[5]
    sizes = uf.set_sizes()
    assert sorted(sizes.values()) == [1, 1, 1, 1, 3]
    assert len(uf) == 7


def test_concurrent_parallel_unions_linearize():
    """Hammer unions from several threads; the final partition must equal
    the sequential result of the same union set."""
    n = 400
    rng = np.random.default_rng(3)
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(1500, 2))]

    cuf = ConcurrentUnionFind(n)
    chunks = [pairs[i::4] for i in range(4)]

    def work(chunk):
        for a, b in chunk:
            cuf.union(a, b)

    threads = [threading.Thread(target=work, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    ref = UnionFind(n)
    for a, b in pairs:
        ref.union(a, b)
    assert (cuf.min_labels() == ref.min_labels()).all()
    assert cuf.n_sets == ref.n_sets


def test_concurrent_min_root_invariant():
    uf = ConcurrentUnionFind(10)
    uf.union(9, 4)
    uf.union(4, 7)
    # smaller-root linking: the root is the least member
    assert uf.find(9) == 4
    assert uf.find(7) == 4
