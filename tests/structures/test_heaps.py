"""Addressable heaps: binary, d-ary, pairing — shared behaviour and
implementation-specific corners, plus a hypothesis model check."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.structures.dary_heap import IndexedDaryHeap
from repro.structures.indexed_heap import IndexedBinaryHeap
from repro.structures.pairing_heap import PairingHeap

HEAPS = [
    ("binary", lambda n: IndexedBinaryHeap(n)),
    ("4ary", lambda n: IndexedDaryHeap(n, d=4)),
    ("8ary", lambda n: IndexedDaryHeap(n, d=8)),
    ("pairing", lambda n: PairingHeap(n)),
]


@pytest.mark.parametrize("name,make", HEAPS, ids=[h[0] for h in HEAPS])
class TestHeapContract:
    def test_push_pop_sorted(self, name, make):
        h = make(10)
        for item, key in [(3, 30), (1, 10), (4, 40), (0, 5), (2, 20)]:
            h.push(item, key)
        out = [h.pop() for _ in range(5)]
        assert out == [(0, 5), (1, 10), (2, 20), (3, 30), (4, 40)]

    def test_len_bool_contains(self, name, make):
        h = make(5)
        assert not h and len(h) == 0
        h.push(2, 7)
        assert h and len(h) == 1 and 2 in h and 3 not in h
        h.pop()
        assert 2 not in h

    def test_peek_does_not_remove(self, name, make):
        h = make(5)
        h.push(1, 10)
        h.push(2, 5)
        assert h.peek() == (2, 5)
        assert len(h) == 2

    def test_peek_pop_empty_raise(self, name, make):
        h = make(3)
        with pytest.raises(IndexError):
            h.peek()
        with pytest.raises(IndexError):
            h.pop()

    def test_duplicate_push_rejected(self, name, make):
        h = make(3)
        h.push(1, 5)
        with pytest.raises(AlgorithmError):
            h.push(1, 7)

    def test_decrease_key(self, name, make):
        h = make(4)
        h.push(0, 50)
        h.push(1, 40)
        h.decrease_key(0, 10)
        assert h.pop() == (0, 10)

    def test_decrease_key_raise_rejected(self, name, make):
        h = make(3)
        h.push(0, 10)
        with pytest.raises(AlgorithmError):
            h.decrease_key(0, 20)

    def test_decrease_key_absent_raises(self, name, make):
        h = make(3)
        with pytest.raises(KeyError):
            h.decrease_key(2, 1)

    def test_key_of(self, name, make):
        h = make(3)
        h.push(1, 33)
        assert h.key_of(1) == 33
        with pytest.raises(KeyError):
            h.key_of(0)

    def test_insert_or_adjust_semantics(self, name, make):
        h = make(4)
        h.insert_or_adjust(2, 20)  # insert
        h.insert_or_adjust(2, 30)  # larger: ignored
        assert h.key_of(2) == 20
        h.insert_or_adjust(2, 10)  # smaller: decrease
        assert h.key_of(2) == 10

    def test_counters(self, name, make):
        h = make(4)
        h.push(0, 3)
        h.insert_or_adjust(0, 1)
        h.pop()
        assert h.n_pushes == 1
        assert h.n_pops == 1
        assert h.n_adjusts == 1

    def test_interleaved_sequence_matches_reference(self, name, make):
        h = make(64)
        ref: dict[int, int] = {}
        seq = [("push", i, (i * 37) % 101) for i in range(40)]
        seq += [("adjust", i, (i * 17) % 50) for i in range(0, 40, 3)]
        for op, item, key in seq:
            if op == "push":
                h.push(item, key)
                ref[item] = key
            elif key < ref[item]:
                h.decrease_key(item, key)
                ref[item] = key
        out = []
        while h:
            out.append(h.pop())
        # keys come out sorted, and every pair matches the model
        assert [k for _, k in out] == sorted(ref.values())
        assert all(ref[item] == key for item, key in out)
        assert len(out) == len(ref)


@pytest.mark.parametrize("name,make", HEAPS, ids=[h[0] for h in HEAPS])
@given(ops=st.lists(st.tuples(st.integers(0, 31), st.integers(0, 1000)), max_size=120))
@settings(max_examples=40, deadline=None)
def test_heap_model_random_ops(name, make, ops):
    """Random push/decrease/pop sequences against a dict model."""
    h = make(32)
    model: dict[int, int] = {}
    for item, key in ops:
        key = key * 32 + item  # unique keys: pop order is fully determined
        if item not in model:
            h.push(item, key)
            model[item] = key
        elif key < model[item]:
            h.decrease_key(item, key)
            model[item] = key
        else:
            # occasionally pop the minimum instead
            mk, mi = min((v, k) for k, v in model.items())
            assert h.pop() == (mi, mk)
            del model[mi]
    drained = []
    while h:
        drained.append(h.pop())
    expected = sorted(((v, k) for k, v in model.items()))
    assert [(k, i) for i, k in drained] == expected
    if hasattr(h, "check_invariants"):
        h.check_invariants()


def test_binary_discard():
    h = IndexedBinaryHeap(8)
    for i, k in [(0, 10), (1, 5), (2, 20), (3, 1)]:
        h.push(i, k)
    assert h.discard(1)
    assert not h.discard(1)
    assert 1 not in h
    h.check_invariants()
    assert [h.pop()[0] for _ in range(3)] == [3, 0, 2]


def test_dary_requires_arity_two():
    with pytest.raises(ValueError):
        IndexedDaryHeap(4, d=1)


def test_pairing_heap_merge_pairs_deep():
    # Many children under one root stresses the two-pass merge.
    h = PairingHeap()
    h.push(0, 0)
    for i in range(1, 200):
        h.push(i, 1000 - i)
    assert h.pop() == (0, 0)
    h.check_invariants()
    assert h.pop() == (199, 801)


def test_heaps_agree_with_heapq_bulk():
    import random

    rng = random.Random(7)
    keys = rng.sample(range(10000), 500)
    ref = sorted(keys)
    for _, make in HEAPS:
        h = make(500)
        for i, k in enumerate(keys):
            h.push(i, k)
        out = [h.pop()[1] for _ in range(500)]
        assert out == ref
