"""Bag (the R set) and BitSet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.bag import Bag
from repro.structures.bitset import BitSet


# ----------------------------------------------------------------- Bag
def test_bag_push_pop_multiset():
    b = Bag()
    for x in [3, 1, 4, 1, 5]:
        b.push(x)
    out = sorted(b.pop() for _ in range(5))
    assert out == [1, 1, 3, 4, 5]
    assert not b


def test_bag_drain_returns_all_and_empties():
    b = Bag([2, 7, 2])
    arr = b.drain()
    assert sorted(arr.tolist()) == [2, 2, 7]
    assert len(b) == 0
    assert b.drain().size == 0


def test_bag_extend_counters_iter_clear():
    b = Bag()
    b.extend([1, 2, 3])
    assert b.n_pushes == 3
    assert sorted(b) == [1, 2, 3]
    b.pop()
    assert b.n_pops == 1
    b.clear()
    assert len(b) == 0


def test_bag_init_from_iterable():
    assert len(Bag(range(4))) == 4


# --------------------------------------------------------------- BitSet
def test_bitset_add_contains_discard():
    s = BitSet(100)
    s.add(0)
    s.add(63)
    s.add(64)
    s.add(99)
    assert 0 in s and 63 in s and 64 in s and 99 in s
    assert 1 not in s
    s.discard(63)
    assert 63 not in s
    assert len(s) == 3


def test_bitset_out_of_range():
    s = BitSet(10)
    with pytest.raises(IndexError):
        s.add(10)
    with pytest.raises(IndexError):
        s.discard(-1)
    assert 100 not in s  # contains is permissive
    with pytest.raises(IndexError):
        s.add_many(np.array([3, 11]))


def test_bitset_iter_sorted():
    s = BitSet(130)
    for i in (128, 2, 65):
        s.add(i)
    assert list(s) == [2, 65, 128]


def test_bitset_add_many_and_to_array():
    s = BitSet(70)
    s.add_many(np.array([1, 64, 69]))
    arr = s.to_array()
    assert arr.shape == (70,)
    assert arr[1] and arr[64] and arr[69]
    assert arr.sum() == 3


def test_bitset_clear_and_universe():
    s = BitSet(20)
    s.add_many(np.arange(20))
    assert len(s) == 20
    s.clear()
    assert len(s) == 0
    assert s.universe == 20


@given(st.lists(st.integers(0, 199), max_size=80))
@settings(max_examples=50, deadline=None)
def test_bitset_matches_set_model(idx):
    s = BitSet(200)
    model = set()
    for i in idx:
        if i in model:
            s.discard(i)
            model.discard(i)
        else:
            s.add(i)
            model.add(i)
    assert sorted(model) == list(s)
    assert len(s) == len(model)
    assert s.to_array().sum() == len(model)
