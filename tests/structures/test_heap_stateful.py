"""Stateful (rule-based) hypothesis testing of the addressable heaps.

Hypothesis drives arbitrary interleavings of push / decrease / pop /
discard against a dict model, asserting full behavioural equivalence —
stronger coverage than fixed operation sequences.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.structures.dary_heap import IndexedDaryHeap
from repro.structures.indexed_heap import IndexedBinaryHeap
from repro.structures.pairing_heap import PairingHeap

_CAPACITY = 24


class HeapMachine(RuleBasedStateMachine):
    heap_factory = staticmethod(lambda: IndexedBinaryHeap(_CAPACITY))

    def __init__(self):
        super().__init__()
        self.heap = self.heap_factory()
        self.model: dict[int, int] = {}
        self.key_counter = 0

    def _fresh_key(self, base: int) -> int:
        # Unique keys keep pop order fully deterministic.
        self.key_counter += 1
        return base * 1000 + self.key_counter

    @rule(item=st.integers(0, _CAPACITY - 1), base=st.integers(0, 50))
    def push_or_adjust(self, item, base):
        key = self._fresh_key(base)
        if item in self.model:
            if key < self.model[item]:
                self.heap.decrease_key(item, key)
                self.model[item] = key
        else:
            self.heap.push(item, key)
            self.model[item] = key

    @precondition(lambda self: self.model)
    @rule()
    def pop_min(self):
        expect = min((k, i) for i, k in self.model.items())
        item, key = self.heap.pop()
        assert (key, item) == expect
        del self.model[item]

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 10_000))
    def insert_or_adjust_existing(self, pick):
        item = sorted(self.model)[pick % len(self.model)]
        key = self._fresh_key(0)
        self.heap.insert_or_adjust(item, key)
        if key < self.model[item]:
            self.model[item] = key

    @invariant()
    def sizes_match(self):
        assert len(self.heap) == len(self.model)
        if self.model:
            mk, mi = min((k, i) for i, k in self.model.items())
            assert self.heap.peek() == (mi, mk)

    @invariant()
    def membership_matches(self):
        for item in range(_CAPACITY):
            assert (item in self.heap) == (item in self.model)

    def teardown(self):
        if hasattr(self.heap, "check_invariants"):
            self.heap.check_invariants()


class BinaryHeapMachine(HeapMachine):
    heap_factory = staticmethod(lambda: IndexedBinaryHeap(_CAPACITY))


class DaryHeapMachine(HeapMachine):
    heap_factory = staticmethod(lambda: IndexedDaryHeap(_CAPACITY, d=4))


class PairingHeapMachine(HeapMachine):
    heap_factory = staticmethod(lambda: PairingHeap(_CAPACITY))


TestBinaryHeapMachine = BinaryHeapMachine.TestCase
TestDaryHeapMachine = DaryHeapMachine.TestCase
TestPairingHeapMachine = PairingHeapMachine.TestCase

for case in (TestBinaryHeapMachine, TestDaryHeapMachine, TestPairingHeapMachine):
    case.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
