"""Setuptools shim (PEP 621 metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
